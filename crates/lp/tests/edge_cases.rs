//! Edge-case coverage for the simplex and branch-and-bound entry points:
//! infeasibility and unboundedness through the MILP route, degenerate
//! tie-breaking (including Beale's classic cycling instance, which Bland's
//! rule must terminate on), and branching behavior where naive rounding of
//! the LP relaxation is wrong.

use xplain_lp::{Cmp, LinExpr, LpError, Model, Sense, VarType};

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-6, "{a} != {b}");
}

#[test]
fn milp_infeasible_detected() {
    // Two binaries that must sum to both >= 2 and <= 1: no 0/1 point fits,
    // and the LP relaxation is already infeasible.
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    m.add_constr("lo", a + b, Cmp::Ge, 2.0);
    m.add_constr("hi", a + b, Cmp::Le, 1.0);
    m.set_objective(a + b);
    assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn milp_integer_infeasible_but_lp_feasible() {
    // 2x = 1 with x integer: the relaxation is feasible (x = 0.5) but no
    // integer point satisfies it — branch-and-bound must prove infeasible.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Integer, 0.0, 10.0);
    m.add_constr("odd", x * 2.0, Cmp::Eq, 1.0);
    m.set_objective(x + 0.0);
    assert!(
        m.solve_relaxation().is_ok(),
        "relaxation should be feasible"
    );
    assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn milp_unbounded_detected() {
    // Unbounded integer variable with a positive objective coefficient.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Integer, 0.0, f64::INFINITY);
    m.set_objective(x + 0.0);
    assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn beale_cycling_instance_terminates() {
    // Beale (1955): the textbook example on which Dantzig's most-negative
    // pivot rule cycles forever. Bland's rule must terminate at the optimum
    // x = (1/25, 0, 1, 0) with objective -1/20.
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_nonneg("x1");
    let x2 = m.add_nonneg("x2");
    let x3 = m.add_nonneg("x3");
    let x4 = m.add_nonneg("x4");
    m.add_constr(
        "r1",
        x1 * 0.25 - x2 * 60.0 - x3 * (1.0 / 25.0) + x4 * 9.0,
        Cmp::Le,
        0.0,
    );
    m.add_constr(
        "r2",
        x1 * 0.5 - x2 * 90.0 - x3 * (1.0 / 50.0) + x4 * 3.0,
        Cmp::Le,
        0.0,
    );
    m.add_constr("r3", x3 + 0.0, Cmp::Le, 1.0);
    m.set_objective(x1 * -0.75 + x2 * 150.0 - x3 * 0.02 + x4 * 6.0);
    let s = m.solve().expect("Bland's rule must not cycle");
    assert_close(s.objective, -0.05);
}

#[test]
fn degenerate_vertex_tie_breaking() {
    // The optimal vertex (1, 1) is the intersection of three constraints
    // (one redundant), so the ratio test ties; the solver must still land
    // on the unique optimal objective.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x");
    let y = m.add_nonneg("y");
    m.add_constr("cx", x + 0.0, Cmp::Le, 1.0);
    m.add_constr("cy", y + 0.0, Cmp::Le, 1.0);
    m.add_constr("sum", x + y, Cmp::Le, 2.0);
    m.set_objective(x + y);
    let s = m.solve().unwrap();
    assert_close(s.objective, 2.0);
    assert_close(s.value(x), 1.0);
    assert_close(s.value(y), 1.0);
}

#[test]
fn alternative_optima_return_a_feasible_optimum() {
    // max x + y over x + y <= 3 (whole facet optimal): any optimal vertex
    // is acceptable, but objective and feasibility are pinned.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Continuous, 0.0, 2.0);
    let y = m.add_var("y", VarType::Continuous, 0.0, 2.0);
    m.add_constr("facet", x + y, Cmp::Le, 3.0);
    m.set_objective(x + y);
    let s = m.solve().unwrap();
    assert_close(s.objective, 3.0);
    assert!(m.check_feasible(&s.values, 1e-9).is_none());
}

#[test]
fn branch_and_bound_beats_rounded_relaxation() {
    // Classic 0/1 knapsack: max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14.
    // The LP relaxation picks a fractional item; rounding it down gives 19,
    // but the true integer optimum is 21 ({a,c,d} and {b,c,d} both attain
    // it).
    let mut m = Model::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    let c = m.add_binary("c");
    let d = m.add_binary("d");
    let mut weight = LinExpr::new();
    weight.add_term(a, 5.0);
    weight.add_term(b, 7.0);
    weight.add_term(c, 4.0);
    weight.add_term(d, 3.0);
    m.add_constr("cap", weight, Cmp::Le, 14.0);
    m.set_objective(a * 8.0 + b * 11.0 + c * 6.0 + d * 4.0);

    let relax = m.solve_relaxation().unwrap();
    assert!(
        relax.objective > 21.0 + 1e-9,
        "relaxation must be fractional"
    );
    let s = m.solve().unwrap();
    assert_close(s.objective, 21.0);
    for v in [a, b, c, d] {
        let x = s.value(v);
        assert!(
            (x - x.round()).abs() < 1e-9,
            "non-integral value {x} for {}",
            m.var_name(v)
        );
    }
    assert!(m.check_feasible(&s.values, 1e-9).is_none());
}

#[test]
fn integer_bounds_tighten_to_integers() {
    // x integer in [0.2, 2.5]: feasible integers are {1, 2}.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Integer, 0.2, 2.5);
    m.set_objective(x + 0.0);
    let s = m.solve().unwrap();
    assert_close(s.objective, 2.0);

    let mut m2 = Model::new(Sense::Minimize);
    let y = m2.add_var("y", VarType::Integer, 0.2, 2.5);
    m2.set_objective(y + 0.0);
    let s2 = m2.solve().unwrap();
    assert_close(s2.objective, 1.0);
}

#[test]
fn equality_only_degenerate_system() {
    // Equalities intersecting at a single degenerate point; phase 1 must
    // drive artificials out despite zero-ratio pivots.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x");
    let y = m.add_nonneg("y");
    let z = m.add_nonneg("z");
    m.add_constr("e1", x + y, Cmp::Eq, 1.0);
    m.add_constr("e2", x - y, Cmp::Eq, 1.0);
    m.add_constr("e3", x + y + z, Cmp::Eq, 1.0);
    m.set_objective(x + y + z);
    let s = m.solve().unwrap();
    assert_close(s.value(x), 1.0);
    assert_close(s.value(y), 0.0);
    assert_close(s.value(z), 0.0);
}
