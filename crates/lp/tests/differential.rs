//! Differential test-bed: the revised bounded-variable simplex against the
//! reference tableau solver on randomized models.
//!
//! Every case builds one model and solves it with both engines. The two
//! must agree on *status* (optimal / infeasible / unbounded) and, when
//! optimal, on the objective to 1e-6; the revised solution is additionally
//! re-checked for feasibility against the original model (never against
//! the solver's own internal form). Coefficients are drawn from small
//! integer grids so degenerate ties and redundant rows appear constantly —
//! the regime where pivoting bugs hide.
//!
//! Blocks:
//! * `lp_statuses_and_objectives_agree` — 256 cases sweeping bound shapes
//!   (two-sided / one-sided / free / fixed), row senses, and sign-mixed
//!   coefficients, including infeasible and unbounded instances;
//! * `warm_session_matches_cold_reference` — bound-perturbation chains
//!   re-solved through one `SolverSession` vs a cold reference each step
//!   (the branch-and-bound access pattern);
//! * `rhs_sweep_matches_cold_reference` — rhs-perturbation chains (the
//!   gap-oracle access pattern);
//! * `milp_backends_agree` — branch-and-bound with the revised session
//!   backend vs the reference backend.

use proptest::prelude::*;
use xplain_lp::{milp, simplex, Cmp, LinExpr, LpError, Model, Sense, SolverSession, VarType};

/// Outcome classes the two solvers must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Optimal,
    Infeasible,
    Unbounded,
}

fn classify<T>(which: &str, m: &Model, r: &Result<T, LpError>) -> Status {
    match r {
        Ok(_) => Status::Optimal,
        Err(LpError::Infeasible) => Status::Infeasible,
        Err(LpError::Unbounded) => Status::Unbounded,
        Err(e) => panic!("{which} solver failed unexpectedly: {e}\nmodel:\n{m}"),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Bound shape selector: 0 two-sided, 1 lower-only, 2 upper-only, 3 free,
/// 4 fixed.
fn bounds_for(kind: u8, lo_raw: i32, width_raw: i32) -> (f64, f64) {
    let lo = lo_raw as f64 * 0.5;
    let width = width_raw as f64 * 0.5;
    match kind % 5 {
        0 => (lo, lo + width),
        1 => (lo, f64::INFINITY),
        2 => (f64::NEG_INFINITY, lo + width),
        3 => (f64::NEG_INFINITY, f64::INFINITY),
        _ => (lo, lo),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_model(
    n: usize,
    mrows: usize,
    kinds: &[u8],
    lo_raw: &[i32],
    width_raw: &[i32],
    coefs: &[i32],
    cmps: &[u8],
    rhs: &[i32],
    obj: &[i32],
    sense_max: bool,
) -> Model {
    let sense = if sense_max {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let (lo, hi) = bounds_for(kinds[i], lo_raw[i], width_raw[i]);
            m.add_var(format!("v{i}"), VarType::Continuous, lo, hi)
        })
        .collect();
    for r in 0..mrows {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            let c = coefs[r * 6 + i];
            if c != 0 {
                e.add_term(v, c as f64);
            }
        }
        let cmp = match cmps[r] % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constr(format!("c{r}"), e, cmp, rhs[r] as f64);
    }
    let mut o = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        o.add_term(v, obj[i] as f64);
    }
    m.set_objective(o);
    m
}

fn assert_agree(m: &Model) {
    let revised = simplex::solve(m);
    let reference = simplex::reference::solve(m);
    let rs = classify("revised", m, &revised);
    let fs = classify("reference", m, &reference);
    prop_assert_eq!(
        rs,
        fs,
        "status diverged ({:?} vs {:?})\nmodel:\n{}",
        rs,
        fs,
        m
    );
    if let (Ok(a), Ok(b)) = (&revised, &reference) {
        prop_assert!(
            close(a.objective, b.objective),
            "objective diverged: revised {} vs reference {}\nmodel:\n{}",
            a.objective,
            b.objective,
            m
        );
        // Feasibility is always judged against the original model.
        prop_assert!(
            m.check_feasible(&a.values, 1e-6).is_none(),
            "revised solution infeasible: {:?}\nmodel:\n{}",
            m.check_feasible(&a.values, 1e-6),
            m
        );
        prop_assert!(
            close(a.objective, m.objective().eval(&a.values)),
            "revised objective does not match its own values"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline sweep: 256 random models over every bound shape.
    #[test]
    fn lp_statuses_and_objectives_agree(
        n in 1usize..6,
        mrows in 0usize..6,
        kinds in collection::vec(0u8..5, 6),
        lo_raw in collection::vec(-6i32..6, 6),
        width_raw in collection::vec(0i32..8, 6),
        coefs in collection::vec(-3i32..4, 36),
        cmps in collection::vec(0u8..3, 6),
        rhs in collection::vec(-8i32..9, 6),
        obj in collection::vec(-3i32..4, 6),
        sense_bit in 0u8..2,
    ) {
        let m = build_model(
            n, mrows, &kinds, &lo_raw, &width_raw, &coefs, &cmps, &rhs, &obj, sense_bit == 1,
        );
        assert_agree(&m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-and-bound access pattern: a chain of bound tightenings
    /// re-solved through one warm session must match a cold reference
    /// solve at every step.
    #[test]
    fn warm_session_matches_cold_reference(
        n in 2usize..6,
        mrows in 1usize..5,
        coefs in collection::vec(0i32..4, 36),
        rhs in collection::vec(2i32..12, 6),
        obj in collection::vec(-2i32..4, 6),
        tweak_var in collection::vec(0usize..6, 4),
        tweak_kind in collection::vec(0u8..3, 4),
        tweak_val in collection::vec(0i32..5, 4),
    ) {
        // Start bounded-feasible: x in [0, 4], nonnegative rows.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 4.0))
            .collect();
        for r in 0..mrows {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                let c = coefs[r * 6 + i];
                if c != 0 {
                    e.add_term(v, c as f64);
                }
            }
            m.add_constr(format!("c{r}"), e, Cmp::Le, rhs[r] as f64);
        }
        let mut o = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            o.add_term(v, obj[i] as f64);
        }
        m.set_objective(o);

        let mut session = SolverSession::new();
        for t in 0..4 {
            let v = vars[tweak_var[t] % n];
            let (lo, hi) = m.var_bounds(v);
            let val = tweak_val[t] as f64;
            let (nlo, nhi) = match tweak_kind[t] {
                0 => (lo.max(val.min(4.0)), hi), // raise lower
                1 => (lo, hi.min(val)),          // drop upper
                _ => (0.0, 4.0),                 // relax back
            };
            if nlo > nhi {
                continue;
            }
            m.set_var_bounds(v, nlo, nhi);

            let warm = session.solve(&m);
            let cold = simplex::reference::solve(&m);
            let ws = classify("warm", &m, &warm);
            let cs = classify("reference", &m, &cold);
            prop_assert_eq!(ws, cs, "status diverged after tweak\nmodel:\n{}", m);
            if let (Ok(a), Ok(b)) = (&warm, &cold) {
                prop_assert!(
                    close(a.objective, b.objective),
                    "objective diverged: warm {} vs cold {}\nmodel:\n{}",
                    a.objective, b.objective, m
                );
                prop_assert!(m.check_feasible(&a.values, 1e-6).is_none());
            }
        }
    }

    /// Gap-oracle access pattern: same structure, shifting rhs.
    #[test]
    fn rhs_sweep_matches_cold_reference(
        n in 2usize..5,
        coefs in collection::vec(1i32..4, 10),
        rhs_flat in collection::vec(0i32..14, 10),
        obj in collection::vec(1i32..4, 5),
    ) {
        let mut session = SolverSession::new();
        for step in rhs_flat.chunks(2) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, f64::INFINITY))
                .collect();
            for (r, &b) in step.iter().enumerate() {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, coefs[r * 5 + i] as f64);
                }
                m.add_constr(format!("c{r}"), e, Cmp::Le, b as f64);
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, obj[i] as f64);
            }
            m.set_objective(o);

            let warm = session.solve(&m).expect("bounded feasible LP");
            let cold = simplex::reference::solve(&m).expect("bounded feasible LP");
            prop_assert!(
                close(warm.objective, cold.objective),
                "objective diverged: warm {} vs cold {}\nmodel:\n{}",
                warm.objective, cold.objective, m
            );
            prop_assert!(m.check_feasible(&warm.values, 1e-6).is_none());
        }
        // The sweep re-solves one shape: everything after the first solve
        // must have warm-started.
        prop_assert_eq!(session.stats.cold_starts, 1);
        prop_assert_eq!(session.stats.warm_hits, session.stats.solves - 1);
    }

    /// Branch-and-bound differential: warm revised sessions vs cold
    /// reference solves must reach the same MILP optimum.
    #[test]
    fn milp_backends_agree(
        n in 1usize..6,
        weights in collection::vec(1i32..5, 6),
        values in collection::vec(-2i32..6, 6),
        cap in 2i32..12,
        eq_bit in 0u8..2,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            w.add_term(v, weights[i] as f64);
            o.add_term(v, values[i] as f64);
        }
        m.add_constr("cap", w, Cmp::Le, cap as f64);
        if eq_bit == 1 && n >= 2 {
            m.add_constr("pair", vars[0] + vars[1], Cmp::Le, 1.0);
        }
        m.set_objective(o);

        let revised = milp::solve_with(&m, milp::Backend::Revised);
        let reference = milp::solve_with(&m, milp::Backend::Reference);
        let rs = classify("revised milp", &m, &revised);
        let fs = classify("reference milp", &m, &reference);
        prop_assert_eq!(rs, fs);
        if let (Ok((a, _)), Ok((b, _))) = (&revised, &reference) {
            prop_assert!(
                close(a.objective, b.objective),
                "MILP objective diverged: revised {} vs reference {}",
                a.objective, b.objective
            );
            prop_assert!(m.check_feasible(&a.values, 1e-6).is_none());
        }
    }
}
