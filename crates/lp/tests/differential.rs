//! Differential test-bed: the revised bounded-variable simplex against the
//! reference tableau solver on randomized models.
//!
//! Every case builds one model and solves it with both engines. The two
//! must agree on *status* (optimal / infeasible / unbounded) and, when
//! optimal, on the objective to 1e-6; the revised solution is additionally
//! re-checked for feasibility against the original model (never against
//! the solver's own internal form). Coefficients are drawn from small
//! integer grids so degenerate ties and redundant rows appear constantly —
//! the regime where pivoting bugs hide.
//!
//! Blocks:
//! * `lp_statuses_and_objectives_agree` — 256 cases sweeping bound shapes
//!   (two-sided / one-sided / free / fixed), row senses, and sign-mixed
//!   coefficients, including infeasible and unbounded instances;
//! * `warm_session_matches_cold_reference` — bound-perturbation chains
//!   re-solved through one `SolverSession` vs a cold reference each step
//!   (the branch-and-bound access pattern);
//! * `rhs_sweep_matches_cold_reference` — rhs-perturbation chains (the
//!   gap-oracle access pattern);
//! * `milp_backends_agree` — branch-and-bound with the revised session
//!   backend vs the reference backend.

use proptest::prelude::*;
use xplain_lp::{milp, simplex, Cmp, LinExpr, LpError, Model, Sense, SolverSession, VarType};

/// Outcome classes the two solvers must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Optimal,
    Infeasible,
    Unbounded,
}

fn classify<T>(which: &str, m: &Model, r: &Result<T, LpError>) -> Status {
    match r {
        Ok(_) => Status::Optimal,
        Err(LpError::Infeasible) => Status::Infeasible,
        Err(LpError::Unbounded) => Status::Unbounded,
        Err(e) => panic!("{which} solver failed unexpectedly: {e}\nmodel:\n{m}"),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Bound shape selector: 0 two-sided, 1 lower-only, 2 upper-only, 3 free,
/// 4 fixed.
fn bounds_for(kind: u8, lo_raw: i32, width_raw: i32) -> (f64, f64) {
    let lo = lo_raw as f64 * 0.5;
    let width = width_raw as f64 * 0.5;
    match kind % 5 {
        0 => (lo, lo + width),
        1 => (lo, f64::INFINITY),
        2 => (f64::NEG_INFINITY, lo + width),
        3 => (f64::NEG_INFINITY, f64::INFINITY),
        _ => (lo, lo),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_model(
    n: usize,
    mrows: usize,
    kinds: &[u8],
    lo_raw: &[i32],
    width_raw: &[i32],
    coefs: &[i32],
    cmps: &[u8],
    rhs: &[i32],
    obj: &[i32],
    sense_max: bool,
) -> Model {
    let sense = if sense_max {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let (lo, hi) = bounds_for(kinds[i], lo_raw[i], width_raw[i]);
            m.add_var(format!("v{i}"), VarType::Continuous, lo, hi)
        })
        .collect();
    for r in 0..mrows {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            let c = coefs[r * 6 + i];
            if c != 0 {
                e.add_term(v, c as f64);
            }
        }
        let cmp = match cmps[r] % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constr(format!("c{r}"), e, cmp, rhs[r] as f64);
    }
    let mut o = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        o.add_term(v, obj[i] as f64);
    }
    m.set_objective(o);
    m
}

fn assert_agree(m: &Model) {
    let revised = simplex::solve(m);
    let reference = simplex::reference::solve(m);
    let rs = classify("revised", m, &revised);
    let fs = classify("reference", m, &reference);
    prop_assert_eq!(
        rs,
        fs,
        "status diverged ({:?} vs {:?})\nmodel:\n{}",
        rs,
        fs,
        m
    );
    if let (Ok(a), Ok(b)) = (&revised, &reference) {
        prop_assert!(
            close(a.objective, b.objective),
            "objective diverged: revised {} vs reference {}\nmodel:\n{}",
            a.objective,
            b.objective,
            m
        );
        // Feasibility is always judged against the original model.
        prop_assert!(
            m.check_feasible(&a.values, 1e-6).is_none(),
            "revised solution infeasible: {:?}\nmodel:\n{}",
            m.check_feasible(&a.values, 1e-6),
            m
        );
        prop_assert!(
            close(a.objective, m.objective().eval(&a.values)),
            "revised objective does not match its own values"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline sweep: 256 random models over every bound shape.
    #[test]
    fn lp_statuses_and_objectives_agree(
        n in 1usize..6,
        mrows in 0usize..6,
        kinds in collection::vec(0u8..5, 6),
        lo_raw in collection::vec(-6i32..6, 6),
        width_raw in collection::vec(0i32..8, 6),
        coefs in collection::vec(-3i32..4, 36),
        cmps in collection::vec(0u8..3, 6),
        rhs in collection::vec(-8i32..9, 6),
        obj in collection::vec(-3i32..4, 6),
        sense_bit in 0u8..2,
    ) {
        let m = build_model(
            n, mrows, &kinds, &lo_raw, &width_raw, &coefs, &cmps, &rhs, &obj, sense_bit == 1,
        );
        assert_agree(&m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-and-bound access pattern: a chain of bound tightenings
    /// re-solved through one warm session must match a cold reference
    /// solve at every step.
    #[test]
    fn warm_session_matches_cold_reference(
        n in 2usize..6,
        mrows in 1usize..5,
        coefs in collection::vec(0i32..4, 36),
        rhs in collection::vec(2i32..12, 6),
        obj in collection::vec(-2i32..4, 6),
        tweak_var in collection::vec(0usize..6, 4),
        tweak_kind in collection::vec(0u8..3, 4),
        tweak_val in collection::vec(0i32..5, 4),
    ) {
        // Start bounded-feasible: x in [0, 4], nonnegative rows.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 4.0))
            .collect();
        for r in 0..mrows {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                let c = coefs[r * 6 + i];
                if c != 0 {
                    e.add_term(v, c as f64);
                }
            }
            m.add_constr(format!("c{r}"), e, Cmp::Le, rhs[r] as f64);
        }
        let mut o = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            o.add_term(v, obj[i] as f64);
        }
        m.set_objective(o);

        let mut session = SolverSession::new();
        for t in 0..4 {
            let v = vars[tweak_var[t] % n];
            let (lo, hi) = m.var_bounds(v);
            let val = tweak_val[t] as f64;
            let (nlo, nhi) = match tweak_kind[t] {
                0 => (lo.max(val.min(4.0)), hi), // raise lower
                1 => (lo, hi.min(val)),          // drop upper
                _ => (0.0, 4.0),                 // relax back
            };
            if nlo > nhi {
                continue;
            }
            m.set_var_bounds(v, nlo, nhi);

            let warm = session.solve(&m);
            let cold = simplex::reference::solve(&m);
            let ws = classify("warm", &m, &warm);
            let cs = classify("reference", &m, &cold);
            prop_assert_eq!(ws, cs, "status diverged after tweak\nmodel:\n{}", m);
            if let (Ok(a), Ok(b)) = (&warm, &cold) {
                prop_assert!(
                    close(a.objective, b.objective),
                    "objective diverged: warm {} vs cold {}\nmodel:\n{}",
                    a.objective, b.objective, m
                );
                prop_assert!(m.check_feasible(&a.values, 1e-6).is_none());
            }
        }
    }

    /// Gap-oracle access pattern: same structure, shifting rhs.
    #[test]
    fn rhs_sweep_matches_cold_reference(
        n in 2usize..5,
        coefs in collection::vec(1i32..4, 10),
        rhs_flat in collection::vec(0i32..14, 10),
        obj in collection::vec(1i32..4, 5),
    ) {
        let mut session = SolverSession::new();
        for step in rhs_flat.chunks(2) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, f64::INFINITY))
                .collect();
            for (r, &b) in step.iter().enumerate() {
                let mut e = LinExpr::new();
                for (i, &v) in vars.iter().enumerate() {
                    e.add_term(v, coefs[r * 5 + i] as f64);
                }
                m.add_constr(format!("c{r}"), e, Cmp::Le, b as f64);
            }
            let mut o = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                o.add_term(v, obj[i] as f64);
            }
            m.set_objective(o);

            let warm = session.solve(&m).expect("bounded feasible LP");
            let cold = simplex::reference::solve(&m).expect("bounded feasible LP");
            prop_assert!(
                close(warm.objective, cold.objective),
                "objective diverged: warm {} vs cold {}\nmodel:\n{}",
                warm.objective, cold.objective, m
            );
            prop_assert!(m.check_feasible(&warm.values, 1e-6).is_none());
        }
        // The sweep re-solves one shape: everything after the first solve
        // must have warm-started.
        prop_assert_eq!(session.stats.cold_starts, 1);
        prop_assert_eq!(session.stats.warm_hits, session.stats.solves - 1);
    }

    /// Branch-and-bound differential: warm revised sessions vs cold
    /// reference solves must reach the same MILP optimum.
    #[test]
    fn milp_backends_agree(
        n in 1usize..6,
        weights in collection::vec(1i32..5, 6),
        values in collection::vec(-2i32..6, 6),
        cap in 2i32..12,
        eq_bit in 0u8..2,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut w = LinExpr::new();
        let mut o = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            w.add_term(v, weights[i] as f64);
            o.add_term(v, values[i] as f64);
        }
        m.add_constr("cap", w, Cmp::Le, cap as f64);
        if eq_bit == 1 && n >= 2 {
            m.add_constr("pair", vars[0] + vars[1], Cmp::Le, 1.0);
        }
        m.set_objective(o);

        let revised = milp::solve_with(&m, milp::Backend::Revised);
        let reference = milp::solve_with(&m, milp::Backend::Reference);
        let rs = classify("revised milp", &m, &revised);
        let fs = classify("reference milp", &m, &reference);
        prop_assert_eq!(rs, fs);
        if let (Ok((a, _)), Ok((b, _))) = (&revised, &reference) {
            prop_assert!(
                close(a.objective, b.objective),
                "MILP objective diverged: revised {} vs reference {}",
                a.objective, b.objective
            );
            prop_assert!(m.check_feasible(&a.values, 1e-6).is_none());
        }
    }
}

/// Tiny deterministic LCG so the 256-case chains below are reproducible
/// without pulling proptest's shrinking into a *sequential* scenario
/// (each step's warm state depends on every step before it).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The fingerprint-guarded warm-start bugfix: a 256-step bound-delta chain
/// re-solved through one session (matrix fingerprint identical at every
/// step, so after the first solve every re-solve reuses the cached
/// factorization) must agree with a cold reference solve on status and
/// objective at every step.
#[test]
fn warm_equals_cold_across_256_bound_deltas() {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..6)
        .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 4.0))
        .collect();
    let coefs = [
        [1.0, 2.0, 0.0, 1.0, 3.0, 1.0],
        [2.0, 0.0, 1.0, 1.0, 0.0, 2.0],
        [0.0, 1.0, 2.0, 0.0, 1.0, 1.0],
        [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
    ];
    for (r, row) in coefs.iter().enumerate() {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            if row[i] != 0.0 {
                e.add_term(v, row[i]);
            }
        }
        m.add_constr(format!("c{r}"), e, Cmp::Le, 9.0 + r as f64);
    }
    let mut o = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        o.add_term(v, 1.0 + (i % 3) as f64);
    }
    m.set_objective(o);

    let mut session = SolverSession::new();
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    for step in 0..256 {
        // One bound delta per step; every shape of tightening/relaxing.
        let v = vars[rng.pick(6)];
        let (nlo, nhi) = match rng.pick(4) {
            0 => (rng.pick(4) as f64 * 0.5, 4.0),       // raise lower
            1 => (0.0, 1.0 + rng.pick(6) as f64 * 0.5), // drop upper
            2 => (0.0, 4.0),                            // relax back
            _ => {
                let x = rng.pick(8) as f64 * 0.5;
                (x, x) // fix
            }
        };
        if nlo > nhi {
            continue;
        }
        m.set_var_bounds(v, nlo, nhi);

        let warm = session.solve(&m);
        let cold = simplex::reference::solve(&m);
        let ws = classify("warm", &m, &warm);
        let cs = classify("reference", &m, &cold);
        assert_eq!(ws, cs, "status diverged at step {step}\nmodel:\n{m}");
        if let (Ok(a), Ok(b)) = (&warm, &cold) {
            assert!(
                close(a.objective, b.objective),
                "objective diverged at step {step}: warm {} vs cold {}\nmodel:\n{}",
                a.objective,
                b.objective,
                m
            );
            assert!(m.check_feasible(&a.values, 1e-6).is_none());
        }
    }
    // The whole chain re-solves one matrix: exactly one cold start, and
    // with the fingerprint guard no warm re-solve pays a refactorization
    // beyond the periodic cadence refreshes inside long solves.
    assert_eq!(session.stats.cold_starts, 1, "{:?}", session.stats);
    assert_eq!(
        session.stats.warm_hits,
        session.stats.solves - 1,
        "{:?}",
        session.stats
    );
}

/// The batched re-solve contract: `solve_batch` over N probes returns
/// bit-identical solutions to applying each probe by hand and issuing N
/// separate `solve_prepared` calls through an identically warmed session —
/// the batch API amortizes, it never diverges.
#[test]
fn batched_resolves_match_independent_solves_bitwise() {
    use xplain_lp::{Prepared, Probe, VarId};

    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..5)
        .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 6.0))
        .collect();
    let coefs = [
        [1.0, 1.0, 2.0, 0.0, 1.0],
        [2.0, 1.0, 0.0, 1.0, 1.0],
        [1.0, 0.0, 1.0, 2.0, 0.0],
    ];
    for (r, row) in coefs.iter().enumerate() {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            if row[i] != 0.0 {
                e.add_term(v, row[i]);
            }
        }
        m.add_constr(format!("c{r}"), e, Cmp::Le, 10.0);
    }
    let mut o = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        o.add_term(v, 1.0 + i as f64 * 0.5);
    }
    m.set_objective(o);

    let mut rng = Lcg(0x2545f4914f6cdd1d);
    let probes: Vec<Probe> = (0..32)
        .map(|_| {
            let mut p = Probe::default();
            for _ in 0..rng.pick(3) {
                let ix = rng.pick(5);
                let lo = rng.pick(5) as f64 * 0.5;
                p.bounds.push((VarId::from_index(ix), lo, lo + 2.0));
            }
            for _ in 0..rng.pick(3) {
                p.rhs.push((rng.pick(3), 4.0 + rng.pick(12) as f64));
            }
            p
        })
        .collect();

    // Path A: the batch API.
    let mut prep_a = Prepared::new(&m).unwrap();
    let mut session_a = SolverSession::new();
    let batch = session_a.solve_batch(&mut prep_a, &probes);

    // Path B: by-hand probe application, one solve_prepared per probe.
    let base = Prepared::new(&m).unwrap();
    let mut session_b = SolverSession::new();
    for (probe, from_batch) in probes.iter().zip(&batch) {
        let mut prep = base.clone();
        for &(v, lo, hi) in &probe.bounds {
            prep.set_var_bounds(v, lo, hi);
        }
        for &(row, rhs) in &probe.rhs {
            prep.set_rhs(row, rhs);
        }
        let single = session_b.solve_prepared(&prep);
        match (from_batch, &single) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                assert_eq!(a.values.len(), b.values.len());
                for (x, y) in a.values.iter().zip(&b.values) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("batch {a:?} diverged from independent {b:?}"),
        }
    }
    assert_eq!(session_a.stats, session_b.stats);
    // The base prepared LP must come back untouched from the batch.
    for (i, &v) in vars.iter().enumerate() {
        assert_eq!(prep_a.var_bounds(v), base.var_bounds(vars[i]));
    }
    for r in 0..3 {
        assert_eq!(prep_a.rhs(r).to_bits(), base.rhs(r).to_bits());
    }
}
