//! Infinity-safe (de)serialization for `f64` bounds.
//!
//! JSON has no representation for ±∞ (serde_json emits `null`, which then
//! fails to deserialize). Variable bounds legitimately use
//! `f64::INFINITY`, so bound fields serialize through this module: finite
//! values as numbers, non-finite ones as the strings `"inf"` / `"-inf"`.
//!
//! The function signatures target the workspace's vendored value-based
//! serde (`serialize(&f64) -> Value`, `deserialize(&Value) -> Result`);
//! `#[serde(with = "...")]` on a field routes through them.

use serde::{de, Value};

/// Serialize a possibly-infinite f64.
pub fn serialize(v: &f64) -> Value {
    if v.is_finite() {
        Value::Num(*v)
    } else if *v > 0.0 {
        Value::Str("inf".to_string())
    } else if *v < 0.0 {
        Value::Str("-inf".to_string())
    } else {
        Value::Str("nan".to_string())
    }
}

/// Deserialize a possibly-infinite f64.
pub fn deserialize(v: &Value) -> Result<f64, de::Error> {
    match v {
        Value::Num(n) => Ok(*n),
        Value::Str(t) => match t.as_str() {
            "inf" | "+inf" | "Infinity" => Ok(f64::INFINITY),
            "-inf" | "-Infinity" => Ok(f64::NEG_INFINITY),
            "nan" | "NaN" => Ok(f64::NAN),
            other => Err(de::Error::custom(format!(
                "unrecognized bound tag '{other}'"
            ))),
        },
        other => Err(de::Error::custom(format!(
            "expected number or bound tag, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Holder {
        #[serde(with = "super")]
        v: f64,
    }

    #[test]
    fn finite_roundtrip() {
        let h = Holder { v: 2.5 };
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, r#"{"v":2.5}"#);
        assert_eq!(serde_json::from_str::<Holder>(&json).unwrap(), h);
    }

    #[test]
    fn infinity_roundtrip() {
        let h = Holder { v: f64::INFINITY };
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("inf"));
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, f64::INFINITY);
    }

    #[test]
    fn negative_infinity_roundtrip() {
        let h = Holder {
            v: f64::NEG_INFINITY,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, f64::NEG_INFINITY);
    }

    #[test]
    fn nan_roundtrip() {
        let h = Holder { v: f64::NAN };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert!(back.v.is_nan());
    }
}
