//! Infinity-safe (de)serialization for `f64` bounds.
//!
//! JSON has no representation for ±∞ (serde_json emits `null`, which then
//! fails to deserialize). Variable bounds legitimately use
//! `f64::INFINITY`, so bound fields serialize through this module: finite
//! values as numbers, non-finite ones as the strings `"inf"` / `"-inf"`.

use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize, Deserialize)]
#[serde(untagged)]
enum Bound {
    Num(f64),
    Tag(String),
}

/// Serialize a possibly-infinite f64.
pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
    if v.is_finite() {
        Bound::Num(*v).serialize(s)
    } else if *v > 0.0 {
        Bound::Tag("inf".to_string()).serialize(s)
    } else if *v < 0.0 {
        Bound::Tag("-inf".to_string()).serialize(s)
    } else {
        Bound::Tag("nan".to_string()).serialize(s)
    }
}

/// Deserialize a possibly-infinite f64.
pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
    match Bound::deserialize(d)? {
        Bound::Num(v) => Ok(v),
        Bound::Tag(t) => match t.as_str() {
            "inf" | "+inf" | "Infinity" => Ok(f64::INFINITY),
            "-inf" | "-Infinity" => Ok(f64::NEG_INFINITY),
            "nan" | "NaN" => Ok(f64::NAN),
            other => Err(serde::de::Error::custom(format!(
                "unrecognized bound tag '{other}'"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Holder {
        #[serde(with = "super")]
        v: f64,
    }

    #[test]
    fn finite_roundtrip() {
        let h = Holder { v: 2.5 };
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, r#"{"v":2.5}"#);
        assert_eq!(serde_json::from_str::<Holder>(&json).unwrap(), h);
    }

    #[test]
    fn infinity_roundtrip() {
        let h = Holder { v: f64::INFINITY };
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("inf"));
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, f64::INFINITY);
    }

    #[test]
    fn negative_infinity_roundtrip() {
        let h = Holder {
            v: f64::NEG_INFINITY,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, f64::NEG_INFINITY);
    }

    #[test]
    fn nan_roundtrip() {
        let h = Holder { v: f64::NAN };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert!(back.v.is_nan());
    }
}
