//! Model builder: variables, constraints, objective, and the solve entry
//! point that dispatches between the pure-LP simplex and branch-and-bound.

use crate::error::LpError;
use crate::expr::{LinExpr, VarId};
use crate::{milp, simplex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    Minimize,
    Maximize,
}

impl Sense {
    /// True if `a` is a strictly better objective value than `b` under this
    /// sense (with tolerance `tol`).
    pub fn better(self, a: f64, b: f64, tol: f64) -> bool {
        match self {
            Sense::Minimize => a < b - tol,
            Sense::Maximize => a > b + tol,
        }
    }

    /// The worst possible objective value under this sense.
    pub fn worst(self) -> f64 {
        match self {
            Sense::Minimize => f64::INFINITY,
            Sense::Maximize => f64::NEG_INFINITY,
        }
    }
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarType {
    /// Real-valued.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Shorthand for an integer variable with bounds clamped to `[0, 1]`.
    Binary,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "="),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VarData {
    pub name: String,
    pub vtype: VarType,
    #[serde(with = "crate::serde_inf")]
    pub lo: f64,
    #[serde(with = "crate::serde_inf")]
    pub hi: f64,
}

/// A single linear constraint `expr cmp rhs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Solver knobs. The defaults are sized for the models XPlain generates
/// (up to a few thousand variables).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Hard cap on simplex pivots (per LP solve).
    pub max_iterations: usize,
    /// Hard cap on branch-and-bound nodes.
    pub max_nodes: usize,
    /// Feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost optimality tolerance.
    pub opt_tol: f64,
    /// Integrality tolerance for MILP.
    pub int_tol: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: 200_000,
            max_nodes: 200_000,
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            int_tol: 1e-6,
        }
    }
}

/// A solved assignment: objective value plus one value per variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    pub objective: f64,
    pub values: Vec<f64>,
}

impl Solution {
    /// Value of `var` in this solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Evaluate an arbitrary expression against this solution.
    pub fn eval(&self, expr: &LinExpr) -> f64 {
        expr.eval(&self.values)
    }
}

/// A linear (or mixed-integer linear) optimization model.
///
/// ```
/// use xplain_lp::{Model, Sense, VarType, Cmp};
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
/// let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
/// m.add_constr("cap", x + y, Cmp::Le, 12.0);
/// m.set_objective(x * 3.0 + y * 2.0);
/// let sol = m.solve().unwrap();
/// assert!((sol.objective - 34.0).abs() < 1e-6); // x=10, y=2
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) options: SolveOptions,
}

impl Model {
    /// Create an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            options: SolveOptions::default(),
        }
    }

    /// Optimization direction of this model.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Mutable access to solver options.
    pub fn options_mut(&mut self) -> &mut SolveOptions {
        &mut self.options
    }

    /// Solver options.
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// Add a variable and return its handle.
    ///
    /// `Binary` variables have their bounds intersected with `[0, 1]`.
    pub fn add_var(&mut self, name: impl Into<String>, vtype: VarType, lo: f64, hi: f64) -> VarId {
        let (lo, hi) = match vtype {
            VarType::Binary => (lo.max(0.0), hi.min(1.0)),
            _ => (lo, hi),
        };
        self.vars.push(VarData {
            name: name.into(),
            vtype,
            lo,
            hi,
        });
        VarId(self.vars.len() - 1)
    }

    /// Convenience: a continuous variable with bounds `[0, +inf)`.
    pub fn add_nonneg(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarType::Continuous, 0.0, f64::INFINITY)
    }

    /// Convenience: a binary variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarType::Binary, 0.0, 1.0)
    }

    /// Add the constraint `expr cmp rhs`.
    pub fn add_constr(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            expr: expr.into(),
            cmp,
            rhs,
        });
    }

    /// Fix `var` to exactly `value` (adds an equality constraint).
    pub fn fix(&mut self, name: impl Into<String>, var: VarId, value: f64) {
        self.add_constr(name, LinExpr::term(var, 1.0), Cmp::Eq, value);
    }

    /// Set the objective expression (maximized or minimized per the model
    /// sense). A constant term is allowed and carried through.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// The current objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, var: VarId) -> (f64, f64) {
        let d = &self.vars[var.index()];
        (d.lo, d.hi)
    }

    /// Tighten (replace) the bounds of a variable.
    pub fn set_var_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        let d = &mut self.vars[var.index()];
        d.lo = lo;
        d.hi = hi;
    }

    /// Type of a variable.
    pub fn var_type(&self, var: VarId) -> VarType {
        self.vars[var.index()].vtype
    }

    /// Iterate over constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// True if the model declares at least one integer or binary variable.
    pub fn has_integers(&self) -> bool {
        self.vars
            .iter()
            .any(|v| matches!(v.vtype, VarType::Integer | VarType::Binary))
    }

    /// Sanity-check the model: finite coefficients, coherent bounds, and
    /// variable references within range.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lo.is_nan() || v.hi.is_nan() {
                return Err(LpError::InvalidModel(format!(
                    "variable {} has NaN bound",
                    v.name
                )));
            }
            if v.lo > v.hi {
                return Err(LpError::InvalidModel(format!(
                    "variable {} (x{i}) has empty domain [{}, {}]",
                    v.name, v.lo, v.hi
                )));
            }
        }
        let check_expr = |ename: &str, e: &LinExpr| -> Result<(), LpError> {
            if e.has_non_finite() {
                return Err(LpError::InvalidModel(format!(
                    "{ename} has non-finite coefficient"
                )));
            }
            if let Some(mx) = e.max_var_index() {
                if mx >= self.vars.len() {
                    return Err(LpError::InvalidModel(format!(
                        "{ename} references unknown variable x{mx}"
                    )));
                }
            }
            Ok(())
        };
        check_expr("objective", &self.objective)?;
        for c in &self.constraints {
            check_expr(&format!("constraint {}", c.name), &c.expr)?;
            if !c.rhs.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "constraint {} has non-finite rhs",
                    c.name
                )));
            }
        }
        Ok(())
    }

    /// Solve the model: simplex for pure LPs, branch-and-bound when integer
    /// variables are present.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.validate()?;
        if self.has_integers() {
            milp::solve(self)
        } else {
            simplex::solve(self)
        }
    }

    /// Solve the LP relaxation (integrality dropped) regardless of variable
    /// types.
    pub fn solve_relaxation(&self) -> Result<Solution, LpError> {
        self.validate()?;
        simplex::solve(self)
    }

    /// Check whether `values` satisfies every constraint and bound within
    /// `tol`. Returns the first violated item's description, or `None`.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Option<String> {
        for (i, v) in self.vars.iter().enumerate() {
            let x = values.get(i).copied().unwrap_or(0.0);
            if x < v.lo - tol || x > v.hi + tol {
                return Some(format!(
                    "bound violated: {} = {x} not in [{}, {}]",
                    v.name, v.lo, v.hi
                ));
            }
            if matches!(v.vtype, VarType::Integer | VarType::Binary) && (x - x.round()).abs() > tol
            {
                return Some(format!("integrality violated: {} = {x}", v.name));
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(values);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Some(format!(
                    "constraint {} violated: {lhs} {} {}",
                    c.name, c.cmp, c.rhs
                ));
            }
        }
        None
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {}",
            match self.sense {
                Sense::Minimize => "minimize",
                Sense::Maximize => "maximize",
            },
            self.objective
        )?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            writeln!(f, "  {}: {} {} {}", c.name, c.expr, c.cmp, c.rhs)?;
        }
        for (i, v) in self.vars.iter().enumerate() {
            writeln!(
                f,
                "  {} <= {} (x{i}, {:?}) <= {}",
                v.lo, v.name, v.vtype, v.hi
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_empty_domain() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", VarType::Continuous, 2.0, 1.0);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_catches_unknown_var() {
        let mut m = Model::new(Sense::Minimize);
        m.add_constr("c", LinExpr::term(VarId::from_index(3), 1.0), Cmp::Le, 1.0);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_catches_nan() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x");
        m.add_constr("c", LinExpr::term(x, f64::NAN), Cmp::Le, 1.0);
        assert!(matches!(m.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new(Sense::Minimize);
        let b = m.add_var("b", VarType::Binary, -5.0, 5.0);
        assert_eq!(m.var_bounds(b), (0.0, 1.0));
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.add_constr("c", x + 0.0, Cmp::Le, 0.5);
        assert!(m.check_feasible(&[0.4], 1e-9).is_none());
        assert!(m.check_feasible(&[0.6], 1e-9).is_some());
        assert!(m.check_feasible(&[-0.1], 1e-9).is_some());
    }

    #[test]
    fn display_contains_pieces() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("flow");
        m.add_constr("cap", x + 0.0, Cmp::Le, 3.0);
        m.set_objective(x + 0.0);
        let s = m.to_string();
        assert!(s.contains("maximize"));
        assert!(s.contains("cap"));
        assert!(s.contains("flow"));
    }

    #[test]
    fn sense_better() {
        assert!(Sense::Minimize.better(1.0, 2.0, 1e-9));
        assert!(Sense::Maximize.better(2.0, 1.0, 1e-9));
        assert!(!Sense::Maximize.better(1.0, 1.0, 1e-9));
    }
}
