//! # xplain-lp
//!
//! A small, exact, dependency-free linear-programming and mixed-integer
//! linear-programming solver. This crate is the optimization substrate of
//! the XPlain reproduction: the paper's pipeline (MetaOpt-style heuristic
//! analysis, the network-flow DSL compiler, optimal baselines) is built on
//! commercial solvers in the original work; here everything runs on this
//! two-phase primal simplex plus branch-and-bound.
//!
//! ## Design
//!
//! * **Exactness over speed.** The models XPlain generates are small
//!   (hundreds of variables); a dense tableau simplex with Bland's-rule
//!   anti-cycling solves them exactly and predictably.
//! * **Robustness.** All public entry points validate the model, reject
//!   NaN/infinite coefficients, and surface infeasibility/unboundedness and
//!   iteration caps as typed errors — never panics.
//!
//! ## Quick start
//!
//! ```
//! use xplain_lp::{Model, Sense, Cmp};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x");
//! let y = m.add_nonneg("y");
//! m.add_constr("capacity", x + y, Cmp::Le, 10.0);
//! m.set_objective(x * 2.0 + y);
//! let sol = m.solve().expect("solvable");
//! assert!((sol.objective - 20.0).abs() < 1e-6);
//! ```

pub mod error;
pub mod expr;
pub mod milp;
pub mod model;
pub mod serde_inf;
pub mod simplex;

pub use error::LpError;
pub use expr::{LinExpr, VarId};
pub use model::{Cmp, Constraint, Model, Sense, Solution, SolveOptions, VarType};
