//! # xplain-lp
//!
//! A small, exact, dependency-free linear-programming and mixed-integer
//! linear-programming solver. This crate is the optimization substrate of
//! the XPlain reproduction: the paper's pipeline (MetaOpt-style heuristic
//! analysis, the network-flow DSL compiler, optimal baselines) is built on
//! commercial solvers in the original work; here everything runs on this
//! two-phase primal simplex plus branch-and-bound.
//!
//! ## Design
//!
//! * **Exactness first, speed second — but both.** The hot path is a
//!   revised simplex with native bounded variables and warm-startable
//!   sessions ([`revised`]); the original dense tableau solver survives
//!   as [`simplex::reference`], the oracle of a differential test-bed
//!   that pins the two against each other on randomized models.
//! * **Robustness.** All public entry points validate the model, reject
//!   NaN/infinite coefficients, and surface infeasibility/unboundedness and
//!   iteration caps as typed errors — never panics.
//! * **Observability.** Every solve feeds process-wide [`counters`]
//!   (iterations, refactorizations, warm-start hits, branch-and-bound
//!   nodes) so upper layers can report solver work without plumbing.
//!
//! ## Quick start
//!
//! ```
//! use xplain_lp::{Model, Sense, Cmp};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_nonneg("x");
//! let y = m.add_nonneg("y");
//! m.add_constr("capacity", x + y, Cmp::Le, 10.0);
//! m.set_objective(x * 2.0 + y);
//! let sol = m.solve().expect("solvable");
//! assert!((sol.objective - 20.0).abs() < 1e-6);
//! ```

pub mod counters;
pub mod error;
pub mod expr;
mod factor;
pub mod milp;
pub mod model;
pub mod revised;
pub mod serde_inf;
pub mod simplex;

pub use counters::SolverCounters;
pub use error::LpError;
pub use expr::{LinExpr, VarId};
pub use milp::{Backend, MilpStats};
pub use model::{Cmp, Constraint, Model, Sense, Solution, SolveOptions, VarType};
pub use revised::{Prepared, Probe, SessionPool, SolverSession, SolverStats};
