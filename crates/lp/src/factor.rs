//! Sparse basis factorization: product-form eta file with a sparse
//! Gauss–Jordan base.
//!
//! The revised simplex needs two linear-algebra primitives per iteration:
//! `ftran` (`w = B⁻¹ a_j`, the entering column's image) and `btran`
//! (`y' = z' B⁻¹`, duals and pivot rows). The previous engine kept a dense
//! `m × m` basis inverse — `O(m²)` per pivot update, `O(m³)` per
//! refactorization, and every `ftran`/`btran` touched all `m²` entries.
//! This module replaces it with the classic *product form of the inverse*:
//!
//! ```text
//! B⁻¹ = E_k · … · E_1        (applied to a permuted identity)
//! ```
//!
//! where each `E_i` is an *eta matrix* — identity except in one column —
//! stored sparsely in one contiguous arena. The base etas come from a
//! sparse Gauss–Jordan pass over the basis columns (partial pivoting,
//! deterministic ties); each simplex pivot appends one more eta in `O(nnz)`
//! instead of rewriting a dense inverse. `ftran` skips every eta whose
//! pivot entry is zero in the running vector — on the slack-heavy bases
//! XPlain's small LPs produce, most are.
//!
//! Bookkeeping: position `k` of the basis is pinned to pivot row
//! `row_of_pos[k]` at factorization time and *keeps* that row across
//! updates (the entering column inherits the leaving position's row). A
//! row-space vector `v = apply(etas, x)` therefore carries the basic value
//! of position `k` at component `row_of_pos[k]`.

/// One eta matrix: identity except column `pivot_row`.
///
/// Applying it to `v` sets `v[pivot_row] *= pivot_inv` and then subtracts
/// `entry · v[pivot_row]` from every off-pivot row in `[start, end)` of the
/// shared arena.
#[derive(Debug, Clone, Copy)]
struct Eta {
    /// Arena range of the off-pivot `(row, value)` entries.
    start: u32,
    end: u32,
    pivot_row: u32,
    /// `1 / pivot`, stored inverted so application multiplies.
    pivot_inv: f64,
}

/// A product-form factorization of the current basis matrix.
#[derive(Debug, Clone, Default)]
pub(crate) struct Factorization {
    m: usize,
    /// Pivot row assigned to each basis position (a permutation of `0..m`).
    row_of_pos: Vec<usize>,
    /// Off-pivot eta entries, all etas back to back (cache-friendly: one
    /// linear scan per `ftran`/`btran`, no per-eta allocation).
    nz: Vec<(u32, f64)>,
    etas: Vec<Eta>,
    /// Number of *update* etas appended since the base build — the
    /// refactorization cadence counter (the old `pivots_since_refactor`).
    updates: usize,
}

/// Smallest pivot magnitude accepted while building the base.
const BUILD_TOL: f64 = 1e-9;

impl Factorization {
    /// Factorize the basis whose columns are `cols[k]` (sparse
    /// `(row, value)` lists). Returns `None` if the matrix is singular.
    pub fn build(m: usize, cols: &[&[(usize, f64)]]) -> Option<Factorization> {
        debug_assert_eq!(cols.len(), m);
        let mut f = Factorization {
            m,
            row_of_pos: Vec::with_capacity(m),
            nz: Vec::with_capacity(4 * m),
            etas: Vec::with_capacity(2 * m),
            updates: 0,
        };
        let mut pivoted = vec![false; m];
        let mut w = vec![0.0; m];
        for col in cols {
            // w = (E_{k-1} … E_1) a_{B(k)}
            for x in w.iter_mut() {
                *x = 0.0;
            }
            for &(r, v) in *col {
                w[r] += v;
            }
            f.apply(&mut w);
            // Partial pivoting over not-yet-pivoted rows; ties break to the
            // smallest row index (deterministic).
            let mut r_best = usize::MAX;
            let mut p_best = 0.0f64;
            for (r, &wr) in w.iter().enumerate() {
                if !pivoted[r] && wr.abs() > p_best {
                    p_best = wr.abs();
                    r_best = r;
                }
            }
            if p_best < BUILD_TOL {
                return None;
            }
            f.push_eta(&w, r_best);
            pivoted[r_best] = true;
            f.row_of_pos.push(r_best);
        }
        Some(f)
    }

    /// Store one eta from the dense working column `w` with pivot `row`.
    fn push_eta(&mut self, w: &[f64], row: usize) {
        let start = self.nz.len() as u32;
        for (r, &v) in w.iter().enumerate() {
            if r != row && v != 0.0 {
                self.nz.push((r as u32, v));
            }
        }
        self.etas.push(Eta {
            start,
            end: self.nz.len() as u32,
            pivot_row: row as u32,
            pivot_inv: 1.0 / w[row],
        });
    }

    /// Append the update eta for a pivot: position `leave_pos` leaves, and
    /// `w_pos` is the entering column's image in *position space*
    /// (`w_pos[k]` = component of `B⁻¹ a_q` at basis position `k`).
    pub fn push_update(&mut self, w_pos: &[f64], leave_pos: usize) {
        let start = self.nz.len() as u32;
        for (k, &v) in w_pos.iter().enumerate() {
            if k != leave_pos && v != 0.0 {
                self.nz.push((self.row_of_pos[k] as u32, v));
            }
        }
        self.etas.push(Eta {
            start,
            end: self.nz.len() as u32,
            pivot_row: self.row_of_pos[leave_pos] as u32,
            pivot_inv: 1.0 / w_pos[leave_pos],
        });
        self.updates += 1;
    }

    /// Update etas appended since the base build.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Basis size this factorization was built for.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// The pivot row of basis position `k`.
    #[inline]
    pub fn row_of_pos(&self, k: usize) -> usize {
        self.row_of_pos[k]
    }

    /// `v ← B⁻¹ v` in row space (apply every eta, in order). Etas whose
    /// pivot component is zero are skipped wholesale — the dominant case on
    /// sparse right-hand sides like an entering column.
    pub fn apply(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let r = eta.pivot_row as usize;
            let vr = v[r];
            if vr == 0.0 {
                continue;
            }
            let t = vr * eta.pivot_inv;
            v[r] = t;
            for &(row, val) in &self.nz[eta.start as usize..eta.end as usize] {
                v[row as usize] -= val * t;
            }
        }
    }

    /// `v ← (B⁻¹)' v` in row space (transposed etas, reverse order). Used
    /// for duals (`y = (B⁻¹)' c_B`-scatter) and pivot rows
    /// (`ρ = (B⁻¹)' e_r`).
    pub fn apply_transposed(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let r = eta.pivot_row as usize;
            let mut dot = 0.0;
            for &(row, val) in &self.nz[eta.start as usize..eta.end as usize] {
                dot += val * v[row as usize];
            }
            let vr = v[r];
            if vr == 0.0 && dot == 0.0 {
                continue;
            }
            v[r] = (vr - dot) * eta.pivot_inv;
        }
    }

    /// Total stored eta entries (diagnostic; drives nothing today — the
    /// refactorization trigger is the update count, matching the previous
    /// engine's cadence).
    #[cfg(test)]
    fn nnz(&self) -> usize {
        self.nz.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference dense solve of `B x = b` for cross-checking.
    fn dense_solve(m: usize, cols: &[&[(usize, f64)]], b: &[f64]) -> Vec<f64> {
        let mut a = vec![0.0; m * (m + 1)];
        for (k, col) in cols.iter().enumerate() {
            for &(r, v) in *col {
                a[r * (m + 1) + k] += v;
            }
        }
        for (r, &bv) in b.iter().enumerate() {
            a[r * (m + 1) + m] = bv;
        }
        for c in 0..m {
            let piv = (c..m)
                .max_by(|&x, &y| {
                    a[x * (m + 1) + c]
                        .abs()
                        .partial_cmp(&a[y * (m + 1) + c].abs())
                        .unwrap()
                })
                .unwrap();
            if piv != c {
                for k in 0..=m {
                    a.swap(c * (m + 1) + k, piv * (m + 1) + k);
                }
            }
            let inv = 1.0 / a[c * (m + 1) + c];
            for k in 0..=m {
                a[c * (m + 1) + k] *= inv;
            }
            for r in 0..m {
                if r != c {
                    let f = a[r * (m + 1) + c];
                    if f != 0.0 {
                        for k in 0..=m {
                            a[r * (m + 1) + k] -= f * a[c * (m + 1) + k];
                        }
                    }
                }
            }
        }
        (0..m).map(|r| a[r * (m + 1) + m]).collect()
    }

    fn check_roundtrip(m: usize, cols: Vec<Vec<(usize, f64)>>, b: Vec<f64>) {
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let f = Factorization::build(m, &refs).expect("nonsingular");
        let mut v = b.clone();
        f.apply(&mut v);
        // x[k] lives at row row_of_pos[k].
        let x: Vec<f64> = (0..m).map(|k| v[f.row_of_pos(k)]).collect();
        let expect = dense_solve(m, &refs, &b);
        for k in 0..m {
            assert!((x[k] - expect[k]).abs() < 1e-9, "{x:?} vs {expect:?}");
        }
    }

    #[test]
    fn identity_basis() {
        let cols: Vec<Vec<(usize, f64)>> = (0..4).map(|k| vec![(k, 1.0)]).collect();
        check_roundtrip(4, cols, vec![3.0, -1.0, 0.5, 2.0]);
    }

    #[test]
    fn permuted_scaled_diagonal() {
        let cols = vec![vec![(2, 2.0)], vec![(0, -1.0)], vec![(1, 4.0)]];
        check_roundtrip(3, cols, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_small_matrix() {
        let cols = vec![
            vec![(0, 2.0), (1, 1.0), (2, 1.0)],
            vec![(0, 1.0), (1, 3.0)],
            vec![(0, 1.0), (2, 4.0)],
        ];
        check_roundtrip(3, cols, vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn singular_detected() {
        let cols = [vec![(0, 1.0), (1, 1.0)], vec![(0, 2.0), (1, 2.0)]];
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        assert!(Factorization::build(2, &refs).is_none());
    }

    #[test]
    fn transposed_solves_bt() {
        // apply_transposed(v) must equal (B⁻¹)' v: check via B' y = z.
        let cols = [
            vec![(0, 3.0), (2, 1.0)],
            vec![(1, 2.0), (0, 1.0)],
            vec![(2, 5.0), (1, -1.0)],
        ];
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let f = Factorization::build(3, &refs).unwrap();
        // z in position space scattered to rows, as the dual computation does.
        let c_b = [1.0, -2.0, 0.5];
        let mut y = vec![0.0; 3];
        for k in 0..3 {
            y[f.row_of_pos(k)] = c_b[k];
        }
        f.apply_transposed(&mut y);
        // Check y' a_{B(k)} == c_b[k].
        for (k, col) in refs.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, v)| y[r] * v).sum();
            assert!((dot - c_b[k]).abs() < 1e-9, "pos {k}: {dot} vs {}", c_b[k]);
        }
    }

    #[test]
    fn update_replaces_column() {
        // Start from a 3x3 basis, pivot a new column into position 1, and
        // verify ftran against a dense solve of the updated basis.
        let cols = [
            vec![(0, 1.0)],
            vec![(1, 2.0), (0, 1.0)],
            vec![(2, 1.0), (1, 1.0)],
        ];
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut f = Factorization::build(3, &refs).unwrap();
        let entering: Vec<(usize, f64)> = vec![(0, 1.0), (1, 1.0)];
        // Position-space image of the entering column.
        let mut v = vec![0.0; 3];
        for &(r, val) in &entering {
            v[r] += val;
        }
        f.apply(&mut v);
        let w_pos: Vec<f64> = (0..3).map(|k| v[f.row_of_pos(k)]).collect();
        f.push_update(&w_pos, 1);
        assert_eq!(f.updates(), 1);
        assert!(f.nnz() > 0);

        let new_cols = [cols[0].clone(), entering, cols[2].clone()];
        let new_refs: Vec<&[(usize, f64)]> = new_cols.iter().map(|c| c.as_slice()).collect();
        let b = vec![4.0, 5.0, 6.0];
        let mut u = b.clone();
        f.apply(&mut u);
        let x: Vec<f64> = (0..3).map(|k| u[f.row_of_pos(k)]).collect();
        let expect = dense_solve(3, &new_refs, &b);
        for k in 0..3 {
            assert!((x[k] - expect[k]).abs() < 1e-9, "{x:?} vs {expect:?}");
        }
    }
}
