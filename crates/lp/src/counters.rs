//! Process-wide solver counters.
//!
//! Every solve — cold or warm, LP or branch-and-bound — bumps these
//! atomics, so layers that cannot thread a [`crate::revised::SolverSession`]
//! through (the XPlain pipeline calls the solver from deep inside domain
//! oracles) can still report solver work: snapshot before, snapshot after,
//! diff.
//!
//! **Attribution caveat:** the counters are process-global. A delta taken
//! around a region of code is exact when nothing else solves concurrently
//! and a superset otherwise — the runtime's batch executor therefore
//! normalizes the counters embedded in stored results and keeps measured
//! deltas on the per-job outcome, exactly like `wall_time_ms`.
//!
//! **Consistency:** updates and snapshots go through a seqlock, so a
//! [`SolverCounters::snapshot`] is always a consistent cut of *complete*
//! `record` calls — a reader can never observe half of a solve's update
//! (e.g. `lp_solves` bumped but `lp_warm_hits` not yet). Cross-field
//! invariants such as `lp_solves == lp_warm_hits + lp_cold_starts`
//! therefore hold in every snapshot and every delta between snapshots,
//! even while other threads solve concurrently. (Earlier versions read
//! each field independently; a racing delta could tear and silently
//! under-report via `saturating_sub`.)

use crate::revised::SolverStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;

static LP_SOLVES: AtomicU64 = AtomicU64::new(0);
static LP_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static LP_DUAL_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static LP_REFACTORIZATIONS: AtomicU64 = AtomicU64::new(0);
static LP_WARM_HITS: AtomicU64 = AtomicU64::new(0);
static LP_COLD_STARTS: AtomicU64 = AtomicU64::new(0);
static BB_NODES: AtomicU64 = AtomicU64::new(0);

/// Seqlock version: odd while a writer is mid-update, even otherwise.
static VERSION: AtomicU64 = AtomicU64::new(0);
/// Serializes writers (readers never take it).
static WRITER: Mutex<()> = Mutex::new(());

/// Run `f` as one atomic counter update: bump the version to odd (Acquire
/// keeps the field writes after it), apply, bump back to even (Release
/// keeps them before it).
fn write_locked(f: impl FnOnce()) {
    let _guard = WRITER.lock().unwrap_or_else(|e| e.into_inner());
    VERSION.fetch_add(1, Ordering::Acquire);
    f();
    VERSION.fetch_add(1, Ordering::Release);
}

/// Fold one solve's statistics into the global counters.
pub(crate) fn record(stats: &SolverStats) {
    write_locked(|| {
        LP_SOLVES.fetch_add(stats.solves, Ordering::Relaxed);
        LP_ITERATIONS.fetch_add(stats.iterations, Ordering::Relaxed);
        LP_DUAL_ITERATIONS.fetch_add(stats.dual_iterations, Ordering::Relaxed);
        LP_REFACTORIZATIONS.fetch_add(stats.refactorizations, Ordering::Relaxed);
        LP_WARM_HITS.fetch_add(stats.warm_hits, Ordering::Relaxed);
        LP_COLD_STARTS.fetch_add(stats.cold_starts, Ordering::Relaxed);
    });
}

/// One branch-and-bound node explored.
pub(crate) fn record_bb_node() {
    write_locked(|| {
        BB_NODES.fetch_add(1, Ordering::Relaxed);
    });
}

/// A snapshot of (or delta between) the process-wide solver counters.
///
/// Serializable so it can ride inside `PipelineResult`; all fields are far
/// below the JSON-safe 2^53 window for any realistic run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverCounters {
    /// LP solves (cold + warm).
    pub lp_solves: u64,
    /// Primal simplex pivots and bound flips.
    pub lp_iterations: u64,
    /// Dual simplex pivots (warm-start repair).
    pub lp_dual_iterations: u64,
    /// Basis-inverse rebuilds.
    pub lp_refactorizations: u64,
    /// Solves resumed from a cached basis.
    pub lp_warm_hits: u64,
    /// Solves that ran the cold phase-1 route.
    pub lp_cold_starts: u64,
    /// Branch-and-bound nodes explored.
    pub bb_nodes: u64,
}

impl SolverCounters {
    /// Read the current process-wide totals as one consistent cut: the
    /// seqlock retry loop guarantees no `record` call overlapped the field
    /// reads, so every snapshot reflects a whole number of solves.
    pub fn snapshot() -> Self {
        loop {
            let v1 = VERSION.load(Ordering::Acquire);
            if v1 & 1 == 0 {
                let snap = SolverCounters {
                    lp_solves: LP_SOLVES.load(Ordering::Relaxed),
                    lp_iterations: LP_ITERATIONS.load(Ordering::Relaxed),
                    lp_dual_iterations: LP_DUAL_ITERATIONS.load(Ordering::Relaxed),
                    lp_refactorizations: LP_REFACTORIZATIONS.load(Ordering::Relaxed),
                    lp_warm_hits: LP_WARM_HITS.load(Ordering::Relaxed),
                    lp_cold_starts: LP_COLD_STARTS.load(Ordering::Relaxed),
                    bb_nodes: BB_NODES.load(Ordering::Relaxed),
                };
                // Keep the field loads before the version re-check.
                fence(Ordering::Acquire);
                if VERSION.load(Ordering::Relaxed) == v1 {
                    return snap;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Counters accumulated since `earlier`. Both endpoints being seqlock
    /// cuts, a well-ordered pair never underflows; `saturating_sub` only
    /// guards callers that mix snapshots up.
    pub fn since(&self, earlier: &SolverCounters) -> SolverCounters {
        SolverCounters {
            lp_solves: self.lp_solves.saturating_sub(earlier.lp_solves),
            lp_iterations: self.lp_iterations.saturating_sub(earlier.lp_iterations),
            lp_dual_iterations: self
                .lp_dual_iterations
                .saturating_sub(earlier.lp_dual_iterations),
            lp_refactorizations: self
                .lp_refactorizations
                .saturating_sub(earlier.lp_refactorizations),
            lp_warm_hits: self.lp_warm_hits.saturating_sub(earlier.lp_warm_hits),
            lp_cold_starts: self.lp_cold_starts.saturating_sub(earlier.lp_cold_starts),
            bb_nodes: self.bb_nodes.saturating_sub(earlier.bb_nodes),
        }
    }

    /// Field-wise sum — lets a resumable consumer (the analysis session)
    /// accumulate per-step deltas across interrupted segments into one
    /// total equal to what a single uninterrupted delta would report.
    pub fn plus(&self, other: &SolverCounters) -> SolverCounters {
        SolverCounters {
            lp_solves: self.lp_solves + other.lp_solves,
            lp_iterations: self.lp_iterations + other.lp_iterations,
            lp_dual_iterations: self.lp_dual_iterations + other.lp_dual_iterations,
            lp_refactorizations: self.lp_refactorizations + other.lp_refactorizations,
            lp_warm_hits: self.lp_warm_hits + other.lp_warm_hits,
            lp_cold_starts: self.lp_cold_starts + other.lp_cold_starts,
            bb_nodes: self.bb_nodes + other.bb_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model, Sense};

    #[test]
    fn solves_move_the_counters() {
        let before = SolverCounters::snapshot();
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("cap", x + y, Cmp::Le, 3.0);
        m.set_objective(x + y);
        m.solve().unwrap();
        let delta = SolverCounters::snapshot().since(&before);
        assert!(delta.lp_solves >= 1, "{delta:?}");
        assert!(delta.lp_cold_starts >= 1, "{delta:?}");
    }

    #[test]
    fn concurrent_deltas_never_tear() {
        // Writers fold in bundles that each satisfy the solver invariant
        // `solves == warm_hits + cold_starts`; every snapshot a racing
        // reader takes — and every delta between two of its snapshots —
        // must satisfy it too. (Other tests solving LPs in this process
        // only add more invariant-preserving records.) Before the seqlock,
        // readers could observe half a record and `since` would silently
        // saturate the torn fields to zero.
        use std::thread;
        let bundle = SolverStats {
            solves: 3,
            iterations: 17,
            dual_iterations: 5,
            refactorizations: 2,
            warm_hits: 2,
            cold_starts: 1,
        };
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        record(&bundle);
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    let mut prev = SolverCounters::snapshot();
                    for _ in 0..10_000 {
                        let now = SolverCounters::snapshot();
                        assert_eq!(
                            now.lp_solves,
                            now.lp_warm_hits + now.lp_cold_starts,
                            "torn snapshot: {now:?}"
                        );
                        let d = now.since(&prev);
                        assert_eq!(
                            d.lp_solves,
                            d.lp_warm_hits + d.lp_cold_starts,
                            "torn delta: {d:?}"
                        );
                        assert!(now.lp_solves >= prev.lp_solves, "non-monotone");
                        prev = now;
                    }
                });
            }
        });
    }

    #[test]
    fn since_saturates() {
        let a = SolverCounters {
            lp_solves: 1,
            ..Default::default()
        };
        let b = SolverCounters {
            lp_solves: 5,
            ..Default::default()
        };
        assert_eq!(a.since(&b).lp_solves, 0);
        assert_eq!(b.since(&a).lp_solves, 4);
    }
}
