//! Branch-and-bound MILP solver on top of the simplex.
//!
//! Best-first search ordered by the LP relaxation bound, branching on the
//! most fractional integer variable. Two things make it fast enough for
//! the MetaOpt-style encodings XPlain generates:
//!
//! * **One prepared LP.** The root relaxation is standardized once into a
//!   [`Prepared`]; each node stores only its bound overrides, applied as
//!   deltas before the node's LP and undone after — no per-node model
//!   clone and no per-node re-standardization.
//! * **Warm starts.** All nodes share one [`SolverSession`]: a child's LP
//!   differs from its parent's only in one variable bound, so the cached
//!   factorization stays valid and a few dual simplex steps replace a
//!   cold phase-1 solve.
//!
//! [`Backend::Reference`] swaps the per-node LP for the reference tableau
//! solver (cold every node) — the baseline of the solver benches and the
//! differential MILP tests.

use crate::counters;
use crate::error::LpError;
use crate::model::{Model, Sense, Solution, VarType};
use crate::revised::{Prepared, SolverSession, SolverStats};
use crate::simplex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which LP solver runs at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Revised simplex, one warm-started session across all nodes.
    Revised,
    /// Reference tableau solver, cold at every node (benchmark baseline).
    Reference,
}

/// Work counters for one branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MilpStats {
    /// Nodes popped from the queue (including pruned ones).
    pub nodes: u64,
    /// LP effort across all node relaxations.
    pub lp: SolverStats,
}

/// What happened to one popped node (exposed for the exploration-order
/// regression tests; not a stable API).
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// The node's accumulated `(var, lo, hi)` overrides.
    pub bounds: Vec<(usize, f64, f64)>,
    pub event: NodeEvent,
}

#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    PrunedByBound,
    EmptyDomain,
    LpInfeasible,
    PrunedAfterLp,
    Integral { objective: f64 },
    Branched { var: usize, objective: f64 },
}

/// A pending node: variable-bound overrides plus the parent's bound.
struct Node {
    /// (var index, lo, hi) overrides accumulated along the branch.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (optimistic).
    bound: f64,
    sense: Sense,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: the "largest" node should be the most
        // promising bound (largest for max, smallest for min).
        let ord = self
            .bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal);
        match self.sense {
            Sense::Maximize => ord,
            Sense::Minimize => ord.reverse(),
        }
    }
}

/// Apply `bounds` onto `scratch`, recording undo entries. Returns `false`
/// (with everything already rolled back) when the intersection is empty.
fn apply_bounds(
    scratch: &mut Model,
    bounds: &[(usize, f64, f64)],
    undo: &mut Vec<(usize, f64, f64)>,
) -> bool {
    undo.clear();
    for &(ix, lo, hi) in bounds {
        let v = crate::VarId::from_index(ix);
        let (cur_lo, cur_hi) = scratch.var_bounds(v);
        undo.push((ix, cur_lo, cur_hi));
        let nlo = cur_lo.max(lo);
        let nhi = cur_hi.min(hi);
        if nlo > nhi {
            restore_bounds(scratch, undo);
            return false;
        }
        scratch.set_var_bounds(v, nlo, nhi);
    }
    true
}

/// Undo [`apply_bounds`] (reverse order: a variable may appear twice).
fn restore_bounds(scratch: &mut Model, undo: &mut Vec<(usize, f64, f64)>) {
    while let Some((ix, lo, hi)) = undo.pop() {
        scratch.set_var_bounds(crate::VarId::from_index(ix), lo, hi);
    }
}

/// [`apply_bounds`], but as deltas on the prepared (already standardized)
/// root relaxation — the hot path of [`Backend::Revised`]. Must mirror the
/// model-space version exactly: same intersection, same empty-domain check,
/// same undo discipline (pinned by `delta_and_clone_node_orders_match`).
fn apply_bounds_prepared(
    prep: &mut Prepared,
    bounds: &[(usize, f64, f64)],
    undo: &mut Vec<(usize, f64, f64)>,
) -> bool {
    undo.clear();
    for &(ix, lo, hi) in bounds {
        let v = crate::VarId::from_index(ix);
        let (cur_lo, cur_hi) = prep.var_bounds(v);
        undo.push((ix, cur_lo, cur_hi));
        let nlo = cur_lo.max(lo);
        let nhi = cur_hi.min(hi);
        if nlo > nhi {
            restore_bounds_prepared(prep, undo);
            return false;
        }
        prep.set_var_bounds(v, nlo, nhi);
    }
    true
}

/// Undo [`apply_bounds_prepared`] (reverse order).
fn restore_bounds_prepared(prep: &mut Prepared, undo: &mut Vec<(usize, f64, f64)>) {
    while let Some((ix, lo, hi)) = undo.pop() {
        prep.set_var_bounds(crate::VarId::from_index(ix), lo, hi);
    }
}

/// Solve a mixed-integer model exactly by branch and bound.
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    solve_with(model, Backend::Revised).map(|(sol, _)| sol)
}

/// [`solve`] plus work counters (node count, LP effort).
pub fn solve_with(model: &Model, backend: Backend) -> Result<(Solution, MilpStats), LpError> {
    let mut session = SolverSession::new();
    solve_inner(model, backend, false, None, &mut session)
}

/// Branch and bound through a caller-owned [`crate::revised::SessionPool`]:
/// repeated
/// solves of same-shaped models (an analyzer's iterate-and-exclude loop)
/// warm-start across *calls*, not just across nodes.
pub fn solve_pooled(
    model: &Model,
    pool: &mut crate::revised::SessionPool,
) -> Result<(Solution, MilpStats), LpError> {
    solve_inner(
        model,
        Backend::Revised,
        false,
        None,
        pool.session_for(model),
    )
}

/// Test hook: `clone_per_node` re-clones the scratch model at every node
/// (the pre-warm-start behavior) instead of applying bound deltas. Both
/// modes must produce identical traces — pinned by a regression test.
#[doc(hidden)]
pub fn solve_traced(
    model: &Model,
    backend: Backend,
    clone_per_node: bool,
) -> (Result<(Solution, MilpStats), LpError>, Vec<NodeTrace>) {
    let mut trace = Vec::new();
    let mut session = SolverSession::new();
    let out = solve_inner(
        model,
        backend,
        clone_per_node,
        Some(&mut trace),
        &mut session,
    );
    (out, trace)
}

fn solve_inner(
    model: &Model,
    backend: Backend,
    clone_per_node: bool,
    mut trace: Option<&mut Vec<NodeTrace>>,
    session: &mut SolverSession,
) -> Result<(Solution, MilpStats), LpError> {
    model.validate()?;
    let opts = model.options().clone();
    let int_vars: Vec<usize> = (0..model.num_vars())
        .filter(|&i| {
            matches!(
                model.var_type(crate::VarId::from_index(i)),
                VarType::Integer | VarType::Binary
            )
        })
        .collect();

    let sense = model.sense();
    let mut incumbent: Option<Solution> = None;
    let mut incumbent_obj = sense.worst();

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bounds: Vec::new(),
        bound: match sense {
            Sense::Maximize => f64::INFINITY,
            Sense::Minimize => f64::NEG_INFINITY,
        },
        sense,
    });

    let mut stats = MilpStats::default();
    let lp_before = session.stats;
    // Hot path: the root relaxation is standardized exactly once and every
    // node re-solves it through bound deltas. The reference backend and the
    // legacy clone-per-node test mode still route through a scratch `Model`.
    let use_prepared = backend == Backend::Revised && !clone_per_node;
    let mut prep = if use_prepared {
        Some(Prepared::new(model)?)
    } else {
        None
    };
    let mut scratch = if use_prepared {
        None
    } else {
        Some(model.clone())
    };
    let mut undo: Vec<(usize, f64, f64)> = Vec::new();

    let record = |trace: &mut Option<&mut Vec<NodeTrace>>, node: &Node, event: NodeEvent| {
        if let Some(t) = trace {
            t.push(NodeTrace {
                bounds: node.bounds.clone(),
                event,
            });
        }
    };

    while let Some(node) = heap.pop() {
        stats.nodes += 1;
        counters::record_bb_node();
        if stats.nodes as usize > opts.max_nodes {
            stats.lp.absorb(&session.stats.diff(&lp_before));
            return incumbent.map(|s| (s, stats)).ok_or(LpError::NodeLimit {
                nodes: stats.nodes as usize,
            });
        }

        // Bound-based pruning against the incumbent.
        if incumbent.is_some() && !sense.better(node.bound, incumbent_obj, opts.opt_tol) {
            record(&mut trace, &node, NodeEvent::PrunedByBound);
            continue;
        }

        // Apply the branch bounds as deltas (prepared LP or scratch model),
        // or — in the legacy test mode — rebuild the scratch from the
        // original; then solve the node relaxation.
        let relax = if let Some(prep) = prep.as_mut() {
            if !apply_bounds_prepared(prep, &node.bounds, &mut undo) {
                record(&mut trace, &node, NodeEvent::EmptyDomain);
                continue;
            }
            let r = session.solve_prepared(prep);
            restore_bounds_prepared(prep, &mut undo);
            r
        } else {
            let scratch = scratch.as_mut().expect("scratch exists when not prepared");
            if clone_per_node {
                scratch.clone_from(model);
            }
            if !apply_bounds(scratch, &node.bounds, &mut undo) {
                record(&mut trace, &node, NodeEvent::EmptyDomain);
                continue;
            }
            let r = match backend {
                Backend::Revised => session.solve_unchecked(scratch),
                Backend::Reference => {
                    stats.lp.solves += 1;
                    stats.lp.cold_starts += 1;
                    simplex::reference::solve(scratch)
                }
            };
            if !clone_per_node {
                restore_bounds(scratch, &mut undo);
            }
            r
        };
        let relax = match relax {
            Ok(s) => s,
            Err(LpError::Infeasible) => {
                record(&mut trace, &node, NodeEvent::LpInfeasible);
                continue;
            }
            Err(LpError::Unbounded) => return Err(LpError::Unbounded),
            Err(e) => return Err(e),
        };

        if incumbent.is_some() && !sense.better(relax.objective, incumbent_obj, opts.opt_tol) {
            record(&mut trace, &node, NodeEvent::PrunedAfterLp);
            continue;
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<usize> = None;
        let mut worst_frac = opts.int_tol;
        for &ix in &int_vars {
            let v = relax.values[ix];
            let frac = (v - v.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(ix);
            }
        }

        match branch_var {
            None => {
                // Integral: snap and accept as incumbent if better.
                let mut vals = relax.values.clone();
                for &ix in &int_vars {
                    vals[ix] = vals[ix].round();
                }
                let obj = model.objective().eval(&vals);
                record(&mut trace, &node, NodeEvent::Integral { objective: obj });
                if incumbent.is_none() || sense.better(obj, incumbent_obj, opts.opt_tol) {
                    incumbent_obj = obj;
                    incumbent = Some(Solution {
                        objective: obj,
                        values: vals,
                    });
                }
            }
            Some(ix) => {
                record(
                    &mut trace,
                    &node,
                    NodeEvent::Branched {
                        var: ix,
                        objective: relax.objective,
                    },
                );
                let v = relax.values[ix];
                let floor = v.floor();
                let mut down = node.bounds.clone();
                down.push((ix, f64::NEG_INFINITY, floor));
                heap.push(Node {
                    bounds: down,
                    bound: relax.objective,
                    sense,
                });
                let mut up = node.bounds.clone();
                up.push((ix, floor + 1.0, f64::INFINITY));
                heap.push(Node {
                    bounds: up,
                    bound: relax.objective,
                    sense,
                });
            }
        }
    }

    stats.lp.absorb(&session.stats.diff(&lp_before));
    incumbent.map(|s| (s, stats)).ok_or(LpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, LpError, Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // values [10, 13, 7], weights [3, 4, 2], cap 6 -> take 2 & 3: 20
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..3).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constr("cap", x[0] * 3.0 + x[1] * 4.0 + x[2] * 2.0, Cmp::Le, 6.0);
        m.set_objective(x[0] * 10.0 + x[1] * 13.0 + x[2] * 7.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.value(x[0]), 0.0);
        assert_close(s.value(x[1]), 1.0);
        assert_close(s.value(x[2]), 1.0);
    }

    #[test]
    fn integer_rounding_not_lp_rounding() {
        // max x + y s.t. 2x + 2y <= 3, integers: LP gives 1.5, MILP 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 10.0);
        m.add_constr("c", x * 2.0 + y * 2.0, Cmp::Le, 3.0);
        m.set_objective(x + y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2b + x, x <= 1.5, b binary, x + b <= 2 -> b=1, x=1: 3
        let mut m = Model::new(Sense::Maximize);
        let b = m.add_binary("b");
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.5);
        m.add_constr("c", x + b, Cmp::Le, 2.0);
        m.set_objective(b * 2.0 + x);
        let s = m.solve().unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.value(b), 1.0);
    }

    #[test]
    fn milp_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let b = m.add_binary("b");
        m.add_constr("c", b + 0.0, Cmp::Ge, 2.0);
        m.set_objective(b + 0.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn minimize_bin_count_toy() {
        // Cover demand 3 with bins of size 2: need 2 bins.
        let mut m = Model::new(Sense::Minimize);
        let b: Vec<_> = (0..4).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut cover = LinExpr::new();
        for &bi in &b {
            cover.add_term(bi, 2.0);
        }
        m.add_constr("cover", cover, Cmp::Ge, 3.0);
        m.set_objective(LinExpr::sum(b.iter().copied()));
        let s = m.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn branching_respects_existing_bounds() {
        // Integer var in [2, 5], maximize -> 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 2.0, 5.0);
        m.add_constr("c", x * 2.0, Cmp::Le, 11.0); // x <= 5.5
        m.set_objective(x + 0.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn equality_with_binaries() {
        // b0 + b1 + b2 = 2, maximize b0*5 + b1*1 + b2*3 -> b0, b2: 8
        let mut m = Model::new(Sense::Maximize);
        let b: Vec<_> = (0..3).map(|i| m.add_binary(format!("b{i}"))).collect();
        m.add_constr("eq", LinExpr::sum(b.iter().copied()), Cmp::Eq, 2.0);
        m.set_objective(b[0] * 5.0 + b[1] * 1.0 + b[2] * 3.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 8.0);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // y <= M*b; maximize y - 0.5 b with y <= 3: b=1, y=3 -> 2.5
        let mut m = Model::new(Sense::Maximize);
        let b = m.add_binary("b");
        let y = m.add_var("y", VarType::Continuous, 0.0, 3.0);
        m.add_constr("ind", LinExpr::term(y, 1.0) - b * 100.0, Cmp::Le, 0.0);
        m.set_objective(LinExpr::term(y, 1.0) - b * 0.5);
        let s = m.solve().unwrap();
        assert_close(s.objective, 2.5);
    }

    #[test]
    fn all_integral_lp_short_circuits() {
        // LP relaxation already integral.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 4.0);
        m.set_objective(x + 0.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn larger_knapsack_matches_brute_force() {
        let values = [12.0, 7.0, 9.0, 15.0, 5.0, 11.0, 3.0, 8.0];
        let weights = [4.0, 3.0, 5.0, 7.0, 2.0, 6.0, 1.0, 4.0];
        let cap = 14.0;
        let n = values.len();

        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut obj = LinExpr::new();
        for i in 0..n {
            w.add_term(x[i], weights[i]);
            obj.add_term(x[i], values[i]);
        }
        m.add_constr("cap", w, Cmp::Le, cap);
        m.set_objective(obj);
        let s = m.solve().unwrap();

        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut tw, mut tv) = (0.0, 0.0);
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    tw += weights[i];
                    tv += values[i];
                }
            }
            if tw <= cap {
                best = best.max(tv);
            }
        }
        assert_close(s.objective, best);
    }

    #[test]
    fn stats_report_nodes_and_warm_hits() {
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in x.iter().enumerate() {
            w.add_term(v, 1.0 + (i % 3) as f64);
            obj.add_term(v, 2.0 + ((i * 7) % 5) as f64);
        }
        m.add_constr("cap", w, Cmp::Le, 6.5);
        m.set_objective(obj);
        let (sol, stats) = solve_with(&m, Backend::Revised).unwrap();
        let (ref_sol, ref_stats) = solve_with(&m, Backend::Reference).unwrap();
        assert_close(sol.objective, ref_sol.objective);
        assert!(stats.nodes >= 3, "{stats:?}");
        // Every node after the root re-solves warm: exactly one cold start.
        assert_eq!(stats.lp.cold_starts, 1, "{stats:?}");
        assert_eq!(stats.lp.warm_hits + 1, stats.lp.solves, "{stats:?}");
        // The reference backend is cold at every node.
        assert_eq!(ref_stats.lp.cold_starts, ref_stats.lp.solves);
    }

    #[test]
    fn delta_and_clone_node_orders_match() {
        // The satellite regression: applying/undoing bound deltas on one
        // scratch model must visit exactly the nodes the per-node clone
        // visited, in the same order, with the same outcomes.
        let mut m = Model::new(Sense::Minimize);
        let x: Vec<_> = (0..5).map(|i| m.add_binary(format!("b{i}"))).collect();
        let mut cover = LinExpr::new();
        for (i, &v) in x.iter().enumerate() {
            cover.add_term(v, 1.7 + (i % 2) as f64);
        }
        m.add_constr("cover", cover, Cmp::Ge, 4.2);
        m.set_objective(LinExpr::sum(x.iter().copied()));
        let (a, trace_delta) = solve_traced(&m, Backend::Revised, false);
        let (b, trace_clone) = solve_traced(&m, Backend::Revised, true);
        let (sa, _) = a.unwrap();
        let (sb, _) = b.unwrap();
        assert_close(sa.objective, sb.objective);
        assert_eq!(trace_delta, trace_clone);
        assert!(!trace_delta.is_empty());
    }
}
