//! Error types for model construction and solving.

use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The simplex iteration cap was reached (likely numerical cycling).
    IterationLimit { iterations: usize },
    /// Branch-and-bound explored `nodes` nodes without proving optimality
    /// and no feasible incumbent was found.
    NodeLimit { nodes: usize },
    /// The model itself is malformed (bad bounds, NaN coefficients, unknown
    /// variable, missing objective...).
    InvalidModel(String),
    /// Numerical trouble: a pivot or ratio test produced a non-finite value.
    Numerical(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit reached ({iterations})")
            }
            LpError::NodeLimit { nodes } => {
                write!(
                    f,
                    "branch-and-bound node limit reached ({nodes}) with no incumbent"
                )
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            LpError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(LpError::Infeasible.to_string(), "model is infeasible");
        assert!(LpError::IterationLimit { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(LpError::InvalidModel("x".into()).to_string().contains('x'));
    }
}
