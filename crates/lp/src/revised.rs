//! Revised simplex with native bounded variables, a product-form sparse
//! basis factorization, and warm starts.
//!
//! The production LP hot path. Differences from the reference tableau
//! solver ([`crate::simplex::reference`]) that matter at XPlain's scale:
//!
//! * **Native bounds.** A variable with bounds `lo <= x <= hi` is one
//!   column whose nonbasic status is *at-lower* or *at-upper*; moving
//!   between finite bounds is a bound *flip* (no pivot, no basis change).
//!   The reference solver instead emits a `y <= hi - lo` constraint row
//!   per two-sided variable — on the binary-heavy MetaOpt MILPs that
//!   doubles the row count before phase 1 even starts.
//! * **Basis factorization.** The basis is held as a sparse product-form
//!   factorization (`factor::Factorization`): base etas from a sparse
//!   Gauss–Jordan pass, one update eta appended per pivot in `O(nnz)`,
//!   rebuilt on an adaptive cadence (`refactor_cadence`) to bound drift.
//!   `ftran`/`btran` are linear scans over one contiguous eta arena and
//!   skip etas wholesale when the running vector is zero at their pivot
//!   row — the previous engine's dense `O(m²)` inverse updates and
//!   `O(m³)` rebuilds are gone.
//! * **Pricing.** Devex (reference-framework weights, maintained across
//!   pivots) over *incrementally maintained* reduced costs: each pivot
//!   updates `d` via the pivot row instead of recomputing duals from
//!   scratch every iteration. Apparent optimality is always confirmed
//!   against freshly computed reduced costs before the solver returns,
//!   so maintenance drift can cost extra pivots but never correctness.
//!   A degenerate streak switches to Bland's rule (anti-cycling) and —
//!   unlike the previous engine — switches *back* on the first
//!   non-degenerate step, so one degenerate patch no longer condemns the
//!   rest of a long solve to Bland crawling.
//! * **Warm starts.** A [`SolverSession`] caches the final basis *and its
//!   factorization*. When the next model has the same shape and constraint
//!   matrix fingerprint, the solve reuses the factorization outright —
//!   bound changes (branch-and-bound children) and rhs changes (gap-oracle
//!   sweeps) cost a handful of dual simplex steps with zero refactoring.
//!   [`SessionPool`] keys sessions by model shape for call sites that
//!   alternate between a few fixed shapes.
//! * **Prepared re-solves.** [`Prepared`] standardizes a model once;
//!   [`SolverSession::solve_prepared`] then re-solves after in-place
//!   bound/rhs edits without touching the `Model` at all, and
//!   [`SolverSession::solve_batch`] amortizes one warm factorization
//!   across a whole probe batch. The contract: a prepared solve is
//!   *byte-for-byte identical* to materializing the edited model and
//!   calling [`SolverSession::solve_unchecked`] — same standardized data,
//!   same pivots, same bits out.

use crate::counters;
use crate::error::LpError;
use crate::expr::{LinExpr, VarId};
use crate::factor::Factorization;
use crate::model::{Cmp, Model, Sense, Solution};

/// Upper bound on the refactorization cadence (pivots between rebuilds).
const REFACTOR_EVERY: usize = 64;

/// Pivots between factorization rebuilds: roughly one basis dimension's
/// worth of update etas, clamped to `[8, REFACTOR_EVERY]`. On small LPs a
/// long eta chain costs more per ftran/btran than the rebuild it defers —
/// the warm sweep loses to the cold tableau past ~2m etas — while on large
/// bases the 64 cap bounds drift exactly as before.
fn refactor_cadence(m: usize) -> usize {
    m.clamp(8, REFACTOR_EVERY)
}
/// Consecutive degenerate steps before switching to Bland's rule.
const DEGENERATE_STREAK_LIMIT: usize = 64;
/// Smallest pivot element magnitude accepted during elimination.
const PIVOT_TOL: f64 = 1e-9;
/// Dual-feasibility tolerance for accepting a warm basis.
const DUAL_TOL: f64 = 1e-7;

/// Cumulative statistics of one session (or one cold solve).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// LP solves completed.
    pub solves: u64,
    /// Primal simplex pivots + bound flips (both phases).
    pub iterations: u64,
    /// Dual simplex pivots (warm-start repair).
    pub dual_iterations: u64,
    /// Basis-factorization rebuilds.
    pub refactorizations: u64,
    /// Solves that resumed from a cached basis.
    pub warm_hits: u64,
    /// Solves that ran the full cold phase-1 route.
    pub cold_starts: u64,
}

impl SolverStats {
    /// Work done since `earlier` (field-wise saturating difference).
    pub fn diff(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves.saturating_sub(earlier.solves),
            iterations: self.iterations.saturating_sub(earlier.iterations),
            dual_iterations: self.dual_iterations.saturating_sub(earlier.dual_iterations),
            refactorizations: self
                .refactorizations
                .saturating_sub(earlier.refactorizations),
            warm_hits: self.warm_hits.saturating_sub(earlier.warm_hits),
            cold_starts: self.cold_starts.saturating_sub(earlier.cold_starts),
        }
    }

    /// Accumulate `other` into `self`.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.dual_iterations += other.dual_iterations;
        self.refactorizations += other.refactorizations;
        self.warm_hits += other.warm_hits;
        self.cold_starts += other.cold_starts;
    }
}

/// Where a column currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    AtLower,
    AtUpper,
    /// Free nonbasic variable resting at 0.
    Free,
}

/// Standard form: `min c'x  s.t.  Ax = b,  lo <= x <= hi`, columns =
/// structural variables (bounds as declared) followed by one slack per
/// row (`Le`: `s in [0, inf)`, `Ge`: `s in (-inf, 0]`, `Eq`: `s = 0`).
/// The matrix never depends on variable bounds — that is what makes
/// bound-delta warm starts (and [`Prepared`] in-place edits) cheap.
#[derive(Debug, Clone)]
struct StdLp {
    n_struct: usize,
    m: usize,
    /// `n_struct + m` (structural + slack).
    ncols: usize,
    /// Sparse columns: `(row, coeff)` lists.
    cols: Vec<Vec<(usize, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Minimization costs (slacks are free of charge).
    cost: Vec<f64>,
    b: Vec<f64>,
    /// FNV-1a over the sparse matrix (columns only — not bounds, costs,
    /// or rhs). Two standardized LPs with equal shape and fingerprint
    /// share basis factorizations: a cached one from one solve is valid
    /// for the other, which is what lets bound-delta and rhs-delta warm
    /// starts skip refactorization entirely.
    matrix_fp: u64,
}

fn standardize(model: &Model) -> StdLp {
    let n_struct = model.num_vars();
    let m = model.num_constraints();
    let ncols = n_struct + m;
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut lo = Vec::with_capacity(ncols);
    let mut hi = Vec::with_capacity(ncols);
    for v in &model.vars {
        lo.push(v.lo);
        hi.push(v.hi);
    }
    let mut b = Vec::with_capacity(m);
    for (r, c) in model.constraints.iter().enumerate() {
        for (var, coef) in c.expr.iter() {
            if coef != 0.0 {
                cols[var.index()].push((r, coef));
            }
        }
        b.push(c.rhs - c.expr.constant_part());
        let s = n_struct + r;
        cols[s].push((r, 1.0));
        let (slo, shi) = match c.cmp {
            Cmp::Le => (0.0, f64::INFINITY),
            Cmp::Ge => (f64::NEG_INFINITY, 0.0),
            Cmp::Eq => (0.0, 0.0),
        };
        lo.push(slo);
        hi.push(shi);
    }
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; ncols];
    for (var, coef) in model.objective.iter() {
        cost[var.index()] += sign * coef;
    }
    let mut fp = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mix = |fp: &mut u64, x: u64| {
        *fp ^= x;
        *fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (j, col) in cols.iter().enumerate() {
        mix(&mut fp, j as u64);
        for &(r, v) in col {
            mix(&mut fp, r as u64);
            mix(&mut fp, v.to_bits());
        }
    }
    StdLp {
        n_struct,
        m,
        ncols,
        cols,
        lo,
        hi,
        cost,
        b,
        matrix_fp: fp,
    }
}

/// The column of standardized/artificial index `j` as a sparse slice.
/// A free function (not a `Core` method) so hot loops can hold it while
/// mutating disjoint `Core` fields.
#[inline]
fn column<'c>(lp: &'c StdLp, art: &'c [(usize, f64)], j: usize) -> &'c [(usize, f64)] {
    if j < lp.ncols {
        &lp.cols[j]
    } else {
        std::slice::from_ref(&art[j - lp.ncols])
    }
}

/// A model standardized once for repeated in-place re-solving.
///
/// `Prepared::new` pays validation, standardization, and matrix
/// fingerprinting a single time; after that, [`Prepared::set_rhs`] and
/// [`Prepared::set_var_bounds`] edit the standardized arrays directly and
/// a [`SolverSession::solve_prepared`] call runs the solver core with no
/// per-solve model build at all. Because the constraint *matrix* (and its
/// fingerprint) never changes, every re-solve through one session reuses
/// the cached basis factorization.
///
/// Equivalence contract (pinned by `lp/tests/differential.rs`): a
/// prepared solve is byte-for-byte identical to building a fresh `Model`
/// with the same bounds/rhs and calling [`SolverSession::solve_unchecked`]
/// on it through the same session.
#[derive(Debug, Clone)]
pub struct Prepared {
    lp: StdLp,
    objective: LinExpr,
    /// Constant part of each row's expression: `b[r] = rhs[r] - shift[r]`.
    shift: Vec<f64>,
    max_iterations: usize,
    feas_tol: f64,
    opt_tol: f64,
}

impl Prepared {
    /// Validate and standardize `model` for repeated re-solving.
    pub fn new(model: &Model) -> Result<Self, LpError> {
        model.validate()?;
        let lp = standardize(model);
        let shift = model
            .constraints
            .iter()
            .map(|c| c.expr.constant_part())
            .collect();
        Ok(Prepared {
            lp,
            objective: model.objective.clone(),
            shift,
            max_iterations: model.options().max_iterations,
            feas_tol: model.options().feas_tol,
            opt_tol: model.options().opt_tol,
        })
    }

    pub fn num_vars(&self) -> usize {
        self.lp.n_struct
    }

    pub fn num_constraints(&self) -> usize {
        self.lp.m
    }

    /// Set constraint `row`'s right-hand side (model-space, i.e. the value
    /// that `Model::add_constr` would have taken).
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        self.lp.b[row] = rhs - self.shift[row];
    }

    /// Constraint `row`'s current right-hand side (model-space).
    pub fn rhs(&self, row: usize) -> f64 {
        self.lp.b[row] + self.shift[row]
    }

    /// Set a structural variable's bounds in place.
    pub fn set_var_bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        let ix = v.index();
        debug_assert!(ix < self.lp.n_struct, "not a structural variable");
        debug_assert!(lo <= hi, "empty bound interval [{lo}, {hi}]");
        self.lp.lo[ix] = lo;
        self.lp.hi[ix] = hi;
    }

    /// A structural variable's current bounds.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let ix = v.index();
        (self.lp.lo[ix], self.lp.hi[ix])
    }

    /// The session-pool shape key — identical to the one a `Model` with
    /// this shape resolves to, so prepared and model-based solves share
    /// warm state.
    fn shape_key(&self) -> (usize, usize) {
        (self.lp.n_struct, self.lp.m)
    }
}

/// One bound/rhs perturbation of a [`Prepared`] base model, for
/// [`SolverSession::solve_batch`]. Each probe is applied *relative to the
/// base* (not cumulatively) and reverted after its solve.
#[derive(Debug, Clone, Default)]
pub struct Probe {
    /// `(var, lo, hi)` bound overrides.
    pub bounds: Vec<(VarId, f64, f64)>,
    /// `(row, rhs)` right-hand-side overrides (model-space).
    pub rhs: Vec<(usize, f64)>,
}

/// The cached end state of a solve, reusable when the next model has the
/// same `(vars, constraints)` shape.
#[derive(Debug, Clone)]
struct WarmBasis {
    n_struct: usize,
    m: usize,
    status: Vec<Status>,
    basis: Vec<usize>,
    /// Basis factorization at the end of the donor solve, valid only while
    /// the constraint matrix fingerprint matches. Carries its own update
    /// count, so the refactorization cadence holds session-wide.
    lu: Factorization,
    matrix_fp: u64,
}

/// A warm-startable solver handle.
///
/// The session contract: `solve` is *exact* regardless of what is cached —
/// a warm basis only changes which pivots run, never the optimum. A model
/// whose shape differs from the cached one (different variable or
/// constraint count) falls back to a cold start transparently.
#[derive(Debug, Default)]
pub struct SolverSession {
    warm: Option<WarmBasis>,
    /// Counters over the lifetime of this session.
    pub stats: SolverStats,
}

impl SolverSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve `model`, warm-starting from the previous solve's basis when
    /// the model shape matches. Validates the model first.
    pub fn solve(&mut self, model: &Model) -> Result<Solution, LpError> {
        model.validate()?;
        self.solve_unchecked(model)
    }

    /// [`SolverSession::solve`] without re-validating (for hot loops that
    /// mutate only bounds/rhs of an already-validated model).
    pub fn solve_unchecked(&mut self, model: &Model) -> Result<Solution, LpError> {
        let lp = standardize(model);
        self.solve_std(
            &lp,
            &model.objective,
            model.options().max_iterations,
            model.options().feas_tol,
            model.options().opt_tol,
        )
    }

    /// Re-solve a [`Prepared`] model. No model build, no standardization,
    /// no fingerprint hashing — just the solver core against the prepared
    /// arrays, warm-starting exactly like [`SolverSession::solve`] would.
    pub fn solve_prepared(&mut self, prep: &Prepared) -> Result<Solution, LpError> {
        self.solve_std(
            &prep.lp,
            &prep.objective,
            prep.max_iterations,
            prep.feas_tol,
            prep.opt_tol,
        )
    }

    /// Solve a batch of probes against `prep`'s base state, amortizing one
    /// warm factorization across the whole batch.
    ///
    /// Each probe's edits are applied to the base, solved, and reverted,
    /// so probes are independent perturbations (not a cumulative chain).
    /// Result `i` is byte-for-byte what `solve_prepared` would return had
    /// probe `i`'s edits been applied by hand at that point in this
    /// session's history.
    pub fn solve_batch(
        &mut self,
        prep: &mut Prepared,
        probes: &[Probe],
    ) -> Vec<Result<Solution, LpError>> {
        let mut out = Vec::with_capacity(probes.len());
        let mut bound_undo: Vec<(usize, f64, f64)> = Vec::new();
        let mut rhs_undo: Vec<(usize, f64)> = Vec::new();
        for probe in probes {
            bound_undo.clear();
            rhs_undo.clear();
            for &(v, lo, hi) in &probe.bounds {
                let ix = v.index();
                bound_undo.push((ix, prep.lp.lo[ix], prep.lp.hi[ix]));
                prep.set_var_bounds(v, lo, hi);
            }
            for &(row, rhs) in &probe.rhs {
                rhs_undo.push((row, prep.lp.b[row]));
                prep.set_rhs(row, rhs);
            }
            out.push(self.solve_prepared(prep));
            for &(row, b) in rhs_undo.iter().rev() {
                prep.lp.b[row] = b;
            }
            for &(ix, lo, hi) in bound_undo.iter().rev() {
                prep.lp.lo[ix] = lo;
                prep.lp.hi[ix] = hi;
            }
        }
        out
    }

    /// The shared solve path: every route into the core — model-based or
    /// prepared — funnels through here, which is what makes the two
    /// byte-for-byte identical on identical standardized data.
    fn solve_std(
        &mut self,
        lp: &StdLp,
        objective: &LinExpr,
        max_iterations: usize,
        feas_tol: f64,
        opt_tol: f64,
    ) -> Result<Solution, LpError> {
        let warm = self
            .warm
            .take()
            .filter(|w| w.n_struct == lp.n_struct && w.m == lp.m);
        let mut core = Core::new(lp, max_iterations, feas_tol);
        let out = core.run(warm, opt_tol);
        // Cache the basis even on Infeasible (a later bound relaxation can
        // still warm-start from it); drop it on numerical trouble.
        match &out {
            Ok(_) | Err(LpError::Infeasible) | Err(LpError::Unbounded) => {
                // Move (not clone) the end state out of the core: this
                // runs once per solve on the hot path.
                let mut status = std::mem::take(&mut core.status);
                status.truncate(lp.ncols);
                self.warm = Some(WarmBasis {
                    n_struct: lp.n_struct,
                    m: lp.m,
                    status,
                    basis: std::mem::take(&mut core.basis),
                    lu: std::mem::take(&mut core.lu),
                    matrix_fp: lp.matrix_fp,
                });
            }
            Err(_) => self.warm = None,
        }
        self.stats.absorb(&core.stats);
        counters::record(&core.stats);
        let values = out?;
        let objective = objective.eval(&values);
        if !objective.is_finite() {
            return Err(LpError::Numerical("objective evaluated non-finite".into()));
        }
        Ok(Solution { objective, values })
    }

    /// Forget the cached basis (the next solve is cold).
    pub fn reset(&mut self) {
        self.warm = None;
    }

    /// True if a basis is cached.
    pub fn has_warm_basis(&self) -> bool {
        self.warm.is_some()
    }
}

/// Sessions keyed by model shape `(num_vars, num_constraints)`.
///
/// Call sites like the lexicographic max-flow (stage-1 and stage-2 models
/// of different shapes, alternating) or an analyzer's iterate-and-exclude
/// loop (shape grows with each exclusion) keep one pool and let each
/// shape warm-start against its own history. [`Prepared`] models route to
/// the same per-shape sessions, so prepared and model-based solves of one
/// shape share warm state.
#[derive(Debug, Default)]
pub struct SessionPool {
    entries: Vec<((usize, usize), SolverSession)>,
}

impl SessionPool {
    pub fn new() -> Self {
        Self::default()
    }

    fn session_for_shape(&mut self, key: (usize, usize)) -> &mut SolverSession {
        let pos = self.entries.iter().position(|(k, _)| *k == key);
        let ix = match pos {
            Some(ix) => ix,
            None => {
                self.entries.push((key, SolverSession::new()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[ix].1
    }

    /// The session for this model shape (created on first use).
    pub fn session_for(&mut self, model: &Model) -> &mut SolverSession {
        self.session_for_shape((model.num_vars(), model.num_constraints()))
    }

    /// Solve through the shape-matched session.
    pub fn solve(&mut self, model: &Model) -> Result<Solution, LpError> {
        self.session_for(model).solve(model)
    }

    /// [`SolverSession::solve_prepared`] through the shape-matched session.
    pub fn solve_prepared(&mut self, prep: &Prepared) -> Result<Solution, LpError> {
        self.session_for_shape(prep.shape_key())
            .solve_prepared(prep)
    }

    /// [`SolverSession::solve_batch`] through the shape-matched session.
    pub fn solve_batch(
        &mut self,
        prep: &mut Prepared,
        probes: &[Probe],
    ) -> Vec<Result<Solution, LpError>> {
        let key = prep.shape_key();
        self.session_for_shape(key).solve_batch(prep, probes)
    }

    /// Aggregate statistics across every session in the pool.
    pub fn stats(&self) -> SolverStats {
        let mut total = SolverStats::default();
        for (_, s) in &self.entries {
            total.absorb(&s.stats);
        }
        total
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no session has been created yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One-shot cold solve (what [`crate::simplex::solve`] calls).
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let mut session = SolverSession::new();
    session.solve_unchecked(model)
}

// ---------------------------------------------------------------------------
// Solver core
// ---------------------------------------------------------------------------

struct Core<'a> {
    lp: &'a StdLp,
    /// Artificial columns (cold phase 1 only): `(row, coeff)`, column
    /// index `lp.ncols + k`. Bounds `[0, art_hi[k]]`; `art_hi` drops to 0
    /// once phase 1 ends so artificials can never re-enter with value.
    art: Vec<(usize, f64)>,
    art_hi: Vec<f64>,
    status: Vec<Status>,
    /// Basic column per basis position.
    basis: Vec<usize>,
    /// Sparse product-form factorization of the basis.
    lu: Factorization,
    /// Values of the basic variables, per basis position.
    xb: Vec<f64>,
    m: usize,
    iters_left: usize,
    feas_tol: f64,
    stats: SolverStats,
    /// Reduced costs, maintained incrementally across pivots (confirmed
    /// fresh before any optimality claim).
    d: Vec<f64>,
    /// Devex reference-framework weights.
    devex: Vec<f64>,
    /// Row-space scratch (ftran input/output).
    work: Vec<f64>,
    /// Position-space image of the entering column.
    w_pos: Vec<f64>,
    /// Row-space scratch for btran (duals, pivot rows).
    rho: Vec<f64>,
    /// Pivot-row alphas (`ρ·a_j` per nonbasic column), cached so the dual
    /// candidate scan and the price maintenance of the same pivot share
    /// one btran + one matrix sweep instead of doing each twice.
    alpha: Vec<f64>,
}

/// What a primal phase should minimize.
#[derive(Clone, Copy)]
enum Objective {
    /// The model's own costs.
    Real,
    /// Sum of artificial variables.
    Phase1,
}

/// How trustworthy `Core::d` is on entry to a primal phase.
#[derive(Clone, Copy, PartialEq)]
enum DState {
    /// `d` holds exact reduced costs for this objective.
    Fresh,
    /// `d` was maintained across pivots — usable for pricing, but any
    /// optimality claim must be confirmed on recomputed values.
    Maintained,
    /// `d` is for a different objective/basis; recompute before pricing.
    Stale,
}

impl<'a> Core<'a> {
    fn new(lp: &'a StdLp, max_iterations: usize, feas_tol: f64) -> Self {
        Core {
            lp,
            art: Vec::new(),
            art_hi: Vec::new(),
            status: vec![Status::AtLower; lp.ncols],
            basis: Vec::new(),
            lu: Factorization::default(),
            xb: Vec::new(),
            m: lp.m,
            iters_left: max_iterations,
            feas_tol,
            stats: SolverStats::default(),
            d: Vec::new(),
            devex: Vec::new(),
            work: vec![0.0; lp.m],
            w_pos: vec![0.0; lp.m],
            rho: vec![0.0; lp.m],
            alpha: Vec::new(),
        }
    }

    #[inline]
    fn ncols_total(&self) -> usize {
        self.lp.ncols + self.art.len()
    }

    #[inline]
    fn lo(&self, j: usize) -> f64 {
        if j < self.lp.ncols {
            self.lp.lo[j]
        } else {
            0.0
        }
    }

    #[inline]
    fn hi(&self, j: usize) -> f64 {
        if j < self.lp.ncols {
            self.lp.hi[j]
        } else {
            self.art_hi[j - self.lp.ncols]
        }
    }

    fn cost(&self, j: usize, obj: Objective) -> f64 {
        match obj {
            Objective::Real => {
                if j < self.lp.ncols {
                    self.lp.cost[j]
                } else {
                    0.0
                }
            }
            Objective::Phase1 => {
                if j < self.lp.ncols {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Resting value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            Status::AtLower => self.lo(j),
            Status::AtUpper => self.hi(j),
            Status::Free => 0.0,
            Status::Basic => unreachable!("basic column has no resting value"),
        }
    }

    /// `work = B⁻¹ a_j` (row space) and `w_pos` (position space).
    fn ftran_col(&mut self, j: usize) {
        for x in self.work.iter_mut() {
            *x = 0.0;
        }
        {
            let (lp, art, work) = (self.lp, &self.art, &mut self.work);
            for &(r, v) in column(lp, art, j) {
                work[r] += v;
            }
        }
        self.lu.apply(&mut self.work);
        let (lu, work, w_pos) = (&self.lu, &self.work, &mut self.w_pos);
        for (k, w) in w_pos.iter_mut().enumerate() {
            *w = work[lu.row_of_pos(k)];
        }
    }

    /// Exact reduced costs for every column under `obj` (one btran + one
    /// sparse matrix sweep).
    fn compute_reduced_costs(&mut self, obj: Objective) {
        let nt = self.ncols_total();
        self.d.clear();
        self.d.resize(nt, 0.0);
        for x in self.rho.iter_mut() {
            *x = 0.0;
        }
        let mut any = false;
        for k in 0..self.m {
            let cb = self.cost(self.basis[k], obj);
            if cb != 0.0 {
                self.rho[self.lu.row_of_pos(k)] = cb;
                any = true;
            }
        }
        if any {
            self.lu.apply_transposed(&mut self.rho);
        }
        for j in 0..nt {
            if self.status[j] == Status::Basic {
                continue;
            }
            let mut dj = self.cost(j, obj);
            if any {
                for &(r, v) in column(self.lp, &self.art, j) {
                    dj -= self.rho[r] * v;
                }
            }
            self.d[j] = dj;
        }
    }

    /// Rebuild the factorization from the basis columns, resync `xb` and
    /// the reduced costs. `Err` when the basis matrix is singular — the
    /// product form had drifted beyond repair, surface it rather than
    /// iterating on garbage.
    fn refactor(&mut self, obj: Objective) -> Result<(), LpError> {
        if !self.refactor_basis() {
            return Err(LpError::Numerical(
                "basis became singular at refactorization".into(),
            ));
        }
        self.recompute_xb();
        self.compute_reduced_costs(obj);
        Ok(())
    }

    /// The factorization rebuild alone; `false` on a singular basis.
    fn refactor_basis(&mut self) -> bool {
        self.stats.refactorizations += 1;
        let cols: Vec<&[(usize, f64)]> = self
            .basis
            .iter()
            .map(|&j| column(self.lp, &self.art, j))
            .collect();
        match Factorization::build(self.m, &cols) {
            Some(f) => {
                drop(cols);
                self.lu = f;
                true
            }
            None => false,
        }
    }

    /// `xb = B⁻¹ (b - N x_N)` from statuses.
    fn recompute_xb(&mut self) {
        self.work.copy_from_slice(&self.lp.b);
        let nt = self.ncols_total();
        for j in 0..nt {
            if self.status[j] == Status::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                let (lp, art, work) = (self.lp, &self.art, &mut self.work);
                for &(r, a) in column(lp, art, j) {
                    work[r] -= a * v;
                }
            }
        }
        self.lu.apply(&mut self.work);
        let (lu, work, xb) = (&self.lu, &self.work, &mut self.xb);
        for (k, x) in xb.iter_mut().enumerate() {
            *x = work[lu.row_of_pos(k)];
        }
    }

    fn charge_iteration(&mut self) -> Result<(), LpError> {
        if self.iters_left == 0 {
            return Err(LpError::IterationLimit {
                iterations: self.stats.iterations as usize + self.stats.dual_iterations as usize,
            });
        }
        self.iters_left -= 1;
        Ok(())
    }

    /// Maintain reduced costs and devex weights across the pivot at
    /// position `k` entering column `q`. Must run *before* statuses,
    /// basis, and factorization change; `w_pos` must hold the entering
    /// column's image. When `alphas_cached`, `self.alpha` already holds
    /// the pivot-row alphas for every nonbasic column (the dual candidate
    /// scan computed them against the same basis, so the values are
    /// bit-identical) and the btran + matrix sweep are skipped.
    fn maintain_prices(&mut self, k: usize, q: usize, alphas_cached: bool) {
        if !alphas_cached {
            let r_star = self.lu.row_of_pos(k);
            for x in self.rho.iter_mut() {
                *x = 0.0;
            }
            self.rho[r_star] = 1.0;
            self.lu.apply_transposed(&mut self.rho);
            let nt = self.ncols_total();
            self.alpha.clear();
            self.alpha.resize(nt, 0.0);
            let lp = self.lp;
            let art = &self.art;
            let status = &self.status;
            let rho = &self.rho;
            let alpha = &mut self.alpha;
            for (j, slot) in alpha.iter_mut().enumerate() {
                if status[j] == Status::Basic {
                    continue;
                }
                let mut a = 0.0;
                for &(r, v) in column(lp, art, j) {
                    a += rho[r] * v;
                }
                *slot = a;
            }
        }

        let alpha_q = self.w_pos[k];
        let theta_d = self.d[q] / alpha_q;
        let gamma_q = self.devex[q].max(1.0);
        let leaving = self.basis[k];
        {
            let status = &self.status;
            let alpha = &self.alpha;
            let d = &mut self.d;
            let devex = &mut self.devex;
            let nt = self.lp.ncols + self.art.len();
            for j in 0..nt {
                if j == q || status[j] == Status::Basic {
                    continue;
                }
                let a = alpha[j];
                if a != 0.0 {
                    d[j] -= theta_d * a;
                    let ratio = a / alpha_q;
                    let w = ratio * ratio * gamma_q;
                    if w > devex[j] {
                        devex[j] = w;
                    }
                }
            }
        }
        // The leaving variable re-enters the nonbasic set with the pivot
        // row's own alpha of 1.
        self.d[leaving] = -theta_d;
        self.devex[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
        self.d[q] = 0.0;
        self.devex[q] = 1.0;
    }

    /// Execute the pivot: column `q` enters at position `k` moving `t` in
    /// direction `dir`; the leaving variable parks at `leaving_status`.
    /// Returns `true` if the reduced costs were recomputed exactly (a
    /// refactorization fired).
    fn pivot(
        &mut self,
        k: usize,
        q: usize,
        dir: f64,
        t: f64,
        leaving_status: Status,
        obj: Objective,
        alphas_cached: bool,
    ) -> Result<bool, LpError> {
        self.maintain_prices(k, q, alphas_cached);
        let entering_value = self.nonbasic_value(q) + dir * t;
        for i in 0..self.m {
            self.xb[i] -= dir * t * self.w_pos[i];
        }
        let leaving = self.basis[k];
        self.status[leaving] = leaving_status;
        self.status[q] = Status::Basic;
        self.basis[k] = q;
        self.xb[k] = entering_value;
        self.lu.push_update(&self.w_pos, k);
        if self.lu.updates() >= refactor_cadence(self.m) {
            self.refactor(obj)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Devex pricing over the maintained reduced costs; Bland's rule when
    /// `bland` (first eligible index).
    fn price(&self, opt_tol: f64, bland: bool) -> Option<(usize, f64)> {
        let mut pick: Option<(usize, f64)> = None;
        let mut best_score = 0.0f64;
        for j in 0..self.lp.ncols {
            // Artificials never re-enter; fixed columns cannot move.
            match self.status[j] {
                Status::Basic => continue,
                _ if self.lo(j) == self.hi(j) => continue,
                _ => {}
            }
            let dj = self.d[j];
            let (viol, dir) = match self.status[j] {
                Status::AtLower => (-dj, 1.0),
                Status::AtUpper => (dj, -1.0),
                Status::Free => (dj.abs(), if dj < 0.0 { 1.0 } else { -1.0 }),
                Status::Basic => unreachable!(),
            };
            if viol <= opt_tol {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = viol * viol / self.devex[j];
            if score > best_score {
                best_score = score;
                pick = Some((j, dir));
            }
        }
        pick
    }

    /// Primal simplex on the current basis until optimal or unbounded.
    /// `d0` says whether `self.d` can be trusted on entry.
    fn primal(&mut self, obj: Objective, opt_tol: f64, d0: DState) -> Result<(), LpError> {
        if d0 == DState::Stale {
            self.compute_reduced_costs(obj);
        }
        let mut fresh = d0 != DState::Maintained;
        let nt = self.ncols_total();
        self.devex.clear();
        self.devex.resize(nt, 1.0);
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.charge_iteration()?;

            let mut picked = self.price(opt_tol, bland);
            if picked.is_none() && !fresh {
                // Maintained costs say optimal — confirm on exact values
                // before believing it.
                self.compute_reduced_costs(obj);
                fresh = true;
                picked = self.price(opt_tol, bland);
            }
            let Some((j, dir)) = picked else {
                return Ok(()); // optimal for this objective
            };

            self.ftran_col(j);

            // Ratio test: how far can x_j move by `t >= 0` in direction
            // `dir` before a basic variable (or x_j's own far bound)
            // blocks? Ties break toward the smallest basis column index —
            // deterministic, and Bland-compatible.
            let own_range = self.hi(j) - self.lo(j); // inf for free/one-sided
            let mut best_t = if own_range.is_finite() {
                own_range
            } else {
                f64::INFINITY
            };
            let mut leave: Option<usize> = None;
            for i in 0..self.m {
                let delta = -dir * self.w_pos[i]; // d x_Bi / d t
                let bj = self.basis[i];
                let limit = if delta < -PIVOT_TOL {
                    let lo = self.lo(bj);
                    if lo.is_finite() {
                        (self.xb[i] - lo) / -delta
                    } else {
                        f64::INFINITY
                    }
                } else if delta > PIVOT_TOL {
                    let hi = self.hi(bj);
                    if hi.is_finite() {
                        (hi - self.xb[i]) / delta
                    } else {
                        f64::INFINITY
                    }
                } else {
                    f64::INFINITY
                };
                let limit = limit.max(0.0); // degenerate overshoot clamps to 0
                if limit < best_t - 1e-12
                    || (limit < best_t + 1e-12 && leave.is_some_and(|lr| bj < self.basis[lr]))
                {
                    best_t = limit;
                    leave = Some(i);
                }
            }

            if !best_t.is_finite() {
                if !fresh {
                    // The unbounded ray was selected off maintained costs;
                    // re-verify against exact ones before declaring.
                    self.compute_reduced_costs(obj);
                    fresh = true;
                    continue;
                }
                return Err(LpError::Unbounded);
            }

            if best_t < 1e-12 {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                // The streak cleared: drop back to devex pricing instead
                // of crawling on Bland for the rest of the solve.
                degenerate_streak = 0;
                bland = false;
            }

            self.stats.iterations += 1;
            match leave {
                None => {
                    // Bound flip: x_j travels to its opposite bound. No
                    // basis change, so maintained costs stay valid.
                    for i in 0..self.m {
                        self.xb[i] -= dir * best_t * self.w_pos[i];
                    }
                    self.status[j] = match self.status[j] {
                        Status::AtLower => Status::AtUpper,
                        Status::AtUpper => Status::AtLower,
                        other => other, // free: cannot happen (infinite range)
                    };
                }
                Some(r) => {
                    // The leaving variable parks at whichever bound blocked.
                    let delta = -dir * self.w_pos[r];
                    let leaving_status = if delta < 0.0 {
                        Status::AtLower
                    } else {
                        Status::AtUpper
                    };
                    fresh = self.pivot(r, j, dir, best_t, leaving_status, obj, false)?;
                }
            }
        }
    }

    /// Dual simplex: restore primal feasibility while keeping reduced
    /// costs dual feasible. Requires a dual-feasible starting basis.
    /// `Err(Infeasible)` when a violated row has no entering candidate.
    fn dual(&mut self) -> Result<(), LpError> {
        let obj = Objective::Real;
        let nt = self.ncols_total();
        self.devex.clear();
        self.devex.resize(nt, 1.0);
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.charge_iteration()?;

            // Leaving position: the worst bound violation among basic vars.
            let mut leave: Option<(usize, f64)> = None; // (pos, violation signed)
            let mut worst = self.feas_tol;
            for i in 0..self.m {
                let bj = self.basis[i];
                let below = self.lo(bj) - self.xb[i];
                let above = self.xb[i] - self.hi(bj);
                let (v, signed) = if below > above {
                    (below, -below)
                } else {
                    (above, above)
                };
                if v > worst {
                    leave = Some((i, signed));
                    if bland {
                        break;
                    }
                    worst = v;
                }
            }
            let Some((r, signed_viol)) = leave else {
                return Ok(()); // primal feasible
            };

            // Pivot row ρ = (B⁻¹)' e_{r*}.
            for x in self.rho.iter_mut() {
                *x = 0.0;
            }
            self.rho[self.lu.row_of_pos(r)] = 1.0;
            self.lu.apply_transposed(&mut self.rho);

            // Entering candidate minimizing |d_j| / |alpha_j| among columns
            // whose movement repairs the violation without breaking their
            // own status direction. The scan caches every nonbasic alpha
            // (fixed and artificial columns included) so the price
            // maintenance of the chosen pivot reuses them instead of
            // redoing the btran + matrix sweep.
            let below = signed_viol < 0.0; // x_Br below its lower bound
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
            let nt_scan = self.ncols_total();
            self.alpha.clear();
            self.alpha.resize(nt_scan, 0.0);
            for j in 0..nt_scan {
                if self.status[j] == Status::Basic {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, v) in column(self.lp, &self.art, j) {
                    alpha += self.rho[row] * v;
                }
                self.alpha[j] = alpha;
                // Artificials never re-enter; fixed columns cannot move.
                if j >= self.lp.ncols || self.lo(j) == self.hi(j) {
                    continue;
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // x_Br moves by -alpha * dx_j. To raise x_Br (below): need
                // alpha*dx_j < 0; to lower it: alpha*dx_j > 0.
                let usable = match self.status[j] {
                    Status::AtLower => {
                        // dx_j >= 0
                        if below {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    Status::AtUpper => {
                        // dx_j <= 0
                        if below {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    Status::Free => true,
                    Status::Basic => unreachable!(),
                };
                if !usable {
                    continue;
                }
                let ratio = (self.d[j].abs() / alpha.abs()).max(0.0);
                // Scanning j ascending means ties already resolve to the
                // smallest column index: only strictly better ratios win.
                let better = match &best {
                    None => true,
                    Some((_, br, _)) => ratio < br - 1e-12,
                };
                if better {
                    best = Some((j, ratio, alpha));
                }
            }
            let Some((j, _ratio, alpha)) = best else {
                // The violated row cannot be repaired: primal infeasible.
                return Err(LpError::Infeasible);
            };

            // Step length: drive x_Br exactly to the violated bound.
            let bj = self.basis[r];
            let target = if below { self.lo(bj) } else { self.hi(bj) };
            let dxj = (self.xb[r] - target) / alpha;
            let t = dxj.abs();
            let dir = if dxj >= 0.0 { 1.0 } else { -1.0 };

            if t < 1e-12 {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
                bland = false;
            }

            self.ftran_col(j);
            self.stats.dual_iterations += 1;
            let leaving_status = if below {
                Status::AtLower
            } else {
                Status::AtUpper
            };
            self.pivot(r, j, dir, t, leaving_status, obj, true)?;
        }
    }

    /// Cold start: slack basis, artificials where the slack bounds reject
    /// the residual, then phase 1 (minimize artificial mass).
    fn cold_start(&mut self, opt_tol: f64) -> Result<(), LpError> {
        self.stats.cold_starts += 1;
        let lp = self.lp;
        self.art.clear();
        self.art_hi.clear();
        self.status = vec![Status::AtLower; lp.ncols];
        for j in 0..lp.n_struct {
            self.status[j] = if lp.lo[j].is_finite() {
                Status::AtLower
            } else if lp.hi[j].is_finite() {
                Status::AtUpper
            } else {
                Status::Free
            };
        }
        // Residual per row once the structurals rest at their bounds.
        let mut resid = lp.b.clone();
        for j in 0..lp.n_struct {
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(r, a) in &lp.cols[j] {
                    resid[r] -= a * v;
                }
            }
        }
        self.basis = Vec::with_capacity(self.m);
        self.xb = vec![0.0; self.m];
        for r in 0..self.m {
            let s = lp.n_struct + r;
            let (slo, shi) = (lp.lo[s], lp.hi[s]);
            if resid[r] >= slo - self.feas_tol && resid[r] <= shi + self.feas_tol {
                self.status[s] = Status::Basic;
                self.basis.push(s);
                self.xb[r] = resid[r];
            } else {
                // Park the slack at the bound nearest the residual and
                // cover the rest with an artificial of positive value.
                let parked = if resid[r] < slo { slo } else { shi };
                self.status[s] = if parked == slo {
                    Status::AtLower
                } else {
                    Status::AtUpper
                };
                let art_v = resid[r] - parked;
                let coeff = if art_v >= 0.0 { 1.0 } else { -1.0 };
                self.art.push((r, coeff));
                self.art_hi.push(f64::INFINITY);
                self.status.push(Status::Basic);
                let aj = lp.ncols + self.art.len() - 1;
                self.basis.push(aj);
                self.xb[r] = art_v.abs();
            }
        }
        // The starting basis matrix is diagonal (slack +1 / artificial ±1):
        // its factorization is m trivial single-entry etas.
        if !self.refactor_basis() {
            return Err(LpError::Numerical("singular initial basis".into()));
        }

        if !self.art.is_empty() {
            self.primal(Objective::Phase1, opt_tol, DState::Stale)?;
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= lp.ncols)
                .map(|i| self.xb[i])
                .sum();
            if infeas > self.feas_tol {
                return Err(LpError::Infeasible);
            }
            // Pin artificials to zero forever; basic zero-valued ones may
            // stay (degenerate) — their bounds keep them at 0.
            for h in self.art_hi.iter_mut() {
                *h = 0.0;
            }
            // Where possible, swap a still-basic artificial for any
            // structural/slack column with a nonzero pivot-row entry. The
            // swaps are degenerate (t = 0): values are unchanged, and the
            // reduced costs are recomputed at the next phase start anyway.
            for r in 0..self.m {
                if self.basis[r] < lp.ncols {
                    continue;
                }
                for x in self.rho.iter_mut() {
                    *x = 0.0;
                }
                self.rho[self.lu.row_of_pos(r)] = 1.0;
                self.lu.apply_transposed(&mut self.rho);
                let mut candidate = None;
                for j in 0..lp.ncols {
                    if self.status[j] == Status::Basic {
                        continue;
                    }
                    let mut alpha = 0.0;
                    for &(row, v) in column(lp, &self.art, j) {
                        alpha += self.rho[row] * v;
                    }
                    if alpha.abs() > 1e-7 {
                        candidate = Some(j);
                        break;
                    }
                }
                if let Some(j) = candidate {
                    self.ftran_col(j);
                    let old = self.basis[r];
                    self.status[old] = Status::AtLower; // value 0, bounds [0,0]
                    self.status[j] = Status::Basic;
                    self.basis[r] = j;
                    self.lu.push_update(&self.w_pos, r);
                    if self.lu.updates() >= refactor_cadence(self.m) {
                        self.refactor(Objective::Real)?;
                    }
                    self.recompute_xb();
                }
            }
        }
        Ok(())
    }

    /// Full solve: optional warm basis, then phases as needed. Returns the
    /// structural variable values.
    fn run(&mut self, warm: Option<WarmBasis>, opt_tol: f64) -> Result<Vec<f64>, LpError> {
        self.stats.solves += 1;
        let mut warmed = false;
        if let Some(w) = warm {
            warmed = self.try_warm(w, opt_tol)?;
        }
        if !warmed {
            self.cold_start(opt_tol)?;
            self.primal(Objective::Real, opt_tol, DState::Stale)?;
        }
        self.extract()
    }

    /// Attempt the warm path. `Ok(true)` if it ran to optimality,
    /// `Ok(false)` to request a cold start, `Err` on a definitive status.
    fn try_warm(&mut self, w: WarmBasis, opt_tol: f64) -> Result<bool, LpError> {
        let lp = self.lp;
        if w.basis.len() != self.m || w.status.len() != lp.ncols {
            return Ok(false);
        }
        if w.basis.iter().any(|&j| j >= lp.ncols) {
            return Ok(false);
        }
        self.status = w.status;
        self.basis = w.basis;
        // Re-anchor nonbasic statuses against the (possibly changed) bounds.
        for j in 0..lp.ncols {
            if self.status[j] == Status::Basic {
                continue;
            }
            self.status[j] = match (lp.lo[j].is_finite(), lp.hi[j].is_finite()) {
                (true, true) => {
                    if self.status[j] == Status::AtUpper {
                        Status::AtUpper
                    } else {
                        Status::AtLower
                    }
                }
                (true, false) => Status::AtLower,
                (false, true) => Status::AtUpper,
                (false, false) => Status::Free,
            };
        }
        self.xb = vec![0.0; self.m];
        if w.matrix_fp == lp.matrix_fp
            && w.lu.dim() == self.m
            && w.lu.updates() < refactor_cadence(self.m)
        {
            // Same constraint matrix: the donor's factorization is still
            // exact for this model — only bounds/rhs moved. Reuse it as-is
            // (no refactorization) and keep its update-count cadence. A
            // donor at or past the refactor cadence rebuilds instead: its
            // eta chain would tax every ftran/btran of this solve.
            self.lu = w.lu;
            self.recompute_xb();
        } else {
            // Different matrix (or incompatible factorization): rebuild
            // from the basis columns; a singular basis falls back cold.
            if !self.refactor_basis() {
                return Ok(false);
            }
            self.recompute_xb();
        }

        // Dual feasibility of the cached basis under the new costs/bounds.
        // A nonbasic column with a wrong-signed reduced cost is *repairable*
        // when its opposite bound is finite: parking it there (a bound
        // flip) makes the sign correct. Best-first branch-and-bound hops
        // between subtrees, un-fixing variables the donor basis had fixed —
        // flips are what keep those hops warm.
        self.compute_reduced_costs(Objective::Real);
        let mut dual_ok = true;
        let mut flips: Vec<usize> = Vec::new();
        for j in 0..lp.ncols {
            if self.status[j] == Status::Basic || lp.lo[j] == lp.hi[j] {
                continue;
            }
            let d = self.d[j];
            match self.status[j] {
                Status::AtLower if d < -DUAL_TOL => {
                    if lp.hi[j].is_finite() {
                        flips.push(j);
                    } else {
                        dual_ok = false;
                        break;
                    }
                }
                Status::AtUpper if d > DUAL_TOL => {
                    if lp.lo[j].is_finite() {
                        flips.push(j);
                    } else {
                        dual_ok = false;
                        break;
                    }
                }
                Status::Free if d.abs() > DUAL_TOL => {
                    dual_ok = false;
                    break;
                }
                _ => {}
            }
        }

        let primal_feasible = |core: &Core<'_>| {
            (0..core.m).all(|i| {
                let bj = core.basis[i];
                core.xb[i] >= core.lo(bj) - core.feas_tol
                    && core.xb[i] <= core.hi(bj) + core.feas_tol
            })
        };

        if dual_ok {
            if !flips.is_empty() {
                for &j in &flips {
                    self.status[j] = match self.status[j] {
                        Status::AtLower => Status::AtUpper,
                        Status::AtUpper => Status::AtLower,
                        other => other,
                    };
                }
                // Flips move nonbasic resting values, not the basis: the
                // reduced costs stay exact.
                self.recompute_xb();
            }
            self.stats.warm_hits += 1;
            if primal_feasible(self) {
                // Already feasible: the exact costs we just computed feed
                // straight into the (usually zero-pivot) certifying pass.
                self.primal(Objective::Real, opt_tol, DState::Fresh)?;
            } else {
                self.dual()?;
                self.primal(Objective::Real, opt_tol, DState::Maintained)?;
            }
            return Ok(true);
        }

        // Dual-unrepairable: the basis is still worth keeping if the point
        // itself is feasible — plain primal simplex finishes the job.
        if primal_feasible(self) {
            self.stats.warm_hits += 1;
            self.primal(Objective::Real, opt_tol, DState::Fresh)?;
            return Ok(true);
        }
        Ok(false)
    }

    fn extract(&self) -> Result<Vec<f64>, LpError> {
        let lp = self.lp;
        let mut values = vec![0.0; lp.n_struct];
        for j in 0..lp.n_struct {
            values[j] = match self.status[j] {
                Status::AtLower => lp.lo[j],
                Status::AtUpper => lp.hi[j],
                Status::Free => 0.0,
                Status::Basic => 0.0, // filled below
            };
        }
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < lp.n_struct {
                let mut v = self.xb[i];
                if !v.is_finite() {
                    return Err(LpError::Numerical(format!(
                        "basic value non-finite in row {i}"
                    )));
                }
                // Snap tiny bound violations (dual/warm tolerance dust).
                if lp.lo[bj].is_finite() && v < lp.lo[bj] {
                    v = lp.lo[bj];
                }
                if lp.hi[bj].is_finite() && v > lp.hi[bj] {
                    v = lp.hi[bj];
                }
                values[bj] = v;
            }
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn two_var_max() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("c1", x + y, Cmp::Le, 4.0);
        m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
        m.set_objective(x * 3.0 + y * 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0);
    }

    #[test]
    fn bounded_vars_without_bound_rows() {
        // Two-sided bounds solved natively: optimum at the upper bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 1.0, 3.0);
        let y = m.add_var("y", VarType::Continuous, -2.0, 2.0);
        m.add_constr("c", x + y, Cmp::Le, 4.5);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 4.5);
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn ge_and_eq_rows_need_phase1() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 2.0, f64::INFINITY);
        let y = m.add_var("y", VarType::Continuous, 3.0, f64::INFINITY);
        m.add_constr("sum", x + y, Cmp::Ge, 10.0);
        m.set_objective(x * 2.0 + y * 3.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 23.0);
    }

    #[test]
    fn equality_system() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("e1", x + y, Cmp::Eq, 5.0);
        m.add_constr("e2", x - y, Cmp::Eq, 1.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn infeasible_and_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.add_constr("hi", x + 0.0, Cmp::Ge, 2.0);
        m.set_objective(x + 0.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);

        let mut m2 = Model::new(Sense::Maximize);
        let z = m2.add_nonneg("z");
        m2.set_objective(z + 0.0);
        assert_eq!(solve(&m2).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_and_upper_only_vars() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        m.add_constr("lb", x + 0.0, Cmp::Ge, -5.0);
        m.set_objective(x + 0.0);
        assert_close(solve(&m).unwrap().objective, -5.0);

        let mut m2 = Model::new(Sense::Maximize);
        let u = m2.add_var("u", VarType::Continuous, f64::NEG_INFINITY, 3.0);
        m2.set_objective(u + 0.0);
        assert_close(solve(&m2).unwrap().objective, 3.0);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 2.5, 2.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Le, 4.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.5);
    }

    #[test]
    fn degenerate_origin_terminates() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        for i in 0..20 {
            m.add_constr(
                format!("r{i}"),
                x + y * (1.0 + i as f64 * 0.01),
                Cmp::Le,
                0.0,
            );
        }
        m.set_objective(x + y);
        assert_close(solve(&m).unwrap().objective, 0.0);
    }

    #[test]
    fn transportation() {
        let mut m = Model::new(Sense::Minimize);
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                x.push(m.add_nonneg(format!("x{i}{j}")));
            }
        }
        m.add_constr("s0", x[0] + x[1], Cmp::Le, 10.0);
        m.add_constr("s1", x[2] + x[3], Cmp::Le, 20.0);
        m.add_constr("d0", x[0] + x[2], Cmp::Ge, 15.0);
        m.add_constr("d1", x[1] + x[3], Cmp::Ge, 15.0);
        m.set_objective(x[0] * 1.0 + x[1] * 2.0 + x[2] * 3.0 + x[3] * 1.0);
        assert_close(solve(&m).unwrap().objective, 40.0);
    }

    #[test]
    fn warm_start_after_rhs_change_skips_phase1() {
        // A max-flow-shaped LP re-solved with new rhs: the second solve
        // must be a warm hit with no cold start.
        let mut session = SolverSession::new();
        let build = |d1: f64, d2: f64| {
            let mut m = Model::new(Sense::Maximize);
            let f1 = m.add_nonneg("f1");
            let f2 = m.add_nonneg("f2");
            m.add_constr("dem1", f1 + 0.0, Cmp::Le, d1);
            m.add_constr("dem2", f2 + 0.0, Cmp::Le, d2);
            m.add_constr("cap", f1 + f2, Cmp::Le, 120.0);
            m.set_objective(f1 + f2);
            m
        };
        let s1 = session.solve(&build(50.0, 100.0)).unwrap();
        assert_close(s1.objective, 120.0);
        assert_eq!(session.stats.cold_starts, 1);
        let s2 = session.solve(&build(30.0, 60.0)).unwrap();
        assert_close(s2.objective, 90.0);
        assert_eq!(session.stats.cold_starts, 1, "second solve must be warm");
        assert_eq!(session.stats.warm_hits, 1);
    }

    #[test]
    fn warm_start_after_bound_tightening_uses_dual_steps() {
        // Branch-and-bound shape: tighten a variable's bounds, re-solve.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x * 2.0 + y * 2.0, Cmp::Le, 11.0);
        m.set_objective(x + y);
        let mut session = SolverSession::new();
        let s1 = session.solve(&m).unwrap();
        assert_close(s1.objective, 5.5);
        m.set_var_bounds(x, 0.0, 2.0);
        let s2 = session.solve(&m).unwrap();
        assert_close(s2.objective, 5.5); // y picks up the slack
        m.set_var_bounds(y, 0.0, 1.0);
        let s3 = session.solve(&m).unwrap();
        assert_close(s3.objective, 3.0);
        assert_eq!(session.stats.cold_starts, 1);
        assert_eq!(session.stats.warm_hits, 2);
    }

    #[test]
    fn warm_start_detects_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        m.add_constr("need", x + 0.0, Cmp::Ge, 4.0);
        m.set_objective(x + 0.0);
        let mut session = SolverSession::new();
        session.solve(&m).unwrap();
        m.set_var_bounds(x, 0.0, 3.0);
        assert_eq!(session.solve(&m).unwrap_err(), LpError::Infeasible);
        // ...and recovers when the bound relaxes again.
        m.set_var_bounds(x, 0.0, 10.0);
        assert_close(session.solve(&m).unwrap().objective, 10.0);
    }

    #[test]
    fn session_shape_change_falls_back_to_cold() {
        let mut session = SolverSession::new();
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.set_objective(x + 0.0);
        session.solve(&m).unwrap();
        let mut m2 = Model::new(Sense::Maximize);
        let a = m2.add_var("a", VarType::Continuous, 0.0, 1.0);
        let b = m2.add_var("b", VarType::Continuous, 0.0, 1.0);
        m2.add_constr("c", a + b, Cmp::Le, 1.5);
        m2.set_objective(a + b);
        let s = session.solve(&m2).unwrap();
        assert_close(s.objective, 1.5);
        assert_eq!(session.stats.cold_starts, 2);
    }

    #[test]
    fn session_pool_tracks_shapes() {
        let mut pool = SessionPool::new();
        for round in 0..3 {
            for n in [1usize, 2] {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..n)
                    .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 5.0))
                    .collect();
                m.add_constr("cap", LinExpr::sum(vars.iter().copied()), Cmp::Le, 4.0);
                m.set_objective(LinExpr::sum(vars.iter().copied()));
                let s = pool.solve(&m).unwrap();
                assert_close(s.objective, 4.0_f64.min(5.0 * n as f64));
                let _ = round;
            }
        }
        assert_eq!(pool.len(), 2);
        let stats = pool.stats();
        assert_eq!(stats.solves, 6);
        assert_eq!(stats.cold_starts, 2);
        assert_eq!(stats.warm_hits, 4);
    }

    #[test]
    fn negative_rhs_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x - y, Cmp::Le, -1.0);
        m.set_objective(x + 0.0);
        assert_close(solve(&m).unwrap().objective, 9.0);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.set_objective(x + 41.0);
        assert_close(solve(&m).unwrap().objective, 42.0);
    }

    #[test]
    fn feasibility_only_model() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Eq, 7.0);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn mixed_bounds_feasible_solution() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, -3.0, 8.0);
        let y = m.add_var("y", VarType::Continuous, f64::NEG_INFINITY, 4.0);
        m.add_constr("c1", x * 2.0 + y, Cmp::Le, 10.0);
        m.add_constr("c2", x - y, Cmp::Ge, -2.0);
        m.set_objective(x + y * 0.5);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 1.5);
        m.add_constr("e1", x + y, Cmp::Eq, 2.0);
        m.add_constr("e2", x + y, Cmp::Eq, 2.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 0.5);
    }

    /// One production-shaped model used by the prepared-API tests.
    fn flow_model(d1: f64, d2: f64, cap: f64) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let f1 = m.add_nonneg("f1");
        let f2 = m.add_nonneg("f2");
        m.add_constr("dem1", f1 + 0.0, Cmp::Le, d1);
        m.add_constr("dem2", f2 + 0.0, Cmp::Le, d2);
        m.add_constr("cap", f1 + f2, Cmp::Le, cap);
        m.set_objective(f1 + f2);
        m
    }

    #[test]
    fn prepared_matches_model_path_bitwise() {
        // The byte-for-byte contract: a prepared re-solve must equal the
        // materialize-and-solve path through an identically warmed session.
        let mut prep = Prepared::new(&flow_model(50.0, 100.0, 120.0)).unwrap();
        let mut s_prep = SolverSession::new();
        let mut s_model = SolverSession::new();
        let sweeps = [(50.0, 100.0), (30.0, 60.0), (90.0, 10.0), (0.0, 200.0)];
        for &(d1, d2) in &sweeps {
            prep.set_rhs(0, d1);
            prep.set_rhs(1, d2);
            let a = s_prep.solve_prepared(&prep).unwrap();
            let b = s_model.solve_unchecked(&flow_model(d1, d2, 120.0)).unwrap();
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(s_prep.stats, s_model.stats);
        assert_eq!(s_prep.stats.cold_starts, 1);
        assert_eq!(s_prep.stats.warm_hits, 3);
    }

    #[test]
    fn prepared_rhs_roundtrip_and_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 4.0);
        m.add_constr("c", x + 1.5, Cmp::Le, 10.0); // constant part 1.5
        m.set_objective(x + 0.0);
        let mut prep = Prepared::new(&m).unwrap();
        assert_eq!(prep.num_vars(), 1);
        assert_eq!(prep.num_constraints(), 1);
        assert_close(prep.rhs(0), 10.0);
        prep.set_rhs(0, 3.0);
        assert_close(prep.rhs(0), 3.0);
        // The constant part must still be honored: x <= 3 - 1.5.
        let s = SolverSession::new().solve_prepared(&prep).unwrap();
        assert_close(s.objective, 1.5);
        prep.set_var_bounds(x, 0.0, 1.0);
        assert_eq!(prep.var_bounds(x), (0.0, 1.0));
        let s2 = SolverSession::new().solve_prepared(&prep).unwrap();
        assert_close(s2.objective, 1.0);
    }

    #[test]
    fn batch_probes_are_independent_and_restore_base() {
        let base = flow_model(50.0, 100.0, 120.0);
        let mut prep = Prepared::new(&base).unwrap();
        let mut session = SolverSession::new();
        let probes = vec![
            Probe {
                rhs: vec![(0, 10.0)],
                ..Probe::default()
            },
            Probe {
                rhs: vec![(1, 20.0)],
                ..Probe::default()
            },
            Probe::default(), // the base itself
        ];
        let out = session.solve_batch(&mut prep, &probes);
        assert_close(out[0].as_ref().unwrap().objective, 110.0); // 10 + 100
        assert_close(out[1].as_ref().unwrap().objective, 70.0); // 50 + 20
        assert_close(out[2].as_ref().unwrap().objective, 120.0); // base
                                                                 // Base state restored after the batch.
        assert_close(prep.rhs(0), 50.0);
        assert_close(prep.rhs(1), 100.0);
        // One factorization amortized across the batch.
        assert_eq!(session.stats.cold_starts, 1);
        assert_eq!(session.stats.warm_hits, 2);
    }

    #[test]
    fn pool_routes_prepared_and_model_solves_to_one_session() {
        let mut pool = SessionPool::new();
        let model = flow_model(50.0, 100.0, 120.0);
        pool.solve(&model).unwrap();
        let prep = Prepared::new(&model).unwrap();
        pool.solve_prepared(&prep).unwrap();
        assert_eq!(pool.len(), 1, "prepared solve must reuse the shape session");
        assert_eq!(pool.stats().cold_starts, 1);
        assert_eq!(pool.stats().warm_hits, 1);
    }
}
