//! Revised simplex with native bounded variables and warm starts.
//!
//! The production LP hot path. Differences from the reference tableau
//! solver ([`crate::simplex::reference`]) that matter at XPlain's scale:
//!
//! * **Native bounds.** A variable with bounds `lo <= x <= hi` is one
//!   column whose nonbasic status is *at-lower* or *at-upper*; moving
//!   between finite bounds is a bound *flip* (no pivot, no basis change).
//!   The reference solver instead emits a `y <= hi - lo` constraint row
//!   per two-sided variable — on the binary-heavy MetaOpt MILPs that
//!   doubles the row count before phase 1 even starts.
//! * **Basis factorization.** The solver maintains a dense basis inverse,
//!   updated per pivot in `O(m^2)` and rebuilt from the basis columns
//!   every `REFACTOR_EVERY` pivots (and on warm starts) to bound
//!   numerical drift.
//! * **Warm starts.** A [`SolverSession`] caches the final basis. When the
//!   next model has the same shape, the solve resumes from that basis:
//!   bound changes (branch-and-bound children) and rhs changes (gap-oracle
//!   sweeps) leave the cached basis dual feasible, so a handful of dual
//!   simplex steps replace a full phase-1 + phase-2 cold solve.
//!   [`SessionPool`] keys sessions by model shape for call sites that
//!   alternate between a few fixed shapes (e.g. lexicographic two-stage
//!   max-flow).
//!
//! Pricing is Dantzig (most negative reduced cost) until a degenerate
//! streak is detected, then Bland's rule — the same anti-cycling contract
//! as the reference solver.

use crate::counters;
use crate::error::LpError;
use crate::model::{Cmp, Model, Sense, Solution};

/// Rebuild the basis inverse from scratch every this many pivots.
const REFACTOR_EVERY: usize = 64;
/// Consecutive degenerate steps before switching to Bland's rule.
const DEGENERATE_STREAK_LIMIT: usize = 64;
/// Smallest pivot element magnitude accepted during elimination.
const PIVOT_TOL: f64 = 1e-9;
/// Dual-feasibility tolerance for accepting a warm basis.
const DUAL_TOL: f64 = 1e-7;

/// Cumulative statistics of one session (or one cold solve).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// LP solves completed.
    pub solves: u64,
    /// Primal simplex pivots + bound flips (both phases).
    pub iterations: u64,
    /// Dual simplex pivots (warm-start repair).
    pub dual_iterations: u64,
    /// Basis-inverse rebuilds.
    pub refactorizations: u64,
    /// Solves that resumed from a cached basis.
    pub warm_hits: u64,
    /// Solves that ran the full cold phase-1 route.
    pub cold_starts: u64,
}

impl SolverStats {
    /// Work done since `earlier` (field-wise saturating difference).
    pub fn diff(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves.saturating_sub(earlier.solves),
            iterations: self.iterations.saturating_sub(earlier.iterations),
            dual_iterations: self.dual_iterations.saturating_sub(earlier.dual_iterations),
            refactorizations: self
                .refactorizations
                .saturating_sub(earlier.refactorizations),
            warm_hits: self.warm_hits.saturating_sub(earlier.warm_hits),
            cold_starts: self.cold_starts.saturating_sub(earlier.cold_starts),
        }
    }

    /// Accumulate `other` into `self`.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.dual_iterations += other.dual_iterations;
        self.refactorizations += other.refactorizations;
        self.warm_hits += other.warm_hits;
        self.cold_starts += other.cold_starts;
    }
}

/// Where a column currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    AtLower,
    AtUpper,
    /// Free nonbasic variable resting at 0.
    Free,
}

/// Standard form: `min c'x  s.t.  Ax = b,  lo <= x <= hi`, columns =
/// structural variables (bounds as declared) followed by one slack per
/// row (`Le`: `s in [0, inf)`, `Ge`: `s in (-inf, 0]`, `Eq`: `s = 0`).
/// The matrix never depends on variable bounds — that is what makes
/// bound-delta warm starts cheap.
struct StdLp {
    n_struct: usize,
    m: usize,
    /// `n_struct + m` (structural + slack).
    ncols: usize,
    /// Sparse columns: `(row, coeff)` lists.
    cols: Vec<Vec<(usize, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Minimization costs (slacks are free of charge).
    cost: Vec<f64>,
    b: Vec<f64>,
    /// FNV-1a over the sparse matrix (columns only — not bounds, costs,
    /// or rhs). Two standardized LPs with equal shape and fingerprint
    /// share basis inverses: a cached `Binv` from one is valid for the
    /// other, which is what lets bound-delta and rhs-delta warm starts
    /// skip refactorization entirely.
    matrix_fp: u64,
}

fn standardize(model: &Model) -> StdLp {
    let n_struct = model.num_vars();
    let m = model.num_constraints();
    let ncols = n_struct + m;
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut lo = Vec::with_capacity(ncols);
    let mut hi = Vec::with_capacity(ncols);
    for v in &model.vars {
        lo.push(v.lo);
        hi.push(v.hi);
    }
    let mut b = Vec::with_capacity(m);
    for (r, c) in model.constraints.iter().enumerate() {
        for (var, coef) in c.expr.iter() {
            if coef != 0.0 {
                cols[var.index()].push((r, coef));
            }
        }
        b.push(c.rhs - c.expr.constant_part());
        let s = n_struct + r;
        cols[s].push((r, 1.0));
        let (slo, shi) = match c.cmp {
            Cmp::Le => (0.0, f64::INFINITY),
            Cmp::Ge => (f64::NEG_INFINITY, 0.0),
            Cmp::Eq => (0.0, 0.0),
        };
        lo.push(slo);
        hi.push(shi);
    }
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; ncols];
    for (var, coef) in model.objective.iter() {
        cost[var.index()] += sign * coef;
    }
    let mut fp = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mix = |fp: &mut u64, x: u64| {
        *fp ^= x;
        *fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (j, col) in cols.iter().enumerate() {
        mix(&mut fp, j as u64);
        for &(r, v) in col {
            mix(&mut fp, r as u64);
            mix(&mut fp, v.to_bits());
        }
    }
    StdLp {
        n_struct,
        m,
        ncols,
        cols,
        lo,
        hi,
        cost,
        b,
        matrix_fp: fp,
    }
}

/// The cached end state of a solve, reusable when the next model has the
/// same `(vars, constraints)` shape.
#[derive(Debug, Clone)]
struct WarmBasis {
    n_struct: usize,
    m: usize,
    status: Vec<Status>,
    basis: Vec<usize>,
    /// Basis inverse at the end of the donor solve, valid only while the
    /// constraint matrix fingerprint matches.
    binv: Vec<f64>,
    matrix_fp: u64,
    /// Pivot-update age of `binv`, carried across solves so the
    /// refactorization cadence holds session-wide, not per solve.
    pivots_since_refactor: usize,
}

/// A warm-startable solver handle.
///
/// The session contract: `solve` is *exact* regardless of what is cached —
/// a warm basis only changes which pivots run, never the optimum. A model
/// whose shape differs from the cached one (different variable or
/// constraint count) falls back to a cold start transparently.
#[derive(Debug, Default)]
pub struct SolverSession {
    warm: Option<WarmBasis>,
    /// Counters over the lifetime of this session.
    pub stats: SolverStats,
}

impl SolverSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve `model`, warm-starting from the previous solve's basis when
    /// the model shape matches. Validates the model first.
    pub fn solve(&mut self, model: &Model) -> Result<Solution, LpError> {
        model.validate()?;
        self.solve_unchecked(model)
    }

    /// [`SolverSession::solve`] without re-validating (for hot loops that
    /// mutate only bounds/rhs of an already-validated model).
    pub fn solve_unchecked(&mut self, model: &Model) -> Result<Solution, LpError> {
        let lp = standardize(model);
        let warm = self
            .warm
            .take()
            .filter(|w| w.n_struct == lp.n_struct && w.m == lp.m);
        let mut core = Core::new(
            &lp,
            model.options().max_iterations,
            model.options().feas_tol,
        );
        let out = core.run(warm, model.options().opt_tol);
        // Cache the basis even on Infeasible (a later bound relaxation can
        // still warm-start from it); drop it on numerical trouble.
        match &out {
            Ok(_) | Err(LpError::Infeasible) | Err(LpError::Unbounded) => {
                // Move (not clone) the end state out of the core: this
                // runs once per solve on the hot path.
                let mut status = std::mem::take(&mut core.status);
                status.truncate(lp.ncols);
                self.warm = Some(WarmBasis {
                    n_struct: lp.n_struct,
                    m: lp.m,
                    status,
                    basis: std::mem::take(&mut core.basis),
                    binv: std::mem::take(&mut core.binv),
                    matrix_fp: lp.matrix_fp,
                    pivots_since_refactor: core.pivots_since_refactor,
                });
            }
            Err(_) => self.warm = None,
        }
        self.stats.absorb(&core.stats);
        counters::record(&core.stats);
        let values = out?;
        let objective = model.objective.eval(&values);
        if !objective.is_finite() {
            return Err(LpError::Numerical("objective evaluated non-finite".into()));
        }
        Ok(Solution { objective, values })
    }

    /// Forget the cached basis (the next solve is cold).
    pub fn reset(&mut self) {
        self.warm = None;
    }

    /// True if a basis is cached.
    pub fn has_warm_basis(&self) -> bool {
        self.warm.is_some()
    }
}

/// Sessions keyed by model shape `(num_vars, num_constraints)`.
///
/// Call sites like the lexicographic max-flow (stage-1 and stage-2 models
/// of different shapes, alternating) or an analyzer's iterate-and-exclude
/// loop (shape grows with each exclusion) keep one pool and let each
/// shape warm-start against its own history.
#[derive(Debug, Default)]
pub struct SessionPool {
    entries: Vec<((usize, usize), SolverSession)>,
}

impl SessionPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// The session for this model shape (created on first use).
    pub fn session_for(&mut self, model: &Model) -> &mut SolverSession {
        let key = (model.num_vars(), model.num_constraints());
        let pos = self.entries.iter().position(|(k, _)| *k == key);
        let ix = match pos {
            Some(ix) => ix,
            None => {
                self.entries.push((key, SolverSession::new()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[ix].1
    }

    /// Solve through the shape-matched session.
    pub fn solve(&mut self, model: &Model) -> Result<Solution, LpError> {
        self.session_for(model).solve(model)
    }

    /// Aggregate statistics across every session in the pool.
    pub fn stats(&self) -> SolverStats {
        let mut total = SolverStats::default();
        for (_, s) in &self.entries {
            total.absorb(&s.stats);
        }
        total
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no session has been created yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One-shot cold solve (what [`crate::simplex::solve`] calls).
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let mut session = SolverSession::new();
    session.solve_unchecked(model)
}

// ---------------------------------------------------------------------------
// Solver core
// ---------------------------------------------------------------------------

struct Core<'a> {
    lp: &'a StdLp,
    /// Artificial columns (cold phase 1 only): `(row, coeff)`, column
    /// index `lp.ncols + k`. Bounds `[0, art_hi[k]]`; `art_hi` drops to 0
    /// once phase 1 ends so artificials can never re-enter with value.
    art: Vec<(usize, f64)>,
    art_hi: Vec<f64>,
    status: Vec<Status>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Dense basis inverse, row-major `m x m`.
    binv: Vec<f64>,
    /// Values of the basic variables, per row.
    xb: Vec<f64>,
    m: usize,
    pivots_since_refactor: usize,
    iters_left: usize,
    feas_tol: f64,
    stats: SolverStats,
}

/// What a primal phase should minimize.
enum Objective {
    /// The model's own costs.
    Real,
    /// Sum of artificial variables.
    Phase1,
}

impl<'a> Core<'a> {
    fn new(lp: &'a StdLp, max_iterations: usize, feas_tol: f64) -> Self {
        Core {
            lp,
            art: Vec::new(),
            art_hi: Vec::new(),
            status: vec![Status::AtLower; lp.ncols],
            basis: Vec::new(),
            binv: Vec::new(),
            xb: Vec::new(),
            m: lp.m,
            pivots_since_refactor: 0,
            iters_left: max_iterations,
            feas_tol,
            stats: SolverStats::default(),
        }
    }

    #[inline]
    fn ncols_total(&self) -> usize {
        self.lp.ncols + self.art.len()
    }

    #[inline]
    fn col(&self, j: usize) -> &[(usize, f64)] {
        if j < self.lp.ncols {
            &self.lp.cols[j]
        } else {
            std::slice::from_ref(&self.art[j - self.lp.ncols])
        }
    }

    #[inline]
    fn lo(&self, j: usize) -> f64 {
        if j < self.lp.ncols {
            self.lp.lo[j]
        } else {
            0.0
        }
    }

    #[inline]
    fn hi(&self, j: usize) -> f64 {
        if j < self.lp.ncols {
            self.lp.hi[j]
        } else {
            self.art_hi[j - self.lp.ncols]
        }
    }

    fn cost(&self, j: usize, obj: &Objective) -> f64 {
        match obj {
            Objective::Real => {
                if j < self.lp.ncols {
                    self.lp.cost[j]
                } else {
                    0.0
                }
            }
            Objective::Phase1 => {
                if j < self.lp.ncols {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Resting value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            Status::AtLower => self.lo(j),
            Status::AtUpper => self.hi(j),
            Status::Free => 0.0,
            Status::Basic => unreachable!("basic column has no resting value"),
        }
    }

    /// `w = Binv * A_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for &(r, v) in self.col(j) {
            // binv is row-major: walk column r with stride m.
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += v * self.binv[i * self.m + r];
            }
        }
        w
    }

    /// `y = c_B' * Binv` for the given objective.
    fn duals(&self, obj: &Objective) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &bj) in self.basis.iter().enumerate() {
            let cb = self.cost(bj, obj);
            if cb != 0.0 {
                let row = &self.binv[i * self.m..(i + 1) * self.m];
                for (k, yk) in y.iter_mut().enumerate() {
                    *yk += cb * row[k];
                }
            }
        }
        y
    }

    #[inline]
    fn reduced_cost(&self, j: usize, y: &[f64], obj: &Objective) -> f64 {
        let mut d = self.cost(j, obj);
        for &(r, v) in self.col(j) {
            d -= y[r] * v;
        }
        d
    }

    /// Rebuild `binv` from the basis columns and recompute `xb`.
    /// `false` if the basis matrix is singular.
    fn refactor(&mut self) -> bool {
        self.stats.refactorizations += 1;
        self.pivots_since_refactor = 0;
        let m = self.m;
        // [B | I] Gauss-Jordan with partial pivoting.
        let mut a = vec![0.0; m * 2 * m];
        for (i, &j) in self.basis.iter().enumerate() {
            for &(r, v) in self.col(j) {
                a[r * 2 * m + i] = v;
            }
        }
        for i in 0..m {
            a[i * 2 * m + m + i] = 1.0;
        }
        for c in 0..m {
            let piv_row = (c..m)
                .max_by(|&x, &y| {
                    a[x * 2 * m + c]
                        .abs()
                        .partial_cmp(&a[y * 2 * m + c].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            let p = a[piv_row * 2 * m + c];
            if p.abs() < PIVOT_TOL {
                return false;
            }
            if piv_row != c {
                for k in 0..2 * m {
                    a.swap(c * 2 * m + k, piv_row * 2 * m + k);
                }
            }
            let inv = 1.0 / a[c * 2 * m + c];
            for k in 0..2 * m {
                a[c * 2 * m + k] *= inv;
            }
            for r in 0..m {
                if r == c {
                    continue;
                }
                let f = a[r * 2 * m + c];
                if f != 0.0 {
                    for k in 0..2 * m {
                        a[r * 2 * m + k] -= f * a[c * 2 * m + k];
                    }
                }
            }
        }
        for r in 0..m {
            for k in 0..m {
                self.binv[r * m + k] = a[r * 2 * m + m + k];
            }
        }
        self.recompute_xb();
        true
    }

    /// `xb = Binv * (b - N x_N)` from statuses.
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut rhs = self.lp.b.clone();
        for j in 0..self.ncols_total() {
            if self.status[j] == Status::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(r, a) in self.col(j) {
                    rhs[r] -= a * v;
                }
            }
        }
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.xb[i] = row.iter().zip(&rhs).map(|(x, y)| x * y).sum();
        }
    }

    /// Pivot: row `r` leaves, column `j` (with ftran image `w`) enters.
    /// Statuses/basis must already be updated by the caller.
    fn update_binv(&mut self, r: usize, w: &[f64]) -> Result<(), LpError> {
        let m = self.m;
        let inv = 1.0 / w[r];
        for k in 0..m {
            self.binv[r * m + k] *= inv;
        }
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = w[i];
            if f != 0.0 {
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[r * m + k];
                }
            }
        }
        self.pivots_since_refactor += 1;
        if self.pivots_since_refactor >= REFACTOR_EVERY {
            // A mid-flight refactorization also resyncs xb. A singular
            // rebuild means the product-form inverse had drifted beyond
            // repair — surface it instead of iterating on garbage.
            if !self.refactor() {
                return Err(LpError::Numerical(
                    "basis became singular at refactorization".into(),
                ));
            }
        }
        Ok(())
    }

    fn charge_iteration(&mut self) -> Result<(), LpError> {
        if self.iters_left == 0 {
            return Err(LpError::IterationLimit {
                iterations: self.stats.iterations as usize + self.stats.dual_iterations as usize,
            });
        }
        self.iters_left -= 1;
        Ok(())
    }

    /// Primal simplex on the current basis until optimal or unbounded.
    fn primal(&mut self, obj: Objective, opt_tol: f64) -> Result<(), LpError> {
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.charge_iteration()?;
            let y = self.duals(&obj);

            // Pricing.
            let mut enter: Option<(usize, f64)> = None; // (col, direction)
            let mut best = opt_tol;
            for j in 0..self.lp.ncols {
                // Artificials never re-enter; fixed columns cannot move.
                match self.status[j] {
                    Status::Basic => continue,
                    _ if self.lo(j) == self.hi(j) => continue,
                    _ => {}
                }
                let d = self.reduced_cost(j, &y, &obj);
                let (viol, dir) = match self.status[j] {
                    Status::AtLower => (-d, 1.0),
                    Status::AtUpper => (d, -1.0),
                    Status::Free => (d.abs(), if d < 0.0 { 1.0 } else { -1.0 }),
                    Status::Basic => unreachable!(),
                };
                if viol > best {
                    enter = Some((j, dir));
                    if bland {
                        break; // first improving column (Bland)
                    }
                    best = viol;
                }
            }
            let Some((j, dir)) = enter else {
                return Ok(()); // optimal for this objective
            };

            let w = self.ftran(j);

            // Ratio test: how far can x_j move by `t >= 0` in direction
            // `dir` before a basic variable (or x_j's own far bound)
            // blocks? Ties break toward the smallest basis column index —
            // deterministic, and Bland-compatible.
            let own_range = self.hi(j) - self.lo(j); // inf for free/one-sided
            let mut best_t = if own_range.is_finite() {
                own_range
            } else {
                f64::INFINITY
            };
            let mut leave: Option<usize> = None;
            for i in 0..self.m {
                let delta = -dir * w[i]; // d x_Bi / d t
                let bj = self.basis[i];
                let limit = if delta < -PIVOT_TOL {
                    let lo = self.lo(bj);
                    if lo.is_finite() {
                        (self.xb[i] - lo) / -delta
                    } else {
                        f64::INFINITY
                    }
                } else if delta > PIVOT_TOL {
                    let hi = self.hi(bj);
                    if hi.is_finite() {
                        (hi - self.xb[i]) / delta
                    } else {
                        f64::INFINITY
                    }
                } else {
                    f64::INFINITY
                };
                let limit = limit.max(0.0); // degenerate overshoot clamps to 0
                if limit < best_t - 1e-12
                    || (limit < best_t + 1e-12 && leave.is_some_and(|lr| bj < self.basis[lr]))
                {
                    best_t = limit;
                    leave = Some(i);
                }
            }

            if !best_t.is_finite() {
                return Err(LpError::Unbounded);
            }

            if best_t < 1e-12 {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
            }

            self.stats.iterations += 1;
            match leave {
                None => {
                    // Bound flip: x_j travels to its opposite bound.
                    for i in 0..self.m {
                        self.xb[i] -= dir * best_t * w[i];
                    }
                    self.status[j] = match self.status[j] {
                        Status::AtLower => Status::AtUpper,
                        Status::AtUpper => Status::AtLower,
                        other => other, // free: cannot happen (infinite range)
                    };
                }
                Some(r) => {
                    let entering_value = self.nonbasic_value(j) + dir * best_t;
                    for i in 0..self.m {
                        self.xb[i] -= dir * best_t * w[i];
                    }
                    let bj = self.basis[r];
                    // The leaving variable parks at whichever bound blocked.
                    let delta = -dir * w[r];
                    self.status[bj] = if delta < 0.0 {
                        Status::AtLower
                    } else {
                        Status::AtUpper
                    };
                    self.status[j] = Status::Basic;
                    self.basis[r] = j;
                    self.xb[r] = entering_value;
                    self.update_binv(r, &w)?;
                }
            }
        }
    }

    /// Dual simplex: restore primal feasibility while keeping reduced
    /// costs dual feasible. Requires a dual-feasible starting basis.
    /// `Err(Infeasible)` when a violated row has no entering candidate.
    fn dual(&mut self) -> Result<(), LpError> {
        let obj = Objective::Real;
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.charge_iteration()?;

            // Leaving row: the worst bound violation among basic vars.
            let mut leave: Option<(usize, f64)> = None; // (row, violation signed)
            let mut worst = self.feas_tol;
            for i in 0..self.m {
                let bj = self.basis[i];
                let below = self.lo(bj) - self.xb[i];
                let above = self.xb[i] - self.hi(bj);
                let (v, signed) = if below > above {
                    (below, -below)
                } else {
                    (above, above)
                };
                if v > worst {
                    leave = Some((i, signed));
                    if bland {
                        break;
                    }
                    worst = v;
                }
            }
            let Some((r, signed_viol)) = leave else {
                return Ok(()); // primal feasible
            };

            let y = self.duals(&obj);
            let rho = &self.binv[r * self.m..(r + 1) * self.m];
            // Entering candidate minimizing |d_j| / |alpha_j| among columns
            // whose movement repairs the violation without breaking their
            // own status direction.
            let below = signed_viol < 0.0; // x_Br below its lower bound
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
            for j in 0..self.lp.ncols {
                match self.status[j] {
                    Status::Basic => continue,
                    _ if self.lo(j) == self.hi(j) => continue,
                    _ => {}
                }
                let mut alpha = 0.0;
                for &(row, v) in self.col(j) {
                    alpha += rho[row] * v;
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // x_Br moves by -alpha * dx_j. To raise x_Br (below): need
                // alpha*dx_j < 0; to lower it: alpha*dx_j > 0.
                let usable = match self.status[j] {
                    Status::AtLower => {
                        // dx_j >= 0
                        if below {
                            alpha < 0.0
                        } else {
                            alpha > 0.0
                        }
                    }
                    Status::AtUpper => {
                        // dx_j <= 0
                        if below {
                            alpha > 0.0
                        } else {
                            alpha < 0.0
                        }
                    }
                    Status::Free => true,
                    Status::Basic => unreachable!(),
                };
                if !usable {
                    continue;
                }
                let d = self.reduced_cost(j, &y, &obj);
                let ratio = (d.abs() / alpha.abs()).max(0.0);
                // Scanning j ascending means ties already resolve to the
                // smallest column index: only strictly better ratios win.
                let better = match &best {
                    None => true,
                    Some((_, br, _)) => ratio < br - 1e-12,
                };
                if better {
                    best = Some((j, ratio, alpha));
                }
            }
            let Some((j, _ratio, alpha)) = best else {
                // The violated row cannot be repaired: primal infeasible.
                return Err(LpError::Infeasible);
            };

            // Step length: drive x_Br exactly to the violated bound.
            let bj = self.basis[r];
            let target = if below { self.lo(bj) } else { self.hi(bj) };
            let dxj = (self.xb[r] - target) / alpha;
            let t = dxj.abs();
            let dir = if dxj >= 0.0 { 1.0 } else { -1.0 };

            if t < 1e-12 {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
            }

            let w = self.ftran(j);
            let entering_value = self.nonbasic_value(j) + dir * t;
            for i in 0..self.m {
                self.xb[i] -= dir * t * w[i];
            }
            self.status[bj] = if below {
                Status::AtLower
            } else {
                Status::AtUpper
            };
            self.status[j] = Status::Basic;
            self.basis[r] = j;
            self.xb[r] = entering_value;
            self.stats.dual_iterations += 1;
            self.update_binv(r, &w)?;
        }
    }

    /// Cold start: slack basis, artificials where the slack bounds reject
    /// the residual, then phase 1 (minimize artificial mass).
    fn cold_start(&mut self, opt_tol: f64) -> Result<(), LpError> {
        self.stats.cold_starts += 1;
        let lp = self.lp;
        self.art.clear();
        self.art_hi.clear();
        self.status = vec![Status::AtLower; lp.ncols];
        for j in 0..lp.n_struct {
            self.status[j] = if lp.lo[j].is_finite() {
                Status::AtLower
            } else if lp.hi[j].is_finite() {
                Status::AtUpper
            } else {
                Status::Free
            };
        }
        // Residual per row once the structurals rest at their bounds.
        let mut resid = lp.b.clone();
        for j in 0..lp.n_struct {
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(r, a) in &lp.cols[j] {
                    resid[r] -= a * v;
                }
            }
        }
        self.basis = Vec::with_capacity(self.m);
        self.xb = vec![0.0; self.m];
        for r in 0..self.m {
            let s = lp.n_struct + r;
            let (slo, shi) = (lp.lo[s], lp.hi[s]);
            if resid[r] >= slo - self.feas_tol && resid[r] <= shi + self.feas_tol {
                self.status[s] = Status::Basic;
                self.basis.push(s);
                self.xb[r] = resid[r];
            } else {
                // Park the slack at the bound nearest the residual and
                // cover the rest with an artificial of positive value.
                let parked = if resid[r] < slo { slo } else { shi };
                self.status[s] = if parked == slo {
                    Status::AtLower
                } else {
                    Status::AtUpper
                };
                let art_v = resid[r] - parked;
                let coeff = if art_v >= 0.0 { 1.0 } else { -1.0 };
                self.art.push((r, coeff));
                self.art_hi.push(f64::INFINITY);
                self.status.push(Status::Basic);
                let aj = lp.ncols + self.art.len() - 1;
                self.basis.push(aj);
                self.xb[r] = art_v.abs();
            }
        }
        // The starting basis matrix is diagonal (slack +1 / artificial ±1),
        // so its inverse is the diagonal of reciprocals.
        self.binv = vec![0.0; self.m * self.m];
        for i in 0..self.m {
            let bj = self.basis[i];
            let coeff = if bj < lp.ncols {
                1.0
            } else {
                self.art[bj - lp.ncols].1
            };
            self.binv[i * self.m + i] = 1.0 / coeff;
        }

        if !self.art.is_empty() {
            self.primal(Objective::Phase1, opt_tol)?;
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= lp.ncols)
                .map(|i| self.xb[i])
                .sum();
            if infeas > self.feas_tol {
                return Err(LpError::Infeasible);
            }
            // Pin artificials to zero forever; basic zero-valued ones may
            // stay (degenerate) — their bounds keep them at 0.
            for h in self.art_hi.iter_mut() {
                *h = 0.0;
            }
            // Where possible, swap a still-basic artificial for any
            // structural/slack column with a nonzero row entry.
            for r in 0..self.m {
                if self.basis[r] < lp.ncols {
                    continue;
                }
                let rho: Vec<f64> = self.binv[r * self.m..(r + 1) * self.m].to_vec();
                let mut candidate = None;
                for j in 0..lp.ncols {
                    if self.status[j] == Status::Basic {
                        continue;
                    }
                    let mut alpha = 0.0;
                    for &(row, v) in self.col(j) {
                        alpha += rho[row] * v;
                    }
                    if alpha.abs() > 1e-7 {
                        candidate = Some(j);
                        break;
                    }
                }
                if let Some(j) = candidate {
                    // Degenerate swap (t = 0): values are unchanged.
                    let w = self.ftran(j);
                    let old = self.basis[r];
                    self.status[old] = Status::AtLower; // value 0, bounds [0,0]
                    self.status[j] = Status::Basic;
                    self.basis[r] = j;
                    self.update_binv(r, &w)?;
                    self.recompute_xb();
                }
            }
        }
        Ok(())
    }

    /// Full solve: optional warm basis, then phases as needed. Returns the
    /// structural variable values.
    fn run(&mut self, warm: Option<WarmBasis>, opt_tol: f64) -> Result<Vec<f64>, LpError> {
        self.stats.solves += 1;
        let mut warmed = false;
        if let Some(w) = warm {
            warmed = self.try_warm(w, opt_tol)?;
        }
        if !warmed {
            self.cold_start(opt_tol)?;
            self.primal(Objective::Real, opt_tol)?;
        }
        self.extract()
    }

    /// Attempt the warm path. `Ok(true)` if it ran to optimality,
    /// `Ok(false)` to request a cold start, `Err` on a definitive status.
    fn try_warm(&mut self, w: WarmBasis, opt_tol: f64) -> Result<bool, LpError> {
        let lp = self.lp;
        if w.basis.len() != self.m || w.status.len() != lp.ncols {
            return Ok(false);
        }
        if w.basis.iter().any(|&j| j >= lp.ncols) {
            return Ok(false);
        }
        self.status = w.status;
        self.basis = w.basis;
        // Re-anchor nonbasic statuses against the (possibly changed) bounds.
        for j in 0..lp.ncols {
            if self.status[j] == Status::Basic {
                continue;
            }
            self.status[j] = match (lp.lo[j].is_finite(), lp.hi[j].is_finite()) {
                (true, true) => {
                    if self.status[j] == Status::AtUpper {
                        Status::AtUpper
                    } else {
                        Status::AtLower
                    }
                }
                (true, false) => Status::AtLower,
                (false, true) => Status::AtUpper,
                (false, false) => Status::Free,
            };
        }
        self.xb = vec![0.0; self.m];
        if w.matrix_fp == self.lp.matrix_fp && w.binv.len() == self.m * self.m {
            // Same constraint matrix: the donor's basis inverse is still
            // exact for this model — only bounds/rhs/costs moved. Recompute
            // the basic values and keep the donor's refactor cadence.
            self.binv = w.binv;
            self.pivots_since_refactor = w.pivots_since_refactor;
            self.recompute_xb();
        } else {
            self.binv = vec![0.0; self.m * self.m];
            if !self.refactor() {
                return Ok(false);
            }
        }

        // Dual feasibility of the cached basis under the new costs/bounds.
        // A nonbasic column with a wrong-signed reduced cost is *repairable*
        // when its opposite bound is finite: parking it there (a bound
        // flip) makes the sign correct. Best-first branch-and-bound hops
        // between subtrees, un-fixing variables the donor basis had fixed —
        // flips are what keep those hops warm.
        let y = self.duals(&Objective::Real);
        let mut dual_ok = true;
        let mut flips: Vec<usize> = Vec::new();
        for j in 0..lp.ncols {
            if self.status[j] == Status::Basic || lp.lo[j] == lp.hi[j] {
                continue;
            }
            let d = self.reduced_cost(j, &y, &Objective::Real);
            match self.status[j] {
                Status::AtLower if d < -DUAL_TOL => {
                    if lp.hi[j].is_finite() {
                        flips.push(j);
                    } else {
                        dual_ok = false;
                        break;
                    }
                }
                Status::AtUpper if d > DUAL_TOL => {
                    if lp.lo[j].is_finite() {
                        flips.push(j);
                    } else {
                        dual_ok = false;
                        break;
                    }
                }
                Status::Free if d.abs() > DUAL_TOL => {
                    dual_ok = false;
                    break;
                }
                _ => {}
            }
        }

        let primal_feasible = |core: &Core<'_>| {
            (0..core.m).all(|i| {
                let bj = core.basis[i];
                core.xb[i] >= core.lo(bj) - core.feas_tol
                    && core.xb[i] <= core.hi(bj) + core.feas_tol
            })
        };

        if dual_ok {
            if !flips.is_empty() {
                for &j in &flips {
                    self.status[j] = match self.status[j] {
                        Status::AtLower => Status::AtUpper,
                        Status::AtUpper => Status::AtLower,
                        other => other,
                    };
                }
                self.recompute_xb();
            }
            self.stats.warm_hits += 1;
            if !primal_feasible(self) {
                self.dual()?;
            }
            // Either already primal feasible, or the dual pass restored
            // it; a primal cleanup certifies optimality (usually zero
            // pivots).
            self.primal(Objective::Real, opt_tol)?;
            return Ok(true);
        }

        // Dual-unrepairable: the basis is still worth keeping if the point
        // itself is feasible — plain primal simplex finishes the job.
        if primal_feasible(self) {
            self.stats.warm_hits += 1;
            self.primal(Objective::Real, opt_tol)?;
            return Ok(true);
        }
        Ok(false)
    }

    fn extract(&self) -> Result<Vec<f64>, LpError> {
        let lp = self.lp;
        let mut values = vec![0.0; lp.n_struct];
        for j in 0..lp.n_struct {
            values[j] = match self.status[j] {
                Status::AtLower => lp.lo[j],
                Status::AtUpper => lp.hi[j],
                Status::Free => 0.0,
                Status::Basic => 0.0, // filled below
            };
        }
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < lp.n_struct {
                let mut v = self.xb[i];
                if !v.is_finite() {
                    return Err(LpError::Numerical(format!(
                        "basic value non-finite in row {i}"
                    )));
                }
                // Snap tiny bound violations (dual/warm tolerance dust).
                if lp.lo[bj].is_finite() && v < lp.lo[bj] {
                    v = lp.lo[bj];
                }
                if lp.hi[bj].is_finite() && v > lp.hi[bj] {
                    v = lp.hi[bj];
                }
                values[bj] = v;
            }
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn two_var_max() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("c1", x + y, Cmp::Le, 4.0);
        m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
        m.set_objective(x * 3.0 + y * 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0);
    }

    #[test]
    fn bounded_vars_without_bound_rows() {
        // Two-sided bounds solved natively: optimum at the upper bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 1.0, 3.0);
        let y = m.add_var("y", VarType::Continuous, -2.0, 2.0);
        m.add_constr("c", x + y, Cmp::Le, 4.5);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 4.5);
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn ge_and_eq_rows_need_phase1() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 2.0, f64::INFINITY);
        let y = m.add_var("y", VarType::Continuous, 3.0, f64::INFINITY);
        m.add_constr("sum", x + y, Cmp::Ge, 10.0);
        m.set_objective(x * 2.0 + y * 3.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 23.0);
    }

    #[test]
    fn equality_system() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("e1", x + y, Cmp::Eq, 5.0);
        m.add_constr("e2", x - y, Cmp::Eq, 1.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn infeasible_and_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.add_constr("hi", x + 0.0, Cmp::Ge, 2.0);
        m.set_objective(x + 0.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);

        let mut m2 = Model::new(Sense::Maximize);
        let z = m2.add_nonneg("z");
        m2.set_objective(z + 0.0);
        assert_eq!(solve(&m2).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_and_upper_only_vars() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        m.add_constr("lb", x + 0.0, Cmp::Ge, -5.0);
        m.set_objective(x + 0.0);
        assert_close(solve(&m).unwrap().objective, -5.0);

        let mut m2 = Model::new(Sense::Maximize);
        let u = m2.add_var("u", VarType::Continuous, f64::NEG_INFINITY, 3.0);
        m2.set_objective(u + 0.0);
        assert_close(solve(&m2).unwrap().objective, 3.0);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 2.5, 2.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Le, 4.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.5);
    }

    #[test]
    fn degenerate_origin_terminates() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        for i in 0..20 {
            m.add_constr(
                format!("r{i}"),
                x + y * (1.0 + i as f64 * 0.01),
                Cmp::Le,
                0.0,
            );
        }
        m.set_objective(x + y);
        assert_close(solve(&m).unwrap().objective, 0.0);
    }

    #[test]
    fn transportation() {
        let mut m = Model::new(Sense::Minimize);
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                x.push(m.add_nonneg(format!("x{i}{j}")));
            }
        }
        m.add_constr("s0", x[0] + x[1], Cmp::Le, 10.0);
        m.add_constr("s1", x[2] + x[3], Cmp::Le, 20.0);
        m.add_constr("d0", x[0] + x[2], Cmp::Ge, 15.0);
        m.add_constr("d1", x[1] + x[3], Cmp::Ge, 15.0);
        m.set_objective(x[0] * 1.0 + x[1] * 2.0 + x[2] * 3.0 + x[3] * 1.0);
        assert_close(solve(&m).unwrap().objective, 40.0);
    }

    #[test]
    fn warm_start_after_rhs_change_skips_phase1() {
        // A max-flow-shaped LP re-solved with new rhs: the second solve
        // must be a warm hit with no cold start.
        let mut session = SolverSession::new();
        let build = |d1: f64, d2: f64| {
            let mut m = Model::new(Sense::Maximize);
            let f1 = m.add_nonneg("f1");
            let f2 = m.add_nonneg("f2");
            m.add_constr("dem1", f1 + 0.0, Cmp::Le, d1);
            m.add_constr("dem2", f2 + 0.0, Cmp::Le, d2);
            m.add_constr("cap", f1 + f2, Cmp::Le, 120.0);
            m.set_objective(f1 + f2);
            m
        };
        let s1 = session.solve(&build(50.0, 100.0)).unwrap();
        assert_close(s1.objective, 120.0);
        assert_eq!(session.stats.cold_starts, 1);
        let s2 = session.solve(&build(30.0, 60.0)).unwrap();
        assert_close(s2.objective, 90.0);
        assert_eq!(session.stats.cold_starts, 1, "second solve must be warm");
        assert_eq!(session.stats.warm_hits, 1);
    }

    #[test]
    fn warm_start_after_bound_tightening_uses_dual_steps() {
        // Branch-and-bound shape: tighten a variable's bounds, re-solve.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x * 2.0 + y * 2.0, Cmp::Le, 11.0);
        m.set_objective(x + y);
        let mut session = SolverSession::new();
        let s1 = session.solve(&m).unwrap();
        assert_close(s1.objective, 5.5);
        m.set_var_bounds(x, 0.0, 2.0);
        let s2 = session.solve(&m).unwrap();
        assert_close(s2.objective, 5.5); // y picks up the slack
        m.set_var_bounds(y, 0.0, 1.0);
        let s3 = session.solve(&m).unwrap();
        assert_close(s3.objective, 3.0);
        assert_eq!(session.stats.cold_starts, 1);
        assert_eq!(session.stats.warm_hits, 2);
    }

    #[test]
    fn warm_start_detects_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        m.add_constr("need", x + 0.0, Cmp::Ge, 4.0);
        m.set_objective(x + 0.0);
        let mut session = SolverSession::new();
        session.solve(&m).unwrap();
        m.set_var_bounds(x, 0.0, 3.0);
        assert_eq!(session.solve(&m).unwrap_err(), LpError::Infeasible);
        // ...and recovers when the bound relaxes again.
        m.set_var_bounds(x, 0.0, 10.0);
        assert_close(session.solve(&m).unwrap().objective, 10.0);
    }

    #[test]
    fn session_shape_change_falls_back_to_cold() {
        let mut session = SolverSession::new();
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.set_objective(x + 0.0);
        session.solve(&m).unwrap();
        let mut m2 = Model::new(Sense::Maximize);
        let a = m2.add_var("a", VarType::Continuous, 0.0, 1.0);
        let b = m2.add_var("b", VarType::Continuous, 0.0, 1.0);
        m2.add_constr("c", a + b, Cmp::Le, 1.5);
        m2.set_objective(a + b);
        let s = session.solve(&m2).unwrap();
        assert_close(s.objective, 1.5);
        assert_eq!(session.stats.cold_starts, 2);
    }

    #[test]
    fn session_pool_tracks_shapes() {
        let mut pool = SessionPool::new();
        for round in 0..3 {
            for n in [1usize, 2] {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..n)
                    .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 5.0))
                    .collect();
                m.add_constr("cap", LinExpr::sum(vars.iter().copied()), Cmp::Le, 4.0);
                m.set_objective(LinExpr::sum(vars.iter().copied()));
                let s = pool.solve(&m).unwrap();
                assert_close(s.objective, 4.0_f64.min(5.0 * n as f64));
                let _ = round;
            }
        }
        assert_eq!(pool.len(), 2);
        let stats = pool.stats();
        assert_eq!(stats.solves, 6);
        assert_eq!(stats.cold_starts, 2);
        assert_eq!(stats.warm_hits, 4);
    }

    #[test]
    fn negative_rhs_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x - y, Cmp::Le, -1.0);
        m.set_objective(x + 0.0);
        assert_close(solve(&m).unwrap().objective, 9.0);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.set_objective(x + 41.0);
        assert_close(solve(&m).unwrap().objective, 42.0);
    }

    #[test]
    fn feasibility_only_model() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Eq, 7.0);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn mixed_bounds_feasible_solution() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, -3.0, 8.0);
        let y = m.add_var("y", VarType::Continuous, f64::NEG_INFINITY, 4.0);
        m.add_constr("c1", x * 2.0 + y, Cmp::Le, 10.0);
        m.add_constr("c2", x - y, Cmp::Ge, -2.0);
        m.set_objective(x + y * 0.5);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 1.5);
        m.add_constr("e1", x + y, Cmp::Eq, 2.0);
        m.add_constr("e2", x + y, Cmp::Eq, 2.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 0.5);
    }
}
