//! LP solve entry point.
//!
//! [`solve`] runs the production solver — the revised simplex with native
//! bounded variables of [`crate::revised`] — as a cold one-shot solve.
//! Callers with repeated near-identical solves (branch-and-bound nodes,
//! gap-oracle sweeps) should hold a [`crate::revised::SolverSession`] or
//! [`crate::revised::SessionPool`] instead and warm-start.
//!
//! [`mod@reference`] keeps the original dense two-phase tableau solver alive
//! as the trusted oracle of the differential test-bed: same signature,
//! same typed errors, independently implemented.

pub mod reference;

use crate::error::LpError;
use crate::model::{Model, Solution};

/// Solve the LP relaxation of `model` (cold start, revised simplex).
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    crate::revised::solve(model)
}
