//! Dense two-phase primal simplex — the **reference oracle**.
//!
//! This is the original solver of the reproduction, kept alive verbatim as
//! the slow-but-trusted oracle for the differential test-bed
//! (`crates/lp/tests/differential.rs`) and the baseline of the solver
//! benches. The production hot path is [`crate::revised`]; two-sided
//! variable bounds here become explicit `y <= hi - lo` constraint rows,
//! which is exactly the overhead the revised solver removes.
//!
//! The solver converts a [`Model`] to standard form (`min c'y, Ay = b, y >= 0`)
//! by shifting/splitting bounded and free variables, then runs phase 1 with
//! artificial variables and phase 2 with the true objective. Dantzig pricing
//! is used until a degeneracy streak is detected, after which Bland's rule
//! guarantees termination.
//!
//! Targets the model sizes XPlain generates (up to a few thousand variables
//! and constraints); all arithmetic is dense `f64`.

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense, Solution};

/// How a model variable maps onto nonnegative standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + y[col]`
    Shift { col: usize, lo: f64 },
    /// `x = hi - y[col]` (used when only an upper bound is finite)
    NegShift { col: usize, hi: f64 },
    /// `x = y[pos] - y[neg]` (free variable)
    Free { pos: usize, neg: usize },
}

/// A standard-form row before slack/artificial augmentation.
struct StdRow {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// Result of standard-form conversion.
struct StdForm {
    maps: Vec<VarMap>,
    n_y: usize,
    rows: Vec<StdRow>,
    /// Cost vector over y (always a minimization).
    costs: Vec<f64>,
}

fn standardize(model: &Model) -> Result<StdForm, LpError> {
    let mut maps = Vec::with_capacity(model.vars.len());
    let mut n_y = 0usize;
    let mut rows: Vec<StdRow> = Vec::new();

    for v in &model.vars {
        let lo_fin = v.lo.is_finite();
        let hi_fin = v.hi.is_finite();
        let map = match (lo_fin, hi_fin) {
            (true, true) => {
                let col = n_y;
                n_y += 1;
                // y <= hi - lo keeps the two-sided bound.
                rows.push(StdRow {
                    coeffs: vec![(col, 1.0)],
                    cmp: Cmp::Le,
                    rhs: v.hi - v.lo,
                });
                VarMap::Shift { col, lo: v.lo }
            }
            (true, false) => {
                let col = n_y;
                n_y += 1;
                VarMap::Shift { col, lo: v.lo }
            }
            (false, true) => {
                let col = n_y;
                n_y += 1;
                VarMap::NegShift { col, hi: v.hi }
            }
            (false, false) => {
                let pos = n_y;
                let neg = n_y + 1;
                n_y += 2;
                VarMap::Free { pos, neg }
            }
        };
        maps.push(map);
    }

    // Substitute the mapping into each constraint.
    for c in &model.constraints {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len() * 2);
        let mut rhs = c.rhs - c.expr.constant_part();
        for (var, coef) in c.expr.iter() {
            if coef == 0.0 {
                continue;
            }
            match maps[var.index()] {
                VarMap::Shift { col, lo } => {
                    coeffs.push((col, coef));
                    rhs -= coef * lo;
                }
                VarMap::NegShift { col, hi } => {
                    coeffs.push((col, -coef));
                    rhs -= coef * hi;
                }
                VarMap::Free { pos, neg } => {
                    coeffs.push((pos, coef));
                    coeffs.push((neg, -coef));
                }
            }
        }
        rows.push(StdRow {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }

    // Cost vector (minimization): substitute objective, drop constants.
    let mut costs = vec![0.0; n_y];
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (var, coef) in model.objective.iter() {
        match maps[var.index()] {
            VarMap::Shift { col, .. } => costs[col] += sign * coef,
            VarMap::NegShift { col, .. } => costs[col] -= sign * coef,
            VarMap::Free { pos, neg } => {
                costs[pos] += sign * coef;
                costs[neg] -= sign * coef;
            }
        }
    }

    Ok(StdForm {
        maps,
        n_y,
        rows,
        costs,
    })
}

/// Dense tableau with an attached reduced-cost row.
struct Tableau {
    /// m x (ncols+1); last column is the rhs.
    a: Vec<f64>,
    /// reduced-cost row, length ncols+1; last entry is -objective.
    z: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    /// First artificial column index (columns >= this are artificial).
    art_start: usize,
    /// Rows proved redundant in phase 1 (all-zero).
    dead_rows: Vec<bool>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.ncols + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * (self.ncols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.ncols)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.ncols + 1;
        let p = self.a[row * w + col];
        debug_assert!(p.abs() > 1e-12, "pivot on (near) zero element");
        let inv = 1.0 / p;
        for j in 0..w {
            self.a[row * w + j] *= inv;
        }
        // Clean the pivot column exactly.
        self.a[row * w + col] = 1.0;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.a[r * w + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..w {
                self.a[r * w + j] -= f * self.a[row * w + j];
            }
            self.a[r * w + col] = 0.0;
        }
        let f = self.z[col];
        if f != 0.0 {
            for j in 0..w {
                self.z[j] -= f * self.a[row * w + j];
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }
}

const PIVOT_TOL: f64 = 1e-9;
const DEGENERATE_STREAK_LIMIT: usize = 64;

/// Run the simplex loop on the tableau until optimal / unbounded / limit.
/// `allowed` restricts which columns may enter the basis.
fn iterate(
    t: &mut Tableau,
    opt_tol: f64,
    max_iterations: usize,
    allow_artificial: bool,
    iters_used: &mut usize,
) -> Result<(), LpError> {
    let mut bland = false;
    let mut degenerate_streak = 0usize;
    let col_limit = if allow_artificial {
        t.ncols
    } else {
        t.art_start
    };

    loop {
        if *iters_used >= max_iterations {
            return Err(LpError::IterationLimit {
                iterations: *iters_used,
            });
        }

        // Pricing: pick the entering column.
        let mut enter: Option<usize> = None;
        if bland {
            for j in 0..col_limit {
                if t.z[j] < -opt_tol {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -opt_tol;
            for j in 0..col_limit {
                if t.z[j] < best {
                    best = t.z[j];
                    enter = Some(j);
                }
            }
        }
        let Some(col) = enter else {
            return Ok(()); // optimal
        };

        // Ratio test: pick the leaving row.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..t.m {
            if t.dead_rows[r] {
                continue;
            }
            let a = t.at(r, col);
            if a > PIVOT_TOL {
                let ratio = t.rhs(r) / a;
                let better = ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leave.is_some_and(|lr| t.basis[r] < t.basis[lr]));
                if better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(row) = leave else {
            return Err(LpError::Unbounded);
        };

        if !best_ratio.is_finite() {
            return Err(LpError::Numerical(format!(
                "non-finite ratio at column {col}"
            )));
        }

        if best_ratio < 1e-12 {
            degenerate_streak += 1;
            if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                bland = true;
            }
        } else {
            degenerate_streak = 0;
        }

        t.pivot(row, col);
        *iters_used += 1;
    }
}

/// Solve the LP relaxation of `model` with the two-phase simplex.
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let mut iters = 0usize;
    let out = solve_counted(model, &mut iters);
    crate::counters::record(&crate::revised::SolverStats {
        solves: 1,
        iterations: iters as u64,
        cold_starts: 1,
        ..Default::default()
    });
    out
}

fn solve_counted(model: &Model, iters_out: &mut usize) -> Result<Solution, LpError> {
    let std = standardize(model)?;
    let n_y = std.n_y;
    let m = std.rows.len();

    // Count slacks and artificials; normalize rows to rhs >= 0 first.
    // Row layout of columns: [y (n_y)] [slacks] [artificials] [rhs]
    let mut norm_rows: Vec<(Vec<(usize, f64)>, Cmp, f64)> = Vec::with_capacity(m);
    for r in &std.rows {
        let mut coeffs = r.coeffs.clone();
        let mut cmp = r.cmp;
        let mut rhs = r.rhs;
        if rhs < 0.0 {
            for (_, c) in coeffs.iter_mut() {
                *c = -*c;
            }
            rhs = -rhs;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        norm_rows.push((coeffs, cmp, rhs));
    }

    let n_slack = norm_rows
        .iter()
        .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Eq))
        .count();
    // Artificials are needed for >= and = rows (slack of a <= row with
    // rhs >= 0 can start basic).
    let n_art = norm_rows
        .iter()
        .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Le))
        .count();

    let ncols = n_y + n_slack + n_art;
    let w = ncols + 1;
    let mut a = vec![0.0; m * w];
    let mut basis = vec![usize::MAX; m];
    let art_start = n_y + n_slack;

    let mut slack_ix = 0usize;
    let mut art_ix = 0usize;
    for (r, (coeffs, cmp, rhs)) in norm_rows.iter().enumerate() {
        for &(j, c) in coeffs {
            a[r * w + j] += c;
        }
        a[r * w + ncols] = *rhs;
        match cmp {
            Cmp::Le => {
                let s = n_y + slack_ix;
                slack_ix += 1;
                a[r * w + s] = 1.0;
                basis[r] = s;
            }
            Cmp::Ge => {
                let s = n_y + slack_ix;
                slack_ix += 1;
                a[r * w + s] = -1.0;
                let art = art_start + art_ix;
                art_ix += 1;
                a[r * w + art] = 1.0;
                basis[r] = art;
            }
            Cmp::Eq => {
                let art = art_start + art_ix;
                art_ix += 1;
                a[r * w + art] = 1.0;
                basis[r] = art;
            }
        }
    }

    let mut t = Tableau {
        a,
        z: vec![0.0; w],
        m,
        ncols,
        basis,
        art_start,
        dead_rows: vec![false; m],
    };

    let opts = model.options();
    let iters = iters_out;

    // ---- Phase 1: minimize the sum of artificials -----------------------
    if n_art > 0 {
        // Reduced costs: c_j - sum over artificial-basic rows of a[r][j].
        for j in 0..w {
            let mut acc = 0.0;
            for r in 0..m {
                if t.basis[r] >= art_start {
                    acc += t.a[r * w + j];
                }
            }
            t.z[j] = -acc;
        }
        for j in art_start..ncols {
            t.z[j] += 1.0; // their own cost
        }

        iterate(&mut t, opts.opt_tol, opts.max_iterations, true, iters)?;

        let phase1_obj = -t.z[ncols];
        if phase1_obj > opts.feas_tol {
            return Err(LpError::Infeasible);
        }

        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if t.basis[r] < art_start {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..art_start {
                if t.at(r, j).abs() > 1e-7 {
                    pivot_col = Some(j);
                    break;
                }
            }
            match pivot_col {
                Some(j) => t.pivot(r, j),
                None => {
                    // Redundant row: zero it out so it never participates.
                    for j in 0..w {
                        *t.at_mut(r, j) = 0.0;
                    }
                    t.dead_rows[r] = true;
                }
            }
        }
    }

    // ---- Phase 2: the real objective ------------------------------------
    for j in 0..w {
        t.z[j] = 0.0;
    }
    for (j, &c) in std.costs.iter().enumerate() {
        t.z[j] = c;
    }
    // Subtract contribution of the basic variables.
    for r in 0..m {
        if t.dead_rows[r] {
            continue;
        }
        let b = t.basis[r];
        let cb = if b < n_y { std.costs[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..w {
                t.z[j] -= cb * t.a[r * w + j];
            }
        }
    }

    iterate(&mut t, opts.opt_tol, opts.max_iterations, false, iters)?;

    // ---- Extract the solution -------------------------------------------
    let mut y = vec![0.0; n_y];
    for r in 0..m {
        if t.dead_rows[r] {
            continue;
        }
        let b = t.basis[r];
        if b < n_y {
            y[b] = t.rhs(r).max(0.0);
        }
    }

    let mut values = vec![0.0; model.num_vars()];
    for (i, map) in std.maps.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shift { col, lo } => lo + y[col],
            VarMap::NegShift { col, hi } => hi - y[col],
            VarMap::Free { pos, neg } => y[pos] - y[neg],
        };
    }

    let objective = model.objective.eval(&values);
    if !objective.is_finite() {
        return Err(LpError::Numerical("objective evaluated non-finite".into()));
    }

    Ok(Solution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::solve;
    use crate::{Cmp, LinExpr, LpError, Model, Sense, VarType};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn max_simple_two_var() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0): 12
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("c1", x + y, Cmp::Le, 4.0);
        m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
        m.set_objective(x * 3.0 + y * 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 0.0);
    }

    #[test]
    fn min_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  -> x=7, y=3: 23
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 2.0, f64::INFINITY);
        let y = m.add_var("y", VarType::Continuous, 3.0, f64::INFINITY);
        m.add_constr("sum", x + y, Cmp::Ge, 10.0);
        m.set_objective(x * 2.0 + y * 3.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 23.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        m.add_constr("e1", x + y, Cmp::Eq, 5.0);
        m.add_constr("e2", x - y, Cmp::Eq, 1.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.add_constr("hi", x + 0.0, Cmp::Ge, 2.0);
        m.set_objective(x + 0.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        m.set_objective(x + 0.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variable_split() {
        // min x s.t. x >= -5 as a constraint on a free var -> -5
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        m.add_constr("lb", x + 0.0, Cmp::Ge, -5.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x with x <= 3 (only upper bound finite)
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, f64::NEG_INFINITY, 3.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 2.5, 2.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Le, 4.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.5);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -1 with x,y in [0, 10]; max x -> y >= x + 1 -> x = 9
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x - y, Cmp::Le, -1.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 9.0);
    }

    #[test]
    fn objective_constant_carried() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
        m.set_objective(x + 41.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 42.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the origin (classic degeneracy).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x");
        let y = m.add_nonneg("y");
        for i in 0..20 {
            m.add_constr(
                format!("r{i}"),
                x + y * (1.0 + i as f64 * 0.01),
                Cmp::Le,
                0.0,
            );
        }
        m.add_constr("cap", x + y, Cmp::Le, 0.0);
        m.set_objective(x + y);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 twice; max x with x,y <= 1.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 1.5);
        let y = m.add_var("y", VarType::Continuous, 0.0, 1.5);
        m.add_constr("e1", x + y, Cmp::Eq, 2.0);
        m.add_constr("e2", x + y, Cmp::Eq, 2.0);
        m.set_objective(x + 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 0.5);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,2],[3,1]]
        // optimal: s0->d0:10, s1->d0:5, s1->d1:15 cost = 10 + 15 + 15 = 40
        let mut m = Model::new(Sense::Minimize);
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                x.push(m.add_nonneg(format!("x{i}{j}")));
            }
        }
        m.add_constr("s0", x[0] + x[1], Cmp::Le, 10.0);
        m.add_constr("s1", x[2] + x[3], Cmp::Le, 20.0);
        m.add_constr("d0", x[0] + x[2], Cmp::Ge, 15.0);
        m.add_constr("d1", x[1] + x[3], Cmp::Ge, 15.0);
        m.set_objective(x[0] * 1.0 + x[1] * 2.0 + x[2] * 3.0 + x[3] * 1.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 40.0);
    }

    #[test]
    fn feasibility_only_model() {
        // No objective: any feasible point works; check constraints hold.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
        m.add_constr("c", x + y, Cmp::Eq, 7.0);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn solution_satisfies_constraints_always() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarType::Continuous, -3.0, 8.0);
        let y = m.add_var("y", VarType::Continuous, f64::NEG_INFINITY, 4.0);
        m.add_constr("c1", x * 2.0 + y, Cmp::Le, 10.0);
        m.add_constr("c2", x - y, Cmp::Ge, -2.0);
        m.set_objective(x + y * 0.5);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
    }

    #[test]
    fn larger_random_like_lp_is_consistent() {
        // Diagonal-dominant system with known optimum at upper bounds.
        let mut m = Model::new(Sense::Maximize);
        let n = 30;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("v{i}"), VarType::Continuous, 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, 1.0 + (i % 3) as f64);
        }
        m.add_constr("budget", LinExpr::sum(vars.iter().copied()), Cmp::Le, 10.0);
        m.set_objective(obj);
        let s = solve(&m).unwrap();
        assert!(m.check_feasible(&s.values, 1e-6).is_none());
        // Greedy bound: picking the ten weight-3 vars gives 30.
        assert_close(s.objective, 30.0);
    }
}
