//! Linear expressions over model variables.
//!
//! [`LinExpr`] is the currency of model building: constraints and objectives
//! are linear expressions compared against constants. Expressions support
//! natural operator syntax (`x * 2.0 + y - 1.0`) and normalize themselves so
//! that each variable appears at most once.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a variable in a [`crate::Model`].
///
/// `VarId`s are dense indices; they are only meaningful for the model that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable within its model.
    pub fn index(self) -> usize {
        self.0
    }

    /// Construct a `VarId` from a raw index.
    ///
    /// Intended for deserialization and cross-crate plumbing; using an index
    /// that does not belong to the target model is caught at solve time.
    pub fn from_index(ix: usize) -> Self {
        VarId(ix)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression: `sum_j coeff_j * var_j + constant`.
///
/// Terms are kept in a sorted map so expressions have a canonical form;
/// coefficients that cancel to (near) zero are retained until
/// [`LinExpr::compact`] is called, which solvers do on ingestion.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a single constant.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// An expression consisting of a single `coeff * var` term.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(var, coeff);
        LinExpr {
            terms,
            constant: 0.0,
        }
    }

    /// Sum of the given variables, each with coefficient 1.
    pub fn sum<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        let mut e = LinExpr::new();
        for v in vars {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Add `coeff * var` to the expression in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coeff;
        self
    }

    /// Add a constant to the expression in place.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant offset of this expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Iterate over `(var, coeff)` terms in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of (possibly zero) stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression stores no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of `var` (0 if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Drop terms whose coefficient is smaller than `eps` in magnitude.
    pub fn compact(&mut self, eps: f64) {
        self.terms.retain(|_, c| c.abs() > eps);
    }

    /// Evaluate the expression against a dense assignment indexed by
    /// variable index.
    ///
    /// Indices outside of `values` evaluate as 0.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += c * values.get(v.0).copied().unwrap_or(0.0);
        }
        acc
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.0)
    }

    /// Multiply the whole expression (terms and constant) by a scalar.
    pub fn scale(&mut self, k: f64) -> &mut Self {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }

    /// True if any coefficient or the constant is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        !self.constant.is_finite() || self.terms.values().any(|c| !c.is_finite())
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if c.abs() < 1e-12 {
                continue;
            }
            if first {
                if *c < 0.0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if *c < 0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if (a - 1.0).abs() > 1e-12 {
                write!(f, "{a}*")?;
            }
            write!(f, "{v}")?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.abs() > 1e-12 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

// --- operator overloads ---------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        self.scale(k);
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, c: f64) -> LinExpr {
        self.constant -= c;
        self
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, v: VarId) -> LinExpr {
        self.add_term(v, 1.0);
        self
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, v: VarId) -> LinExpr {
        self.add_term(v, -1.0);
        self
    }
}

impl Mul<f64> for VarId {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr::term(self, k)
    }
}

impl Add<VarId> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        let mut e = LinExpr::term(self, 1.0);
        e.add_term(rhs, 1.0);
        e
    }
}

impl Sub<VarId> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        let mut e = LinExpr::term(self, 1.0);
        e.add_term(rhs, -1.0);
        e
    }
}

impl Add<f64> for VarId {
    type Output = LinExpr;
    fn add(self, c: f64) -> LinExpr {
        LinExpr::term(self, 1.0) + c
    }
}

impl Sub<f64> for VarId {
    type Output = LinExpr;
    fn sub(self, c: f64) -> LinExpr {
        LinExpr::term(self, 1.0) - c
    }
}

impl Neg for VarId {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::term(self, -1.0)
    }
}

impl Add<LinExpr> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        rhs + self
    }
}

impl Sub<LinExpr> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        -rhs + self
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarId) -> LinExpr {
        LinExpr::term(v, self)
    }
}

impl std::iter::Sum<LinExpr> for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::new(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn term_accumulation_merges_duplicates() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 1.5);
        e.add_term(v(0), 2.5);
        assert_eq!(e.coeff(v(0)), 4.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn operators_compose() {
        let e = v(0) * 2.0 + v(1) - 3.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 1.0);
        assert_eq!(e.constant_part(), -3.0);
    }

    #[test]
    fn eval_uses_assignment() {
        let e = v(0) * 2.0 + v(2) * -1.0 + 5.0;
        assert_eq!(e.eval(&[1.0, 9.0, 3.0]), 2.0 - 3.0 + 5.0);
    }

    #[test]
    fn eval_out_of_range_is_zero() {
        let e = LinExpr::term(v(10), 4.0) + 1.0;
        assert_eq!(e.eval(&[0.0]), 1.0);
    }

    #[test]
    fn neg_flips_everything() {
        let e = -(v(0) * 2.0 + 3.0);
        assert_eq!(e.coeff(v(0)), -2.0);
        assert_eq!(e.constant_part(), -3.0);
    }

    #[test]
    fn sub_cancels() {
        let mut e = (v(0) + v(1)) - v(0);
        e.compact(1e-12);
        assert_eq!(e.coeff(v(0)), 0.0);
        assert_eq!(e.coeff(v(1)), 1.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn sum_iterator() {
        let e: LinExpr = (0..4).map(|i| LinExpr::term(v(i), 1.0)).sum();
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn display_is_readable() {
        let e = v(0) * 2.0 - v(1) + 1.0;
        let s = format!("{e}");
        assert!(s.contains("2*x0"), "{s}");
        assert!(s.contains("- x1"), "{s}");
        assert!(s.contains("+ 1"), "{s}");
    }

    #[test]
    fn display_zero() {
        assert_eq!(format!("{}", LinExpr::new()), "0");
    }

    #[test]
    fn scale_affects_constant() {
        let mut e = v(0) + 2.0;
        e.scale(3.0);
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.constant_part(), 6.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut e = LinExpr::term(v(0), 1.0);
        assert!(!e.has_non_finite());
        e.add_term(v(1), f64::NAN);
        assert!(e.has_non_finite());
    }
}
