//! Content-addressed on-disk result store.
//!
//! Pipeline runs are pure functions of `(domain id, PipelineConfig)` —
//! the config carries the derived seed — so results are cached under a
//! key hashed from exactly those two values (FNV-1a over the domain id
//! and the config's canonical JSON). Repeated jobs across runner
//! invocations become cache hits; anything unreadable, unparsable, or
//! mismatched (a hash collision, a stale schema, or a result stamped
//! with an unknown `schema_version`) is treated as a miss and silently
//! recomputed — a corrupt cache must never panic or poison results.
//!
//! The store also persists **session checkpoints** (`{key}.ckpt` next to
//! `{key}.json` results) under the same content-addressed key, so an
//! interrupted or killed `runner` continues mid-loop on the next
//! invocation instead of starting the pipeline over. Checkpoints follow
//! the same degrade-to-recompute philosophy: anything unreadable or
//! version-mismatched reads back as "no checkpoint".

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use xplain_core::pipeline::{PipelineConfig, PipelineResult, PIPELINE_SCHEMA_VERSION};
use xplain_core::session::{SessionCheckpoint, SESSION_CHECKPOINT_SCHEMA_VERSION};

/// One stored entry. The key inputs are echoed next to the result so
/// lookups can verify them (defends against both hash collisions and
/// config-schema drift between versions).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreEntry {
    domain: String,
    config: PipelineConfig,
    result: PipelineResult,
    /// Ownership metadata: which process computed this entry (the mesh
    /// stamps the shard id, so a shared store records who did the work
    /// — steals included). Not part of the content key and not verified
    /// on lookup: results are pure functions of `(domain, config)`, so
    /// the same bytes land regardless of who computed them. Entries
    /// from before this field read back as `None`.
    #[serde(default)]
    origin: Option<String>,
}

/// One persisted session checkpoint, with the same key-echo defense as
/// [`StoreEntry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointEntry {
    domain: String,
    config: PipelineConfig,
    checkpoint: SessionCheckpoint,
}

/// A directory of `{key:016x}.json` entries.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

/// What [`ResultStore::gc`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Orphaned `{key}.ckpt` files deleted.
    pub checkpoints_removed: usize,
    /// Stale `.*.tmp` files deleted (crashed writers strand these —
    /// a kill between temp-write and rename leaves the temp behind).
    pub temp_files_removed: usize,
    /// Total size on disk of everything removed.
    pub bytes_reclaimed: u64,
    /// Regression-bank entries dropped (unknown schema version or
    /// unregistered domain). Zero unless the caller also ran
    /// [`crate::bank::RegressionBank::sweep`] — the store itself cannot
    /// know which domains are registered.
    pub bank_entries_removed: usize,
    /// Bytes those bank entries occupied.
    pub bank_bytes_reclaimed: u64,
}

impl GcReport {
    /// Merge a bank sweep's counts into this report.
    pub fn absorb_bank(&mut self, swept: crate::bank::BankSweep) {
        self.bank_entries_removed += swept.entries_removed;
        self.bank_bytes_reclaimed += swept.bytes_reclaimed;
    }
}

/// Temp files younger than this survive [`ResultStore::gc`] — they may
/// belong to a writer that is mid-publish right now. Anything older is
/// necessarily stranded: a healthy publish holds its temp file for
/// milliseconds, not minutes.
pub const STALE_TMP_MAX_AGE: Duration = Duration::from_secs(60);

/// Unique-ish suffix counter for temp files (concurrent writers on the
/// same key must not interleave partial writes; each writes its own temp
/// file and atomically renames it into place).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ResultStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The regression bank living under this store
    /// (`<dir>/bank/` — see [`crate::bank`]).
    pub fn bank(&self) -> crate::bank::RegressionBank {
        crate::bank::RegressionBank::new(&self.dir)
    }

    /// The content-addressed key of a job.
    pub fn key(domain: &str, config: &PipelineConfig) -> u64 {
        let config_json = serde_json::to_string(config).unwrap_or_default();
        let mut h = fnv1a64(domain.as_bytes());
        h = fnv1a64_continue(h, &[0]);
        fnv1a64_continue(h, config_json.as_bytes())
    }

    /// On-disk path of a job's entry.
    pub fn entry_path(&self, domain: &str, config: &PipelineConfig) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", Self::key(domain, config)))
    }

    /// Fetch a cached result. `None` means miss — including unreadable or
    /// corrupted entries, echo mismatches, and results stamped with a
    /// `schema_version` other than the current one (entries written
    /// before the stamp existed read back as version 0 and miss too),
    /// which callers recompute.
    pub fn lookup(&self, domain: &str, config: &PipelineConfig) -> Option<PipelineResult> {
        let text = fs::read_to_string(self.entry_path(domain, config)).ok()?;
        let entry: StoreEntry = serde_json::from_str(&text).ok()?;
        if entry.result.schema_version != PIPELINE_SCHEMA_VERSION {
            return None;
        }
        let same_config =
            serde_json::to_string(&entry.config).ok()? == serde_json::to_string(config).ok()?;
        (entry.domain == domain && same_config).then_some(entry.result)
    }

    /// Store a result (write-to-temp, fsync, rename, fsync directory —
    /// concurrent writers of the same key never expose a torn file, and
    /// a crash at any point publishes either the old bytes or the new
    /// bytes, never a truncated entry).
    pub fn insert(
        &self,
        domain: &str,
        config: &PipelineConfig,
        result: &PipelineResult,
    ) -> io::Result<()> {
        self.insert_with_origin(domain, config, result, None)
    }

    /// [`ResultStore::insert`] with an origin tag (ownership metadata —
    /// the mesh passes the computing shard's id).
    pub fn insert_with_origin(
        &self,
        domain: &str,
        config: &PipelineConfig,
        result: &PipelineResult,
        origin: Option<&str>,
    ) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let entry = StoreEntry {
            domain: domain.to_string(),
            config: config.clone(),
            result: result.clone(),
            origin: origin.map(str::to_string),
        };
        let json = serde_json::to_string(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let final_path = self.entry_path(domain, config);
        let tmp_path = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            Self::key(domain, config),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        publish_durable(&self.dir, &tmp_path, &final_path, json.as_bytes())
    }

    /// Read back the origin tag of a committed entry (`None` for
    /// misses, untagged entries, and anything `lookup` would reject).
    pub fn origin(&self, domain: &str, config: &PipelineConfig) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(domain, config)).ok()?;
        let entry: StoreEntry = serde_json::from_str(&text).ok()?;
        (entry.domain == domain).then_some(entry.origin)?
    }

    /// On-disk path of a job's session checkpoint (`.ckpt`, deliberately
    /// not `.json`, so [`ResultStore::len`] keeps counting results only).
    pub fn checkpoint_path(&self, domain: &str, config: &PipelineConfig) -> PathBuf {
        self.dir
            .join(format!("{:016x}.ckpt", Self::key(domain, config)))
    }

    /// Fetch a persisted session checkpoint for this job. `None` on any
    /// problem — missing, unreadable, corrupt, echo mismatch, or an
    /// unknown checkpoint schema version — and the caller starts fresh.
    pub fn load_checkpoint(
        &self,
        domain: &str,
        config: &PipelineConfig,
    ) -> Option<SessionCheckpoint> {
        let text = fs::read_to_string(self.checkpoint_path(domain, config)).ok()?;
        let entry: CheckpointEntry = serde_json::from_str(&text).ok()?;
        if entry.checkpoint.schema_version != SESSION_CHECKPOINT_SCHEMA_VERSION {
            return None;
        }
        let same_config =
            serde_json::to_string(&entry.config).ok()? == serde_json::to_string(config).ok()?;
        (entry.domain == domain && same_config).then_some(entry.checkpoint)
    }

    /// Persist a session checkpoint (same write-to-temp + fsync + rename
    /// discipline as results). Overwrites any previous checkpoint for the
    /// job — only the newest boundary matters for resumption.
    pub fn save_checkpoint(
        &self,
        domain: &str,
        config: &PipelineConfig,
        checkpoint: &SessionCheckpoint,
    ) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let entry = CheckpointEntry {
            domain: domain.to_string(),
            config: config.clone(),
            checkpoint: checkpoint.clone(),
        };
        let json = serde_json::to_string(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let final_path = self.checkpoint_path(domain, config);
        let tmp_path = self.dir.join(format!(
            ".{:016x}.{}.{}.ckpt.tmp",
            Self::key(domain, config),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        publish_durable(&self.dir, &tmp_path, &final_path, json.as_bytes())
    }

    /// Remove a job's checkpoint (after its session finished naturally
    /// and the result was committed). Missing files are fine.
    pub fn clear_checkpoint(&self, domain: &str, config: &PipelineConfig) {
        let _ = fs::remove_file(self.checkpoint_path(domain, config));
    }

    /// Sweep orphaned checkpoints: delete every `{key}.ckpt` whose
    /// `{key}.json` result exists. A naturally finishing session clears
    /// its own checkpoint, but a killed `--resume` run followed by a
    /// plain (non-resume) rerun commits the result while leaving the
    /// checkpoint stranded — dead weight that would otherwise sit on
    /// disk forever. Checkpoints without a committed result are live
    /// (something may still resume them) and are never touched.
    ///
    /// Budget-limited interrupts can leave a checkpoint next to a
    /// committed result too (partials bypass the cache, so a run under
    /// budgets recomputes a config whose full result already exists).
    /// Sweeping such a checkpoint never loses information — the
    /// canonical natural result is already on disk, and a session
    /// resumed to completion converges to those same bytes — it only
    /// trades the partial run's saved compute for the disk space.
    ///
    /// The sweep also removes stale `.*.tmp` files: a writer killed
    /// between temp-write and rename strands its temp file forever
    /// (nothing ever reads or renames it again). Only temps older than
    /// [`STALE_TMP_MAX_AGE`] go — a younger one may belong to a publish
    /// in flight right now.
    ///
    /// Returns what was reclaimed; failures to stat or remove individual
    /// files are skipped (same degrade-don't-fail philosophy as reads).
    pub fn gc(&self) -> GcReport {
        self.gc_with_tmp_age(STALE_TMP_MAX_AGE)
    }

    /// [`ResultStore::gc`] with an explicit stale-temp threshold (tests
    /// pass zero to sweep unconditionally).
    pub fn gc_with_tmp_age(&self, tmp_max_age: Duration) -> GcReport {
        let mut report = GcReport::default();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return report;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                let name_hidden = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with('.'));
                let stale = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= tmp_max_age);
                if name_hidden && stale {
                    let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                    if fs::remove_file(&path).is_ok() {
                        report.temp_files_removed += 1;
                        report.bytes_reclaimed += bytes;
                    }
                }
                continue;
            }
            if path.extension().is_none_or(|x| x != "ckpt") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if !self.dir.join(format!("{stem}.json")).is_file() {
                continue; // live checkpoint: no committed result yet
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if fs::remove_file(&path).is_ok() {
                report.checkpoints_removed += 1;
                report.bytes_reclaimed += bytes;
            }
        }
        report
    }

    /// Number of committed entries on disk.
    pub fn len(&self) -> usize {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return 0;
        };
        read.filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Write `bytes` to `tmp`, fsync it, rename it over `final_path`, and
/// fsync the containing directory — the full durability discipline, so
/// a crash at any point leaves either the previous bytes or the new
/// bytes at `final_path`, never a truncated file, and the rename itself
/// survives a power cut (an un-fsynced rename can be rolled back by the
/// filesystem journal).
pub(crate) fn publish_durable(
    dir: &Path,
    tmp: &Path,
    final_path: &Path,
    bytes: &[u8],
) -> io::Result<()> {
    let mut file = File::create(tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(tmp, final_path)?;
    fsync_dir(dir);
    Ok(())
}

/// Best-effort fsync of a directory (makes a rename or file creation in
/// it durable). Errors are ignored: not every platform or filesystem
/// supports opening a directory for sync, and degrading to the old
/// (rename-only) behavior beats failing the write.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(0xcbf29ce484222325, bytes)
}

pub(crate) fn fnv1a64_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xplain-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dummy_result(rejected: usize) -> PipelineResult {
        PipelineResult {
            schema_version: PIPELINE_SCHEMA_VERSION,
            findings: Vec::new(),
            rejected,
            analyzer_calls: 1,
            coverage: None,
            oracle_evaluations: 42,
            wall_time_ms: 0,
            solver: Default::default(),
        }
    }

    #[test]
    fn key_depends_on_domain_and_config() {
        let a = PipelineConfig::default();
        let mut b = PipelineConfig::default();
        b.seed ^= 1;
        assert_eq!(ResultStore::key("dp", &a), ResultStore::key("dp", &a));
        assert_ne!(ResultStore::key("dp", &a), ResultStore::key("ff", &a));
        assert_ne!(ResultStore::key("dp", &a), ResultStore::key("dp", &b));
    }

    #[test]
    fn roundtrip_hit_and_miss() {
        let store = ResultStore::new(scratch_dir("roundtrip"));
        let config = PipelineConfig::default();
        assert!(
            store.lookup("dp", &config).is_none(),
            "cold store must miss"
        );
        store.insert("dp", &config, &dummy_result(3)).unwrap();
        let back = store.lookup("dp", &config).expect("hit after insert");
        assert_eq!(back.rejected, 3);
        assert_eq!(back.oracle_evaluations, 42);
        // Other domain / other config: still misses.
        assert!(store.lookup("ff", &config).is_none());
        let mut other = config.clone();
        other.seed ^= 7;
        assert!(store.lookup("dp", &other).is_none());
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_entry_is_a_miss_not_a_panic() {
        let store = ResultStore::new(scratch_dir("corrupt"));
        let config = PipelineConfig::default();
        store.insert("dp", &config, &dummy_result(1)).unwrap();
        // Truncate the entry mid-JSON.
        let path = store.entry_path("dp", &config);
        fs::write(&path, "{\"domain\": \"dp\", \"config\":").unwrap();
        assert!(store.lookup("dp", &config).is_none());
        // Recompute-and-overwrite heals the entry.
        store.insert("dp", &config, &dummy_result(1)).unwrap();
        assert_eq!(store.lookup("dp", &config).unwrap().rejected, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn echo_mismatch_is_a_miss() {
        let store = ResultStore::new(scratch_dir("echo"));
        let config = PipelineConfig::default();
        store.insert("dp", &config, &dummy_result(0)).unwrap();
        // Simulate a hash collision: the file parses but echoes a
        // different domain id.
        let path = store.entry_path("dp", &config);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("\"dp\"", "\"zz\"", 1)).unwrap();
        assert!(store.lookup("dp", &config).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unknown_result_schema_version_is_a_miss() {
        let store = ResultStore::new(scratch_dir("schema"));
        let config = PipelineConfig::default();
        let mut result = dummy_result(2);
        result.schema_version = PIPELINE_SCHEMA_VERSION + 1;
        store.insert("dp", &config, &result).unwrap();
        assert!(
            store.lookup("dp", &config).is_none(),
            "future schema version must be a cache miss"
        );
        // Pre-stamp entries (schema_version absent → 0) miss too.
        let path = store.entry_path("dp", &config);
        let text = fs::read_to_string(&path).unwrap();
        let stripped = text.replace(
            &format!("\"schema_version\":{}", PIPELINE_SCHEMA_VERSION + 1),
            "\"schema_version\":0",
        );
        assert_ne!(text, stripped, "test must actually rewrite the stamp");
        fs::write(&path, stripped).unwrap();
        assert!(store.lookup("dp", &config).is_none());
        // A current-version write heals it.
        store.insert("dp", &config, &dummy_result(2)).unwrap();
        assert_eq!(store.lookup("dp", &config).unwrap().rejected, 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn checkpoints_roundtrip_and_clear() {
        use rand::rngs::StdRng;
        use xplain_analyzer::geometry::Polytope;
        use xplain_analyzer::oracle::GapOracle;
        use xplain_analyzer::search::Adversarial;
        use xplain_core::session::SessionBuilder;

        struct Flat;
        impl GapOracle for Flat {
            fn dims(&self) -> usize {
                1
            }
            fn bounds(&self) -> Vec<(f64, f64)> {
                vec![(0.0, 1.0)]
            }
            fn gap(&self, _: &[f64]) -> f64 {
                0.0
            }
        }

        let store = ResultStore::new(scratch_dir("ckpt"));
        let config = PipelineConfig::default();
        let session = SessionBuilder::new(Flat)
            .config(config.clone())
            .finder(|_: &[Polytope], _: &mut StdRng| None::<Adversarial>)
            .build()
            .unwrap();
        let checkpoint = session.checkpoint();

        assert!(store.load_checkpoint("dp", &config).is_none());
        store.save_checkpoint("dp", &config, &checkpoint).unwrap();
        let back = store
            .load_checkpoint("dp", &config)
            .expect("checkpoint loads back");
        assert_eq!(back.schema_version, checkpoint.schema_version);
        // Checkpoints never pollute the result count.
        assert_eq!(store.len(), 0);
        // Other domain / config: miss.
        assert!(store.load_checkpoint("ff", &config).is_none());

        // Corruption degrades to "no checkpoint".
        fs::write(store.checkpoint_path("dp", &config), "garbage").unwrap();
        assert!(store.load_checkpoint("dp", &config).is_none());

        store.save_checkpoint("dp", &config, &checkpoint).unwrap();
        store.clear_checkpoint("dp", &config);
        assert!(store.load_checkpoint("dp", &config).is_none());
        store.clear_checkpoint("dp", &config); // idempotent
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_removes_stranded_checkpoints_only() {
        let store = ResultStore::new(scratch_dir("gc"));
        let config_done = PipelineConfig::default();
        let mut config_live = PipelineConfig::default();
        config_live.seed ^= 1;

        // Craft the stranded shape: a committed result AND a leftover
        // checkpoint under the same key (what a killed `--resume` run
        // followed by a plain batch rerun leaves behind).
        store.insert("dp", &config_done, &dummy_result(1)).unwrap();
        let fake_ckpt = "{\"domain\":\"dp\",\"stale\":true}";
        fs::write(store.checkpoint_path("dp", &config_done), fake_ckpt).unwrap();
        // A live checkpoint: no committed result for its key.
        fs::write(store.checkpoint_path("dp", &config_live), fake_ckpt).unwrap();

        let report = store.gc();
        assert_eq!(report.checkpoints_removed, 1);
        assert_eq!(report.bytes_reclaimed, fake_ckpt.len() as u64);
        // The stranded one is gone; result and live checkpoint survive.
        assert!(!store.checkpoint_path("dp", &config_done).exists());
        assert!(store.checkpoint_path("dp", &config_live).exists());
        assert!(store.lookup("dp", &config_done).is_some());
        assert_eq!(store.len(), 1);

        // Idempotent; and a store with nothing stranded reclaims nothing.
        assert_eq!(store.gc(), GcReport::default());
        // Missing directory: zero report, no panic.
        assert_eq!(ResultStore::new("/no/such/dir").gc(), GcReport::default());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_sweeps_stale_temp_files_but_spares_fresh_ones() {
        let store = ResultStore::new(scratch_dir("gc-tmp"));
        fs::create_dir_all(store.dir()).unwrap();
        // What a crashed writer strands: a hidden temp that nothing will
        // ever rename into place.
        let stranded = store.dir().join(".00000000deadbeef.1234.0.tmp");
        fs::write(&stranded, "partial entry bytes").unwrap();
        // A fresh temp (same shape) must survive the default threshold —
        // its writer may be mid-publish right now.
        assert_eq!(store.gc(), GcReport::default());
        assert!(stranded.exists(), "fresh temp swept too eagerly");
        // With the threshold at zero it is stale by definition.
        let report = store.gc_with_tmp_age(Duration::ZERO);
        assert_eq!(report.temp_files_removed, 1);
        assert_eq!(report.checkpoints_removed, 0);
        assert_eq!(report.bytes_reclaimed, "partial entry bytes".len() as u64);
        assert!(!stranded.exists());
        // Non-hidden `.tmp` files are not the store's litter; spare them.
        let foreign = store.dir().join("user-data.tmp");
        fs::write(&foreign, "not ours").unwrap();
        assert_eq!(store.gc_with_tmp_age(Duration::ZERO), GcReport::default());
        assert!(foreign.exists());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn origin_metadata_roundtrips_and_defaults() {
        let store = ResultStore::new(scratch_dir("origin"));
        let config = PipelineConfig::default();
        assert!(store.origin("dp", &config).is_none(), "miss has no origin");
        store.insert("dp", &config, &dummy_result(1)).unwrap();
        assert!(store.origin("dp", &config).is_none(), "untagged insert");
        store
            .insert_with_origin("dp", &config, &dummy_result(1), Some("shard-2"))
            .unwrap();
        assert_eq!(store.origin("dp", &config).as_deref(), Some("shard-2"));
        // Origin is metadata, not content: lookups are unaffected.
        assert_eq!(store.lookup("dp", &config).unwrap().rejected, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn overwrite_replaces_entry() {
        let store = ResultStore::new(scratch_dir("overwrite"));
        let config = PipelineConfig::default();
        store.insert("dp", &config, &dummy_result(1)).unwrap();
        store.insert("dp", &config, &dummy_result(9)).unwrap();
        assert_eq!(store.lookup("dp", &config).unwrap().rejected, 9);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }
}
