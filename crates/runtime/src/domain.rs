//! The pluggable domain interface and registry.
//!
//! The paper positions XPlain as a layer operators point at *any*
//! heuristic analyzer (§6: "it is important for XPlain to be usable for
//! many heuristics"). [`Domain`] is that contract: everything the
//! pipeline needs from a problem domain behind one object-safe trait —
//! an oracle factory, a DSL mapper for Type-2 heat-maps, structured
//! analyzer seed points, an instance-family generator for Type-3 trends,
//! and a feature schema for subspace refinement. [`DomainRegistry`] keys
//! domains by id so batch manifests, the `runner` CLI, and the repro
//! harness all address them uniformly.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::GapOracle;
use xplain_analyzer::search::{find_adversarial, SearchOptions};
use xplain_core::explainer::DslMapper;
use xplain_core::features::FeatureMap;
use xplain_core::generalizer::{generalize, Finding, GeneralizerParams, Observation};
use xplain_core::pipeline::{PipelineConfig, PipelineResult};
use xplain_core::session::{
    AnalysisSession, CancelToken, SessionBudgets, SessionBuilder, SessionCheckpoint, SessionError,
};

/// One tunable heuristic parameter: a name, its admissible `[lo, hi]`
/// interval, and the value the shipped heuristic uses today.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamDescriptor {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    /// The current (untuned) value — candidate zero of every tuning run,
    /// and the baseline a repaired heuristic must strictly beat.
    pub default: f64,
}

/// The tunable-parameter space a domain's heuristic exposes to the
/// repair loop (`xplain-tune`): an ordered list of [`ParamDescriptor`]s.
/// Candidates are plain `Vec<f64>` in this order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSpace {
    /// The owning domain id (matches [`Domain::id`]).
    pub domain: String,
    pub params: Vec<ParamDescriptor>,
}

impl ParamSpace {
    /// The default candidate: every parameter at its shipped value.
    pub fn defaults(&self) -> Vec<f64> {
        self.params.iter().map(|p| p.default).collect()
    }

    /// Clamp a candidate into the admissible box, dimension by dimension.
    pub fn clamp(&self, params: &mut [f64]) {
        for (v, d) in params.iter_mut().zip(&self.params) {
            *v = v.clamp(d.lo, d.hi);
        }
    }
}

/// A problem domain the runtime can analyze end to end.
///
/// Object-safe on purpose: registries hold `Box<dyn Domain>`, and the
/// batch executor moves the boxed factories' products across worker
/// threads (hence the `Send + Sync` bounds here and on [`GapOracle`] /
/// [`DslMapper`]).
pub trait Domain: Send + Sync {
    /// Stable identifier used in manifests and store keys (e.g. `"dp"`).
    fn id(&self) -> &str;

    /// One-line human description for listings.
    fn description(&self) -> String;

    /// Fresh gap oracle (`benchmark − heuristic` over the input box).
    fn oracle(&self) -> Box<dyn GapOracle>;

    /// DSL mapper enabling the Type-2 explainer stage (`None` disables
    /// it — Type 1 subspaces and significance still run).
    fn mapper(&self) -> Option<Box<dyn DslMapper>>;

    /// Structured seed points for the adversarial-input search.
    fn seeds(&self) -> Vec<Vec<f64>>;

    /// Generate the domain's instance family for the Type-3 generalizer:
    /// one [`Observation`] (named features + measured gap) per instance.
    fn instance_family(&self, seed: u64) -> Vec<Observation>;

    /// Feature schema over the oracle's input space (drives the
    /// regression-tree refinement and the polytope half-spaces). The
    /// default is the paper's identity-plus-sum map.
    fn feature_schema(&self) -> FeatureMap {
        let oracle = self.oracle();
        FeatureMap::identity_with_sum(oracle.dims(), &oracle.dim_names())
    }

    /// The heuristic's tunable-parameter space, if it exposes one to the
    /// repair loop (`None` means the domain is not tunable — `runner
    /// tune` and `POST /v1/tune` reject it).
    fn param_space(&self) -> Option<ParamSpace> {
        None
    }

    /// A gap oracle whose *heuristic side* runs with the given parameter
    /// vector (ordered per [`Domain::param_space`]); the benchmark side
    /// is unchanged. Evaluating the default vector must reproduce
    /// [`Domain::oracle`] exactly — the tuner pins that contract.
    fn tuned_oracle(&self, params: &[f64]) -> Option<Box<dyn GapOracle>> {
        let _ = params;
        None
    }

    /// Search configuration for the analyzer stage (defaults to the
    /// standard options with this domain's seeds).
    fn search_options(&self) -> SearchOptions {
        SearchOptions {
            seeds: self.seeds(),
            ..Default::default()
        }
    }

    /// Convenience: a streaming session over this domain (fresh, with a
    /// private cancel token). Adapters expose the session API through
    /// this one call; [`build_session`] is the full-control variant
    /// (cancellation, checkpoint resume) and the only route for
    /// `dyn Domain` registry entries.
    fn session(
        &self,
        config: &PipelineConfig,
        budgets: SessionBudgets,
    ) -> Result<AnalysisSession<'static>, SessionError>
    where
        Self: Sized,
    {
        build_session(self, config, budgets, CancelToken::new(), None)
    }
}

/// Build a streaming [`AnalysisSession`] for one domain: oracle, mapper,
/// feature schema, and search-based finder all pulled through the trait,
/// with budgets, a cancel token (also wired into the analyzer search's
/// cooperative stop flag), and an optional checkpoint to resume.
///
/// This is how the executor runs jobs; [`run_domain`] is a plain drain
/// over it.
pub fn build_session(
    domain: &dyn Domain,
    config: &PipelineConfig,
    budgets: SessionBudgets,
    cancel: CancelToken,
    checkpoint: Option<SessionCheckpoint>,
) -> Result<AnalysisSession<'static>, SessionError> {
    let oracle = domain.oracle();
    let finder_oracle = domain.oracle();
    let features = domain.feature_schema();
    let mut search = domain.search_options();
    // One token interrupts both layers: between session events, and
    // inside a long-running analyzer search.
    search.stop = Some(cancel.stop_flag());
    let finder = move |excl: &[Polytope], rng: &mut StdRng| {
        find_adversarial(finder_oracle.as_ref(), excl, &search, rng)
    };
    let mut builder = SessionBuilder::from_boxed(oracle)
        .features(features)
        .finder(finder)
        .config(config.clone())
        .budgets(budgets)
        .cancel_token(cancel);
    if let Some(mapper) = domain.mapper() {
        builder = builder.mapper_boxed(mapper);
    }
    if let Some(checkpoint) = checkpoint {
        builder = builder.resume_from(checkpoint);
    }
    builder.build()
}

/// Run the full Type-1/Type-2 pipeline for one domain.
///
/// This is the generic replacement for the old per-domain convenience
/// functions (`run_dp_pipeline`, `run_ff_pipeline`): everything
/// domain-specific is pulled through the trait. Since the streaming
/// redesign it drains a [`build_session`] session, so the batch and
/// streaming paths share one state machine.
pub fn run_domain(domain: &dyn Domain, config: &PipelineConfig) -> PipelineResult {
    build_session(
        domain,
        config,
        SessionBudgets::unlimited(),
        CancelToken::new(),
        None,
    )
    .expect("a fresh domain session always builds")
    .drain()
}

/// All three output types for one domain: the pipeline's Type-1 subspaces
/// and Type-2 heat-maps plus the generalizer's Type-3 trends over the
/// domain's instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainAnalysis {
    pub domain: String,
    pub pipeline: PipelineResult,
    pub trends: Vec<Finding>,
}

/// Run pipeline + generalizer (Types 1, 2, and 3) for one domain.
pub fn run_domain_full(domain: &dyn Domain, config: &PipelineConfig) -> DomainAnalysis {
    let pipeline = run_domain(domain, config);
    let observations = domain.instance_family(config.seed);
    let trends = generalize(&observations, &GeneralizerParams::default());
    DomainAnalysis {
        domain: domain.id().to_string(),
        pipeline,
        trends,
    }
}

/// Id-keyed collection of registered domains.
pub struct DomainRegistry {
    entries: BTreeMap<String, Box<dyn Domain>>,
}

impl DomainRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DomainRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// The built-in registry: the paper's two running examples plus the
    /// makespan-scheduling domain, each at its reference configuration.
    pub fn builtin() -> Self {
        let mut reg = DomainRegistry::empty();
        reg.register(Box::new(crate::adapters::DpDomain::fig1a()));
        reg.register(Box::new(crate::adapters::FfDomain::small()));
        reg.register(Box::new(crate::adapters::SchedDomain::small()));
        reg
    }

    /// Register a domain under its [`Domain::id`].
    ///
    /// # Panics
    /// On duplicate ids — two domains answering the same manifest id
    /// would make stored results ambiguous, so this is a programmer
    /// error, not a recoverable condition.
    pub fn register(&mut self, domain: Box<dyn Domain>) -> &mut Self {
        let id = domain.id().to_string();
        let prev = self.entries.insert(id.clone(), domain);
        assert!(prev.is_none(), "domain id '{id}' registered twice");
        self
    }

    pub fn get(&self, id: &str) -> Option<&dyn Domain> {
        self.entries.get(id).map(|b| b.as_ref())
    }

    /// Registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for DomainRegistry {
    fn default() -> Self {
        DomainRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registers_all_three_domains() {
        let reg = DomainRegistry::builtin();
        assert_eq!(reg.ids(), vec!["dp", "ff", "sched"]);
        for id in reg.ids() {
            let d = reg.get(&id).unwrap();
            assert_eq!(d.id(), id);
            assert!(!d.description().is_empty());
            let oracle = d.oracle();
            assert!(oracle.dims() > 0);
            assert_eq!(oracle.bounds().len(), oracle.dims());
            // Every seed matches the oracle's dimensionality.
            for s in d.seeds() {
                assert_eq!(s.len(), oracle.dims());
            }
            // The default schema covers the input space.
            assert_eq!(d.feature_schema().dims, oracle.dims());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(DomainRegistry::builtin().get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = DomainRegistry::builtin();
        reg.register(Box::new(crate::adapters::DpDomain::fig1a()));
    }
}
