//! The parallel batch-analysis executor.
//!
//! A *manifest* is JSONL: one [`JobSpec`] per line (domain id +
//! [`PipelineConfig`] + base seed). The executor submits the jobs to the
//! shared [`crate::queue::JobQueue`] and drains it with
//! `std::thread::scope` workers — the same queue the HTTP serving layer
//! drives, so batch and served executions share one engine.
//! Determinism is by construction:
//!
//! * each job's effective pipeline seed is derived from its manifest seed
//!   and its *position* in the manifest ([`derive_seed`], a splitmix64
//!   mix) — never from which worker ran it or when;
//! * results land in per-index slots, so output order is manifest order;
//! * [`crate::domain::run_domain`] itself is deterministic given a seed.
//!
//! Therefore a manifest run with 1 worker and with N workers yields
//! byte-for-byte identical per-job results — the property the tests and
//! the `runner --smoke` CI gate pin down. The one nondeterministic field,
//! `wall_time_ms`, is moved out of the stored result and into the
//! [`JobOutcome`] wrapper (the stored copy is normalized to 0).
//!
//! Since the streaming redesign each job *is* an
//! [`xplain_core::session::AnalysisSession`]: the executor drives the
//! session's event stream, forwards events to an optional sink
//! ([`RunOptions::sink`] — the `runner --watch` NDJSON feed), enforces
//! per-job [`SessionBudgets`], and (with [`RunOptions::resume`])
//! persists a checkpoint through the content-addressed store after every
//! event so a killed runner continues mid-loop on the next invocation.
//!
//! Durability note: batch jobs are deliberately *not* written through
//! the queue's write-ahead journal ([`crate::journal`]) — the manifest
//! file is already a durable record of what was requested (rerun it;
//! completed jobs answer from the store), and positional (index > 0)
//! jobs would recover under the wrong derived seed. The journal covers
//! the serving path, where the only record of an accepted job would
//! otherwise be queue memory; see DESIGN.md §10.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use xplain_core::pipeline::{PipelineConfig, PipelineResult};
use xplain_core::session::{CancelToken, FinishReason, SessionBudgets, SessionError, SessionEvent};
use xplain_lp::SolverCounters;

use crate::domain::{build_session, DomainRegistry};
use crate::store::ResultStore;

/// One line of a JSONL manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Registered domain id (`"dp"`, `"ff"`, `"sched"`, …).
    pub domain: String,
    /// Pipeline configuration. Its `seed` field is overwritten by the
    /// derived per-job seed before running (and before store keying).
    pub config: PipelineConfig,
    /// Base seed mixed with the job index by [`derive_seed`].
    pub seed: u64,
    /// Per-job execution budgets (absent in a manifest = unlimited).
    /// Budget-limited runs produce partial results, so they bypass the
    /// result cache; their checkpoints still persist under `--resume`.
    #[serde(default)]
    pub budgets: SessionBudgets,
}

/// Terminal-event metadata and budget accounting for one executed
/// session (absent on cache hits and failed jobs — no session ran).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionFinish {
    /// Why the session's event stream ended.
    pub reason: FinishReason,
    /// Whether the loop ran to its own stopping rule (false: a budget or
    /// cancellation stopped it early and a checkpoint can continue it).
    pub natural: bool,
    /// Whether this execution continued from a persisted checkpoint.
    pub resumed: bool,
    /// Events emitted, cumulative across resumed segments.
    pub events: u64,
    /// The budgets the session ran under.
    pub budgets: SessionBudgets,
}

/// The outcome of one manifest job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Position in the manifest.
    pub index: usize,
    pub domain: String,
    /// The derived seed the pipeline actually ran with.
    pub derived_seed: u64,
    /// Whether the result came from the store.
    pub cache_hit: bool,
    /// Wall-clock of *this* execution (near zero on cache hits). Kept
    /// outside `result`, whose own `wall_time_ms` is normalized to 0 so
    /// results compare and cache byte-for-byte.
    pub wall_time_ms: u64,
    /// Solver work observed during this execution (zero on cache hits;
    /// cumulative across segments on resumed sessions). Same treatment
    /// as `wall_time_ms`: the stored result's copy is normalized because
    /// the process-wide counters bleed across concurrently running jobs,
    /// which would break the 1-worker ≡ N-workers determinism guarantee.
    pub solver: SolverCounters,
    /// `Some` unless the job failed (unknown domain id).
    pub result: Option<PipelineResult>,
    /// Structured failure, when the job could not run at all.
    pub error: Option<SessionError>,
    /// Terminal session event + budget accounting (absent on cache hits).
    #[serde(default)]
    pub finish: Option<SessionFinish>,
}

/// splitmix64 — the standard 64-bit finalizer; full-period, so distinct
/// `(base, index)` pairs land on well-separated seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derived seeds are masked into the exactly-representable-in-f64 range:
/// the seed rides inside `PipelineConfig` through the JSON layer (store
/// entries, outcome dumps), which is f64-backed and rejects integers
/// beyond 2^53 — the same failure class that forced `wall_time_ms` down
/// to `u64`.
pub const SEED_MASK: u64 = (1 << 53) - 1;

/// Deterministic per-job seed: a function of the manifest seed and the
/// job's index only, so any worker (or worker count) produces the same
/// stream. Base seeds are interpreted mod 2^53 (the masked and unmasked
/// forms of a base derive identical seeds), so a programmatically built
/// [`JobSpec`] with a full-range `u64` seed behaves exactly like its
/// JSON-serializable masked twin.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    splitmix64((base & SEED_MASK) ^ splitmix64(index)) & SEED_MASK
}

/// Display cap for offending-line snippets in manifest errors.
fn snippet_of(line: &str) -> String {
    const MAX: usize = 48;
    if line.chars().count() <= MAX {
        line.to_string()
    } else {
        let head: String = line.chars().take(MAX).collect();
        format!("{head}…")
    }
}

/// Parse a JSONL manifest. Blank lines and `#` comment lines are
/// skipped; anything else must be a complete [`JobSpec`] object.
/// Errors carry the 1-based line number and the offending snippet
/// ([`SessionError::Manifest`]).
pub fn parse_manifest(text: &str) -> Result<Vec<JobSpec>, SessionError> {
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let spec: JobSpec = serde_json::from_str(trimmed).map_err(|e| SessionError::Manifest {
            line: lineno + 1,
            snippet: snippet_of(trimmed),
            message: format!("{e:?}"),
        })?;
        jobs.push(spec);
    }
    Ok(jobs)
}

/// Serialize jobs back to JSONL (the inverse of [`parse_manifest`]).
///
/// Base seeds are written masked to [`SEED_MASK`] — the f64-backed JSON
/// layer cannot represent larger integers, and [`derive_seed`] treats
/// the masked and unmasked forms identically, so the round trip
/// preserves behavior bit-for-bit.
pub fn manifest_to_jsonl(jobs: &[JobSpec]) -> String {
    let mut out = String::new();
    for job in jobs {
        let writable = JobSpec {
            seed: job.seed & SEED_MASK,
            ..job.clone()
        };
        out.push_str(&serde_json::to_string(&writable).expect("JobSpec serializes"));
        out.push('\n');
    }
    out
}

/// Resolve a worker-count request (0 = auto) against the job count.
fn effective_workers(requested: usize, n_jobs: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let workers = if requested == 0 { auto } else { requested };
    workers.clamp(1, n_jobs.max(1))
}

/// Fan `n` index-addressed tasks out across `workers` scoped threads
/// (0 = auto). Results return in index order regardless of scheduling;
/// a panicking task propagates (the whole fan-out fails loudly rather
/// than reporting partial results).
///
/// This is the shared primitive under [`run_manifest`] and the repro
/// harness's concurrent E1–E9 regeneration.
pub fn fan_out<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_workers(workers, n);
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Per-event observer: `(manifest index, event)`. `Sync` because workers
/// share it; the `runner --watch` sink serializes each event to NDJSON.
pub type EventSink<'s> = &'s (dyn Fn(usize, &SessionEvent) + Sync);

/// Execution policy for a manifest run, beyond the job specs themselves.
#[derive(Default, Clone, Copy)]
pub struct RunOptions<'s> {
    /// Override every job's budgets (CLI flags beat manifest fields).
    pub budgets_override: Option<SessionBudgets>,
    /// Load a persisted checkpoint before running each job and persist
    /// one after every event, so an interrupted or killed run continues
    /// mid-loop next time. Requires a store; a no-op without one.
    pub resume: bool,
    /// Forward every session event as it happens.
    pub sink: Option<EventSink<'s>>,
    /// Origin tag stamped into store entries this run commits (the mesh
    /// sets it to the computing shard's id). `None` (the default) stores
    /// entries untagged.
    pub origin: Option<&'s str>,
}

/// Execute a manifest against a registry, optionally through a result
/// store (hits skip the pipeline entirely). `workers = 0` auto-sizes.
pub fn run_manifest(
    registry: &DomainRegistry,
    jobs: &[JobSpec],
    store: Option<&ResultStore>,
    workers: usize,
) -> Vec<JobOutcome> {
    run_manifest_opts(registry, jobs, store, workers, RunOptions::default())
}

/// [`run_manifest`] with explicit [`RunOptions`] (budget overrides,
/// checkpoint resume, event streaming).
///
/// Since the serving redesign this is a thin batch driver over the
/// shared [`crate::queue::JobQueue`] — the same submit/execute machinery
/// the HTTP server uses — so the two paths cannot diverge: every
/// manifest line is submitted in order, scoped workers drain the queue,
/// and outcomes return in manifest order. Determinism is unchanged
/// (per-job seeds are positional, results land in per-index slots).
pub fn run_manifest_opts(
    registry: &DomainRegistry,
    jobs: &[JobSpec],
    store: Option<&ResultStore>,
    workers: usize,
    opts: RunOptions<'_>,
) -> Vec<JobOutcome> {
    use crate::queue::{JobQueue, QueueOptions};

    let queue = JobQueue::new(
        registry,
        store,
        QueueOptions {
            capacity: 0, // a manifest is finite; never reject
            resume: opts.resume,
            budgets_override: opts.budgets_override,
            record_events: false, // the global sink already observes
            retain_done: 0,       // into_outcomes needs every slot
            pace_ms: 0,           // batch runs flat out
        },
        opts.sink,
    );
    for (index, job) in jobs.iter().enumerate() {
        queue
            .submit(job.clone(), index)
            .expect("unbounded queue accepts every manifest line");
    }
    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        queue.drain_worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| queue.drain_worker());
            }
        });
    }
    queue.into_outcomes()
}

/// Execute one job spec end to end: cache lookup, optional checkpoint
/// resume, session drive (events to the sink), result normalization,
/// store commit. The shared per-job engine under both the batch driver
/// and the serving queue; `cancel` is owned by the caller so a server
/// can interrupt a running job.
pub(crate) fn run_job(
    registry: &DomainRegistry,
    job: &JobSpec,
    index: usize,
    store: Option<&ResultStore>,
    opts: RunOptions<'_>,
    cancel: CancelToken,
) -> JobOutcome {
    let start = std::time::Instant::now();
    let mut config = job.config.clone();
    config.seed = derive_seed(job.seed, index as u64);
    let budgets = opts.budgets_override.unwrap_or(job.budgets);

    let mut outcome = JobOutcome {
        index,
        domain: job.domain.clone(),
        derived_seed: config.seed,
        cache_hit: false,
        wall_time_ms: 0,
        solver: SolverCounters::default(),
        result: None,
        error: None,
        finish: None,
    };

    let Some(domain) = registry.get(&job.domain) else {
        outcome.error = Some(SessionError::UnknownDomain {
            id: job.domain.clone(),
        });
        return outcome;
    };

    // Budget-limited runs may stop mid-loop; their partial results must
    // never alias the canonical entry for this (domain, config), so the
    // cache is read only for unlimited jobs.
    if budgets.is_unlimited() {
        if let Some(store) = store {
            if let Some(result) = store.lookup(&job.domain, &config) {
                outcome.cache_hit = true;
                outcome.result = Some(result);
                outcome.wall_time_ms = start.elapsed().as_millis() as u64;
                return outcome;
            }
        }
    }

    // Resume from a persisted checkpoint when asked (anything unusable
    // silently degrades to a fresh start — same philosophy as the result
    // cache).
    let checkpoint = match (opts.resume, store) {
        (true, Some(store)) => store.load_checkpoint(&job.domain, &config),
        _ => None,
    };
    let mut resumed = checkpoint.is_some();
    let session =
        build_session(domain, &config, budgets, cancel.clone(), checkpoint).or_else(|_| {
            // An incompatible checkpoint (e.g. the domain changed shape
            // since it was written) degrades to a fresh session — and the
            // outcome must not claim it resumed.
            resumed = false;
            build_session(domain, &config, budgets, cancel.clone(), None)
        });
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            outcome.error = Some(e);
            return outcome;
        }
    };

    let mut finished: Option<(FinishReason, PipelineResult)> = None;
    while let Some(event) = session.next_event() {
        if let Some(sink) = opts.sink {
            sink(index, &event);
        }
        match &event {
            SessionEvent::Finished { reason, result } => {
                finished = Some((*reason, result.clone()));
            }
            _ => {
                if opts.resume {
                    if let Some(store) = store {
                        // Best-effort: a failed write only costs replay.
                        let _ = store.save_checkpoint(&job.domain, &config, &session.checkpoint());
                    }
                }
            }
        }
    }
    let (reason, mut result) = finished.expect("a session's event stream terminates with Finished");
    let natural = session.finished_naturally();

    // Normalize: wall-clock and solver counters are execution metadata,
    // not content. Stored and compared results must be identical across
    // runs and worker counts; the measured values live on the outcome
    // instead.
    result.wall_time_ms = 0;
    outcome.solver = std::mem::take(&mut result.solver);
    if let Some(store) = store {
        if natural {
            // Failing to persist is not failing the job (e.g. read-only
            // dir); the next run simply recomputes.
            let _ = store.insert_with_origin(&job.domain, &config, &result, opts.origin);
            // Write-through to the regression bank: every significant
            // finding's witness permanently hardens the corpus. Same
            // best-effort discipline as the store insert, and idempotent
            // by content key — re-running a job re-inserts nothing.
            let bank = store.bank();
            let job_key = format!("{:016x}", ResultStore::key(&job.domain, &config));
            for finding in &result.findings {
                if let Some(record) = crate::bank::BankRecord::from_finding(
                    &job.domain,
                    finding,
                    &job_key,
                    config.seed,
                ) {
                    let _ = bank.insert(&record);
                }
            }
            if opts.resume {
                store.clear_checkpoint(&job.domain, &config);
            }
        } else if opts.resume {
            let _ = store.save_checkpoint(&job.domain, &config, &session.checkpoint());
        }
    }
    outcome.finish = Some(SessionFinish {
        reason,
        natural,
        resumed,
        events: session.checkpoint().events_emitted,
        budgets,
    });
    outcome.result = Some(result);
    outcome.wall_time_ms = start.elapsed().as_millis() as u64;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_positional_and_stable() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn derived_seeds_are_json_safe() {
        // The f64-backed JSON layer rejects integers beyond 2^53; derived
        // seeds must stay inside that window even for extreme inputs.
        for base in [0, 7, u64::MAX, 1 << 60] {
            for index in [0, 1, 1000, u64::MAX] {
                assert!(derive_seed(base, index) <= SEED_MASK);
            }
        }
    }

    #[test]
    fn fan_out_preserves_index_order() {
        let squares = fan_out(100, 4, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn fan_out_handles_empty_and_serial() {
        assert!(fan_out(0, 4, |i| i).is_empty());
        assert_eq!(fan_out(3, 1, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn manifest_roundtrip_skips_comments() {
        let text = "# smoke manifest\n\n{\"domain\":\"dp\",\"config\":".to_string()
            + &serde_json::to_string(&PipelineConfig::default()).unwrap()
            + ",\"seed\":7}\n";
        let jobs = parse_manifest(&text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].domain, "dp");
        assert_eq!(jobs[0].seed, 7);
        let back = parse_manifest(&manifest_to_jsonl(&jobs)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].domain, "dp");
    }

    #[test]
    fn malformed_manifest_line_reports_position() {
        let err = parse_manifest("# ok\n{not json}\n").unwrap_err();
        let SessionError::Manifest { line, snippet, .. } = &err else {
            panic!("expected a Manifest error, got {err:?}");
        };
        assert_eq!(*line, 2);
        assert_eq!(snippet, "{not json}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn manifest_error_snippet_is_truncated() {
        let long = format!("{{\"domain\": \"{}\"", "x".repeat(200));
        let err = parse_manifest(&long).unwrap_err();
        let SessionError::Manifest { line, snippet, .. } = err else {
            panic!("expected a Manifest error");
        };
        assert_eq!(line, 1);
        assert!(snippet.chars().count() <= 49, "{snippet}");
        assert!(snippet.ends_with('…'));
    }

    #[test]
    fn manifest_budgets_default_to_unlimited_and_roundtrip() {
        // A pre-redesign manifest line (no "budgets" field) still parses.
        let text = "{\"domain\":\"dp\",\"config\":".to_string()
            + &serde_json::to_string(&PipelineConfig::default()).unwrap()
            + ",\"seed\":7}\n";
        let jobs = parse_manifest(&text).unwrap();
        assert!(jobs[0].budgets.is_unlimited());

        // Budgets survive the JSONL round trip.
        let mut job = jobs[0].clone();
        job.budgets.max_analyzer_calls = Some(3);
        job.budgets.deadline_ms = Some(250);
        let back = parse_manifest(&manifest_to_jsonl(&[job])).unwrap();
        assert_eq!(back[0].budgets.max_analyzer_calls, Some(3));
        assert_eq!(back[0].budgets.deadline_ms, Some(250));
        assert_eq!(back[0].budgets.max_solver_iterations, None);
    }

    #[test]
    fn unknown_domain_is_an_error_outcome_not_a_panic() {
        let registry = crate::domain::DomainRegistry::builtin();
        let jobs = vec![JobSpec {
            domain: "no-such-domain".into(),
            config: PipelineConfig::default(),
            seed: 1,
            budgets: SessionBudgets::unlimited(),
        }];
        let outcomes = run_manifest(&registry, &jobs, None, 1);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_none());
        let error = outcomes[0].error.clone().unwrap();
        assert_eq!(
            error,
            SessionError::UnknownDomain {
                id: "no-such-domain".into()
            }
        );
        assert!(error.to_string().contains("no-such-domain"));
    }
}
