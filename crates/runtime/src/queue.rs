//! The shared job queue — one submission/polling/cancellation surface
//! under both the batch runner and the HTTP serving layer.
//!
//! Before the serving redesign the executor only offered run-to-completion
//! entry points (`run_manifest*`): hand it a full manifest, get the full
//! outcome vector back. A server cannot work that way — jobs arrive one
//! at a time, clients poll and stream while work is in flight, and
//! identical queries must coalesce. [`JobQueue`] is the shared substrate:
//!
//! * **submit** — [`JobQueue::submit`] appends an indexed job (the batch
//!   path; `run_manifest_opts` is now a thin wrapper that submits every
//!   manifest line and drains workers over the queue).
//!   [`JobQueue::submit_deduped`] is the serving path: jobs are keyed by
//!   their content-addressed store key, so a resubmitted spec joins the
//!   in-flight execution, returns the finished outcome, or — when the
//!   prior execution was cancelled or budget-stopped — starts a new
//!   execution that resumes from the persisted checkpoint.
//! * **poll** — [`JobQueue::poll`] snapshots a job's phase and outcome.
//! * **cancel** — [`JobQueue::cancel`] fires the job's [`CancelToken`];
//!   a running session checkpoints through the store (resume mode), so a
//!   later resubmit continues mid-loop.
//! * **events** — with [`QueueOptions::record_events`], every session
//!   event is retained as its NDJSON watch line
//!   ([`crate::watch::watch_line`]); [`JobQueue::wait_events`] lets any
//!   number of subscribers tail a job's stream from any offset (the HTTP
//!   `GET /v1/jobs/{id}/events` endpoint is a loop over it).
//! * **workers** — the queue owns no threads. Callers drive it:
//!   [`JobQueue::drain_worker`] (batch: run until the queue is empty)
//!   or [`JobQueue::serve_worker`] (server: block for work until
//!   [`JobQueue::shutdown`]). Determinism is untouched — per-job seeds
//!   are positional ([`crate::executor::derive_seed`]), so which worker
//!   runs a job never matters.
//!
//! Shutdown is graceful by construction: it cancels every queued and
//! running job, running sessions hit their next event boundary, persist
//! a checkpoint (when a store is attached), and emit their terminal
//! event; workers then drain and return.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use xplain_core::pipeline::PipelineConfig;
use xplain_core::session::{CancelToken, FinishReason, SessionBudgets, SessionEvent};

use crate::domain::DomainRegistry;
use crate::executor::{derive_seed, run_job, EventSink, JobOutcome, JobSpec, RunOptions};
use crate::journal::JobJournal;
use crate::store::ResultStore;
use crate::tenant::{DrrScheduler, TenantRegistry, TokenBucket};
use crate::watch::watch_line;

/// Queue-wide execution policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueOptions {
    /// Maximum number of *waiting* (not yet running) jobs; submissions
    /// beyond it are rejected with [`QueueFull`]. `0` = unbounded (the
    /// batch default — a manifest is finite by construction).
    pub capacity: usize,
    /// Load checkpoints before running and persist them per event, so
    /// cancelled/killed executions continue mid-loop later. Requires a
    /// store; a no-op without one.
    pub resume: bool,
    /// Override every job's budgets (CLI flags beat manifest fields).
    pub budgets_override: Option<SessionBudgets>,
    /// Retain each job's events as NDJSON watch lines for subscribers
    /// ([`JobQueue::wait_events`]). Off for batch runs — the global sink
    /// already observes events, and manifests can be huge.
    pub record_events: bool,
    /// Completed jobs retained in memory (outcome + event log) before
    /// the oldest are *evicted* — tombstoned and dropped from the key
    /// index, so a long-lived server's memory stays bounded. An evicted
    /// job's id answers like an unknown job; resubmitting its spec is
    /// served from the store (cache hit) or recomputed. `0` = never
    /// evict (the batch default — `into_outcomes` needs every slot).
    pub retain_done: usize,
    /// Minimum per-worker service time in milliseconds for *executed*
    /// (non-cache-hit) jobs — a serve worker that finishes a job faster
    /// sleeps out the remainder before taking the next one. `0` (the
    /// default) disables pacing. This is per-worker rate limiting /
    /// overload protection: it caps a shard's job throughput at
    /// `workers × 1000/pace_ms` regardless of how cheap individual jobs
    /// are, which also makes per-shard capacity machine-independent —
    /// the property the mesh scaling bench (`mesh-bench`) relies on.
    /// Batch workers ([`JobQueue::drain_worker`]) never pace.
    pub pace_ms: u64,
}

/// A submission was rejected — the global waiting line is at capacity,
/// or (with a [`TenantRegistry`] attached) the submitting tenant hit
/// its own quota. Carries the depth observed at rejection time so
/// admission layers can derive a `Retry-After`, plus tenant-scoped
/// context when the submission carried an identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    pub depth: usize,
    pub capacity: usize,
    /// Tenant-scoped rejection context (`None` for anonymous
    /// submissions — the pre-tenancy global estimate applies).
    pub tenant: Option<TenantRejection>,
}

/// Why and for whom a tenant-attributed submission was rejected — the
/// inputs an admission layer needs to compute a *tenant-scoped*
/// `Retry-After` (the tenant's own backlog over the tenant's own drain
/// share) instead of the global backlog estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRejection {
    /// The submitting tenant's id.
    pub tenant: String,
    /// The tenant's queued backlog at rejection time.
    pub backlog: usize,
    /// The tenant's fair-share weight.
    pub weight: u64,
    /// Sum of weights over tenants with backlog (the share
    /// denominator; >= `weight` whenever `backlog > 0`).
    pub active_weight: u64,
    /// Exact wait reported by a token-bucket rejection, in whole
    /// seconds (0 when the rejection was depth-based, not rate-based).
    pub retry_secs: u64,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.tenant {
            Some(t) if t.retry_secs > 0 => write!(
                f,
                "tenant '{}' is over its submit rate (retry in {}s)",
                t.tenant, t.retry_secs
            ),
            Some(t) => write!(
                f,
                "tenant '{}' is at capacity ({} waiting of {} total, capacity {})",
                t.tenant, t.backlog, self.depth, self.capacity
            ),
            None => write!(
                f,
                "job queue is full ({} waiting, capacity {})",
                self.depth, self.capacity
            ),
        }
    }
}

impl std::error::Error for QueueFull {}

/// Where a job stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    Queued,
    Running,
    Done,
}

impl JobPhase {
    /// Lowercase wire tag (HTTP responses key on this).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
        }
    }
}

/// How a deduplicated submission was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The outcome already exists (in-memory completion or store entry);
    /// no new execution was scheduled.
    CacheHit,
    /// An identical job is already queued or running; the submission
    /// joined it.
    InFlight,
    /// A fresh execution was queued.
    Enqueued,
    /// A prior execution stopped early (cancelled or budget-stopped); a
    /// new execution was queued that resumes from its checkpoint when
    /// the store holds one.
    Resumed,
}

impl Disposition {
    pub fn as_str(&self) -> &'static str {
        match self {
            Disposition::CacheHit => "cache_hit",
            Disposition::InFlight => "in_flight",
            Disposition::Enqueued => "enqueued",
            Disposition::Resumed => "resumed",
        }
    }
}

/// Receipt for a deduplicated submission.
#[derive(Debug, Clone)]
pub struct Submitted {
    /// Content-addressed job id (the store key, zero-padded hex).
    pub id: String,
    pub key: u64,
    /// Slot handle for event streaming ([`JobQueue::wait_events`]).
    pub slot: usize,
    pub disposition: Disposition,
}

/// Point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobView {
    pub id: String,
    pub key: u64,
    pub index: usize,
    pub domain: String,
    pub phase: JobPhase,
    /// Present once `phase == Done`.
    pub outcome: Option<JobOutcome>,
    /// Events retained so far (0 unless `record_events`).
    pub events_logged: usize,
    /// This execution was re-enqueued from the write-ahead journal at
    /// startup (its acceptance predates this process).
    pub recovered: bool,
}

/// Summary of one waiting job — the `GET /v1/queue` surface a peer
/// inspects before stealing.
#[derive(Debug, Clone)]
pub struct PendingJob {
    pub id: String,
    pub domain: String,
    /// Already offered to a peer via [`JobQueue::donate`].
    pub donated: bool,
    /// Tenant attribution (`None` for anonymous submissions).
    pub tenant: Option<String>,
}

/// One batch of tailed events.
#[derive(Debug, Clone)]
pub struct EventsChunk {
    /// NDJSON watch lines from the requested offset (no trailing
    /// newlines).
    pub lines: Vec<String>,
    /// The job's stream is complete — no further lines will appear.
    pub done: bool,
}

/// Monotonic queue counters (metrics surface).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueCounters {
    /// Accepted submissions, every disposition (joins and cache-served
    /// answers included).
    pub submitted: u64,
    /// Executions that reached `Done` (inline cache answers included).
    pub completed: u64,
    /// Submissions answered from cache — memory or store — plus
    /// executions whose outcome was a store hit.
    pub cache_hits: u64,
    pub cancelled: u64,
    /// Submissions rejected with [`QueueFull`].
    pub rejected_full: u64,
    /// Pending jobs handed to a peer via [`JobQueue::donate`] (the
    /// work-stealing surface — a donated job stays queued here too; the
    /// count is jobs *offered*, not jobs whose local execution was
    /// skipped).
    pub donated: u64,
    /// Jobs re-enqueued from the write-ahead journal at startup
    /// ([`JobQueue::recover`]) — accepted by a previous process over the
    /// same store that died before finishing them.
    pub recovered: u64,
}

/// Point-in-time per-tenant gauges and counters (the `tenants` block of
/// `GET /v1/metrics` when tenancy is configured).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    pub tenant: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Jobs waiting in this tenant's lane.
    pub pending: usize,
    /// Jobs currently executing for this tenant.
    pub running: usize,
    /// Accepted submissions, every disposition.
    pub submitted: u64,
    /// Executions (and inline cache answers) that reached `Done`.
    pub completed: u64,
    /// Submissions rejected — global capacity, in-flight cap, or
    /// submit rate.
    pub rejected: u64,
}

/// Mutable per-tenant accounting, keyed by tenant id under the queue
/// mutex.
#[derive(Debug, Default)]
struct TenantStats {
    running: usize,
    submitted: u64,
    completed: u64,
    rejected: u64,
    bucket: Option<TokenBucket>,
}

enum SlotState {
    Queued,
    Running,
    Done(Box<JobOutcome>),
    /// Tombstone: the outcome and event log were released under
    /// [`QueueOptions::retain_done`] pressure. Slot handles stay valid
    /// but the job no longer resolves, and event reads answer `None`
    /// (a mid-replay subscriber must observe truncation, not a
    /// "complete" stream missing its tail).
    Evicted,
}

/// How the in-memory state answers a deduplicated submission (`None`:
/// the key is unknown in memory; consult the store / enqueue fresh).
enum MemDedup {
    /// An existing slot serves the submission as-is.
    Answer(usize, Disposition),
    /// The prior execution stopped early; enqueue a resuming one.
    Resume,
}

struct JobSlot {
    spec: JobSpec,
    /// Config with the positional seed derived — the store-key input.
    derived: PipelineConfig,
    key: u64,
    index: usize,
    domain: String,
    state: SlotState,
    cancel: CancelToken,
    /// NDJSON watch lines (only when `record_events`).
    events: Vec<String>,
    /// No further events will be appended.
    events_done: bool,
    /// Handed to a peer via [`JobQueue::donate`]. The slot stays
    /// pending (the local execution is the safety net if the thief
    /// dies), but it is never offered twice.
    donated: bool,
    /// Re-enqueued from the journal at startup rather than submitted by
    /// a client of *this* process (surfaced on `GET /v1/jobs/{id}`).
    recovered: bool,
    /// Tenant attribution of the first submitter (`None` for anonymous
    /// / batch submissions). Joins from other tenants do not re-home a
    /// job — the content key, not the identity, names the work.
    tenant: Option<String>,
}

struct QueueState {
    slots: Vec<JobSlot>,
    /// The waiting line: per-tenant FIFO lanes drained by weighted
    /// deficit round robin. With no tenancy configured every job lands
    /// in the single anonymous lane and this is exactly the old global
    /// FIFO.
    sched: DrrScheduler,
    /// Per-tenant accounting (named tenants only).
    tenant_stats: HashMap<String, TenantStats>,
    /// Content key → newest slot (deduplicated submissions only).
    by_key: HashMap<u64, usize>,
    /// Completion order, oldest first — the eviction queue when
    /// [`QueueOptions::retain_done`] bounds retained completions.
    done_order: VecDeque<usize>,
}

/// The shared job queue. See the module docs for the contract.
pub struct JobQueue<'a> {
    registry: &'a DomainRegistry,
    store: Option<&'a ResultStore>,
    opts: QueueOptions,
    /// Stamped into store entries this queue commits (the mesh sets it
    /// to the shard id, so `origin` metadata records which process
    /// computed each result).
    origin: Option<String>,
    /// Write-ahead journal for serving-path (index-0 deduplicated)
    /// submissions: every accept/dispatch/completion is durable before
    /// it is visible, and [`JobQueue::recover`] re-enqueues what a dead
    /// process left behind. Batch (positional) jobs are never journaled
    /// — a manifest is its own durable record.
    journal: Option<&'a JobJournal>,
    /// Tenant directory for weights and quotas. `None` (and open-mode
    /// registries) schedule everything in the anonymous lane with no
    /// quota checks — the pre-tenancy behavior, byte for byte.
    tenants: Option<&'a TenantRegistry>,
    /// Global observer (the batch `--watch` sink); per-job event logs are
    /// separate and gated on `record_events`.
    sink: Option<EventSink<'a>>,
    state: Mutex<QueueState>,
    /// Wakes workers when work arrives or shutdown fires.
    work_cv: Condvar,
    /// Wakes event subscribers and completion pollers.
    event_cv: Condvar,
    shutting_down: AtomicBool,
    active: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cancelled: AtomicU64,
    rejected_full: AtomicU64,
    donated: AtomicU64,
    recovered: AtomicU64,
}

impl<'a> JobQueue<'a> {
    pub fn new(
        registry: &'a DomainRegistry,
        store: Option<&'a ResultStore>,
        opts: QueueOptions,
        sink: Option<EventSink<'a>>,
    ) -> Self {
        JobQueue {
            registry,
            store,
            opts,
            origin: None,
            journal: None,
            tenants: None,
            sink,
            state: Mutex::new(QueueState {
                slots: Vec::new(),
                sched: DrrScheduler::new(),
                tenant_stats: HashMap::new(),
                by_key: HashMap::new(),
                done_order: VecDeque::new(),
            }),
            work_cv: Condvar::new(),
            event_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            donated: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    /// Stamp every store entry this queue commits with an origin tag
    /// (typically the mesh shard id) — see [`ResultStore`] origin
    /// metadata.
    pub fn with_origin(mut self, origin: Option<String>) -> Self {
        self.origin = origin;
        self
    }

    /// Attach a write-ahead journal: serving-path submissions become
    /// durable before they are acknowledged, and [`JobQueue::recover`]
    /// re-enqueues whatever a previous process accepted but never
    /// finished. Call `recover` after construction, before workers poll.
    pub fn with_journal(mut self, journal: Option<&'a JobJournal>) -> Self {
        self.journal = journal;
        self
    }

    /// Attach a tenant directory: submissions via
    /// [`JobQueue::submit_deduped_as`] are scheduled in per-tenant
    /// lanes weighted by the registry, and per-tenant quotas (in-flight
    /// cap, submit rate) reject with tenant-scoped [`QueueFull`]
    /// context. Without one — or with an open-mode registry — every
    /// submission is anonymous and nothing changes.
    pub fn with_tenants(mut self, tenants: Option<&'a TenantRegistry>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Re-enqueue every accepted-but-unfinished job the journal replayed
    /// at open, in original acceptance order. Jobs whose results landed
    /// in the store before the crash answer as cache hits and are
    /// journaled terminal instead of re-running. Returns the number of
    /// executions scheduled. No-op without a journal.
    ///
    /// Respects [`QueueOptions::capacity`]: jobs that do not fit stay
    /// live in the journal and surface again on the next restart.
    pub fn recover(&self) -> usize {
        let Some(journal) = self.journal else {
            return 0;
        };
        let mut scheduled = 0;
        for (spec, tenant) in journal.take_recovered() {
            match self.submit_deduped_inner(spec, tenant.as_deref(), true) {
                Ok(sub) if sub.disposition == Disposition::CacheHit => {
                    // The result survived the crash; close the journal
                    // entry so compaction can drop the job.
                    journal.record_done(sub.key);
                }
                Ok(_) => {
                    scheduled += 1;
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {} // queue full: recovered on the next restart
            }
        }
        scheduled
    }

    /// Content-addressed identity of a spec at a manifest position: the
    /// store key of its domain + seed-derived config.
    pub fn job_key(spec: &JobSpec, index: usize) -> u64 {
        let mut config = spec.config.clone();
        config.seed = derive_seed(spec.seed, index as u64);
        ResultStore::key(&spec.domain, &config)
    }

    /// Format a key as the public job id.
    pub fn format_id(key: u64) -> String {
        format!("{key:016x}")
    }

    /// Parse a public job id back into a key (`None` on malformed input).
    pub fn parse_id(id: &str) -> Option<u64> {
        (id.len() == 16).then(|| u64::from_str_radix(id, 16).ok())?
    }

    fn derived_config(spec: &JobSpec, index: usize) -> PipelineConfig {
        let mut config = spec.config.clone();
        config.seed = derive_seed(spec.seed, index as u64);
        config
    }

    fn effective_budgets(&self, spec: &JobSpec) -> SessionBudgets {
        self.opts.budgets_override.unwrap_or(spec.budgets)
    }

    fn new_slot(spec: JobSpec, index: usize) -> JobSlot {
        let derived = Self::derived_config(&spec, index);
        let key = ResultStore::key(&spec.domain, &derived);
        let domain = spec.domain.clone();
        JobSlot {
            spec,
            derived,
            key,
            index,
            domain,
            state: SlotState::Queued,
            cancel: CancelToken::new(),
            events: Vec::new(),
            events_done: false,
            donated: false,
            recovered: false,
            tenant: None,
        }
    }

    /// The scheduling weight of a tenant id (anonymous and unknown ids
    /// weigh 1).
    fn tenant_weight(&self, tenant: Option<&str>) -> u64 {
        self.tenants.map(|r| r.weight_of(tenant)).unwrap_or(1)
    }

    /// Append an indexed job (the batch path — no deduplication; a
    /// manifest may legitimately repeat specs at different positions).
    /// Returns the slot handle.
    pub fn submit(&self, spec: JobSpec, index: usize) -> Result<usize, QueueFull> {
        let mut state = self.state.lock().expect("queue state");
        if self.opts.capacity > 0 && state.sched.len() >= self.opts.capacity {
            self.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(QueueFull {
                depth: state.sched.len(),
                capacity: self.opts.capacity,
                tenant: None,
            });
        }
        let slot_idx = state.slots.len();
        let slot = Self::new_slot(spec, index);
        state.by_key.insert(slot.key, slot_idx);
        state.slots.push(slot);
        state.sched.push(None, 1, slot_idx);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.work_cv.notify_one();
        Ok(slot_idx)
    }

    /// The serving path: submit one spec (always at index 0 — a single
    /// HTTP submission has no manifest position), deduplicated against
    /// both in-memory jobs and the content-addressed store.
    ///
    /// Budget caveat: the content key excludes budgets, so an
    /// [`Disposition::InFlight`] join may pin the caller to an execution
    /// running under *different* budgets than it asked for — possibly
    /// observing a budget-stopped partial outcome (visibly marked
    /// `finish.natural == false`). That is the documented contract for
    /// budget-stopped work everywhere in this stack: resubmit, and the
    /// next execution resumes from the checkpoint under the new
    /// submission's budgets.
    pub fn submit_deduped(&self, spec: JobSpec) -> Result<Submitted, QueueFull> {
        self.submit_deduped_inner(spec, None, false)
    }

    /// [`JobQueue::submit_deduped`] with a tenant attribution: the job
    /// is scheduled in the tenant's weighted lane, counted against the
    /// tenant's quotas, and journaled with the attribution so recovery
    /// preserves fairness state. `None` is the anonymous tenant (open
    /// mode).
    pub fn submit_deduped_as(
        &self,
        spec: JobSpec,
        tenant: Option<&str>,
    ) -> Result<Submitted, QueueFull> {
        self.submit_deduped_inner(spec, tenant, false)
    }

    /// [`JobQueue::submit_deduped_as`] with the recovery stamp —
    /// `recovered` is true only for [`JobQueue::recover`]
    /// re-submissions (which bypass the submit-rate bucket: recovery is
    /// not a client burst).
    fn submit_deduped_inner(
        &self,
        spec: JobSpec,
        tenant: Option<&str>,
        recovered: bool,
    ) -> Result<Submitted, QueueFull> {
        let index = 0usize;
        let derived = Self::derived_config(&spec, index);
        let key = ResultStore::key(&spec.domain, &derived);
        let id = Self::format_id(key);
        let budgets = self.effective_budgets(&spec);

        // Fast path: answer from in-memory state alone — the hot route
        // for repeat queries, no disk touched.
        let mut state = self.state.lock().expect("queue state");
        if !recovered {
            if let Err(retry_secs) = self.rate_check_locked(&mut state, tenant) {
                let rejection = QueueFull {
                    depth: state.sched.len(),
                    capacity: self.opts.capacity,
                    tenant: self.tenant_context(&state, tenant, retry_secs),
                };
                self.note_rejected(&mut state, tenant);
                return Err(rejection);
            }
        }
        match Self::dedup_in_memory(&state, key) {
            Some(MemDedup::Answer(slot, disposition)) => {
                return Ok(self.noted(&mut state, tenant, slot, disposition, id, key))
            }
            Some(MemDedup::Resume) => {
                return self.enqueue_locked(
                    state,
                    spec,
                    tenant,
                    index,
                    Disposition::Resumed,
                    recovered,
                )
            }
            None => {}
        }

        // Miss: consult the store (unlimited budgets only — partial
        // results never alias the canonical entry) to answer inline
        // without occupying a worker. The read happens with the lock
        // RELEASED — disk I/O under the queue mutex would stall every
        // event sink and poller — then the in-memory state is
        // re-checked: a racing submitter of the same key wins, and the
        // race only cost this thread a wasted read.
        drop(state);
        let cached = match (budgets.is_unlimited(), self.store) {
            (true, Some(store)) => store.lookup(&spec.domain, &derived),
            _ => None,
        };
        let mut state = self.state.lock().expect("queue state");
        match Self::dedup_in_memory(&state, key) {
            Some(MemDedup::Answer(slot, disposition)) => {
                return Ok(self.noted(&mut state, tenant, slot, disposition, id, key))
            }
            Some(MemDedup::Resume) => {
                return self.enqueue_locked(
                    state,
                    spec,
                    tenant,
                    index,
                    Disposition::Resumed,
                    recovered,
                )
            }
            None => {}
        }

        if let Some(result) = cached {
            let slot_idx = state.slots.len();
            let mut slot = Self::new_slot(spec, index);
            slot.recovered = recovered;
            slot.tenant = tenant.map(|t| t.to_string());
            slot.state = SlotState::Done(Box::new(JobOutcome {
                index,
                domain: slot.domain.clone(),
                derived_seed: slot.derived.seed,
                cache_hit: true,
                wall_time_ms: 0,
                solver: Default::default(),
                result: Some(result),
                error: None,
                finish: None,
            }));
            slot.events_done = true;
            state.by_key.insert(key, slot_idx);
            state.slots.push(slot);
            self.submitted.fetch_add(1, Ordering::Relaxed);
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(id) = tenant {
                let stats = state.tenant_stats.entry(id.to_string()).or_default();
                stats.submitted += 1;
                stats.completed += 1;
            }
            self.mark_done_locked(&mut state, slot_idx);
            drop(state);
            self.event_cv.notify_all();
            return Ok(Submitted {
                id,
                key,
                slot: slot_idx,
                disposition: Disposition::CacheHit,
            });
        }

        self.enqueue_locked(state, spec, tenant, index, Disposition::Enqueued, recovered)
    }

    /// Take one submit-rate token for the tenant (if it has a rate
    /// quota); `Err` carries the whole seconds until a token refills.
    fn rate_check_locked(&self, state: &mut QueueState, tenant: Option<&str>) -> Result<(), u64> {
        let (Some(registry), Some(id)) = (self.tenants, tenant) else {
            return Ok(());
        };
        let Some((rate, burst)) = registry.quota_of(Some(id)).rate else {
            return Ok(());
        };
        let now = std::time::Instant::now();
        let stats = state.tenant_stats.entry(id.to_string()).or_default();
        let bucket = stats
            .bucket
            .get_or_insert_with(|| TokenBucket::new(rate, burst, now));
        bucket.try_take(now)
    }

    /// Tenant-scoped rejection context for a submission from `tenant`
    /// (`None` for anonymous ones).
    fn tenant_context(
        &self,
        state: &QueueState,
        tenant: Option<&str>,
        retry_secs: u64,
    ) -> Option<TenantRejection> {
        let id = tenant?;
        let weight = self.tenant_weight(Some(id));
        Some(TenantRejection {
            tenant: id.to_string(),
            backlog: state.sched.lane_depth(Some(id)),
            weight,
            active_weight: state.sched.active_weight().max(weight),
            retry_secs,
        })
    }

    /// Count one rejection, globally and against the tenant.
    fn note_rejected(&self, state: &mut QueueState, tenant: Option<&str>) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = tenant {
            state
                .tenant_stats
                .entry(id.to_string())
                .or_default()
                .rejected += 1;
        }
    }

    /// Classify what the in-memory state can do for a submission of
    /// `key` (see [`MemDedup`]). Pure read; counters are the caller's.
    fn dedup_in_memory(state: &QueueState, key: u64) -> Option<MemDedup> {
        let &slot_idx = state.by_key.get(&key)?;
        match &state.slots[slot_idx].state {
            SlotState::Queued | SlotState::Running => {
                Some(MemDedup::Answer(slot_idx, Disposition::InFlight))
            }
            SlotState::Done(outcome) => {
                let stopped_early =
                    outcome.finish.as_ref().is_some_and(|f| !f.natural) && outcome.error.is_none();
                if stopped_early {
                    // Cancelled or budget-stopped: a new execution can
                    // resume the checkpoint.
                    Some(MemDedup::Resume)
                } else {
                    // Natural completion, cache hit, or terminal error:
                    // the outcome stands; serve it.
                    Some(MemDedup::Answer(slot_idx, Disposition::CacheHit))
                }
            }
            // An evicted slot no longer answers for its key (the map
            // should not point here, but a racing evict may have just
            // cleared it).
            SlotState::Evicted => None,
        }
    }

    /// Count and package an in-memory dedup answer.
    fn noted(
        &self,
        state: &mut QueueState,
        tenant: Option<&str>,
        slot: usize,
        disposition: Disposition,
        id: String,
        key: u64,
    ) -> Submitted {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        if disposition == Disposition::CacheHit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(tid) = tenant {
            state
                .tenant_stats
                .entry(tid.to_string())
                .or_default()
                .submitted += 1;
        }
        Submitted {
            id,
            key,
            slot,
            disposition,
        }
    }

    fn enqueue_locked(
        &self,
        mut state: std::sync::MutexGuard<'_, QueueState>,
        spec: JobSpec,
        tenant: Option<&str>,
        index: usize,
        disposition: Disposition,
        recovered: bool,
    ) -> Result<Submitted, QueueFull> {
        // Tenant in-flight cap first (the tenant-scoped answer beats
        // the global one), then global capacity — which still carries
        // the tenant context so the admission layer can scope its
        // `Retry-After` to the tenant's own backlog and drain share.
        if let Some(registry) = self.tenants {
            if let Some(cap) = registry.quota_of(tenant).max_in_flight {
                let id = tenant.expect("quota implies a tenant id");
                let in_flight = state.sched.lane_depth(tenant)
                    + state.tenant_stats.get(id).map_or(0, |s| s.running);
                if in_flight >= cap {
                    let rejection = QueueFull {
                        depth: state.sched.len(),
                        capacity: self.opts.capacity,
                        tenant: self.tenant_context(&state, tenant, 0),
                    };
                    self.note_rejected(&mut state, tenant);
                    return Err(rejection);
                }
            }
        }
        if self.opts.capacity > 0 && state.sched.len() >= self.opts.capacity {
            let rejection = QueueFull {
                depth: state.sched.len(),
                capacity: self.opts.capacity,
                tenant: self.tenant_context(&state, tenant, 0),
            };
            self.note_rejected(&mut state, tenant);
            return Err(rejection);
        }
        let slot_idx = state.slots.len();
        let mut slot = Self::new_slot(spec, index);
        slot.recovered = recovered;
        slot.tenant = tenant.map(|t| t.to_string());
        let (id, key) = (Self::format_id(slot.key), slot.key);
        // Write-ahead: the accept is durable *before* the job becomes
        // visible to workers (we hold the state lock, so no worker can
        // start it — or journal a `started` — until the accept record
        // has hit the disk). Crash before this line: the client never
        // got its receipt, so nothing was promised. Crash after: the
        // journal re-enqueues the job on restart, tenant attribution
        // included.
        if index == 0 {
            if let Some(journal) = self.journal {
                journal.record_accepted(key, &slot.spec, tenant);
            }
        }
        state.by_key.insert(key, slot_idx);
        state.slots.push(slot);
        let weight = self.tenant_weight(tenant);
        state.sched.push(tenant, weight, slot_idx);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(tid) = tenant {
            state
                .tenant_stats
                .entry(tid.to_string())
                .or_default()
                .submitted += 1;
        }
        drop(state);
        self.work_cv.notify_one();
        Ok(Submitted {
            id,
            key,
            slot: slot_idx,
            disposition,
        })
    }

    /// Record a completion for eviction accounting and, under
    /// [`QueueOptions::retain_done`] pressure, tombstone the oldest
    /// completed slots: release their outcome + event log and drop them
    /// from the key index. Call with the slot already `Done`.
    fn mark_done_locked(&self, state: &mut QueueState, slot_idx: usize) {
        state.done_order.push_back(slot_idx);
        if self.opts.retain_done == 0 {
            return;
        }
        while state.done_order.len() > self.opts.retain_done {
            let oldest = state.done_order.pop_front().expect("non-empty done queue");
            let key = state.slots[oldest].key;
            let slot = &mut state.slots[oldest];
            slot.state = SlotState::Evicted;
            slot.events = Vec::new();
            slot.events_done = true;
            if state.by_key.get(&key) == Some(&oldest) {
                state.by_key.remove(&key);
            }
        }
    }

    /// Complete a not-yet-running slot as cancelled (it never started, so
    /// there is no checkpoint) — shared by [`JobQueue::cancel`] and
    /// [`JobQueue::shutdown`]. Caller removes the slot from `pending`.
    fn complete_cancelled_locked(&self, state: &mut QueueState, slot_idx: usize) {
        let slot = &mut state.slots[slot_idx];
        let budgets = self.effective_budgets(&slot.spec);
        slot.state = SlotState::Done(Box::new(JobOutcome {
            index: slot.index,
            domain: slot.domain.clone(),
            derived_seed: slot.derived.seed,
            cache_hit: false,
            wall_time_ms: 0,
            solver: Default::default(),
            result: None,
            error: None,
            finish: Some(crate::executor::SessionFinish {
                reason: FinishReason::Cancelled,
                natural: false,
                resumed: false,
                events: 0,
                budgets,
            }),
        }));
        slot.events_done = true;
        let (key, index) = (slot.key, slot.index);
        let tenant = slot.tenant.clone();
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(tid) = tenant {
            state.tenant_stats.entry(tid).or_default().completed += 1;
        }
        if index == 0 {
            if let Some(journal) = self.journal {
                journal.record_cancelled(key);
            }
        }
        self.mark_done_locked(state, slot_idx);
    }

    /// Resolve a job id to its newest slot handle.
    pub fn resolve(&self, key: u64) -> Option<usize> {
        self.state
            .lock()
            .expect("queue state")
            .by_key
            .get(&key)
            .copied()
    }

    /// Snapshot one job by key (its newest slot).
    pub fn poll(&self, key: u64) -> Option<JobView> {
        let state = self.state.lock().expect("queue state");
        let &slot_idx = state.by_key.get(&key)?;
        Some(Self::view_of(&state.slots[slot_idx]))
    }

    fn view_of(slot: &JobSlot) -> JobView {
        let (phase, outcome) = match &slot.state {
            SlotState::Queued => (JobPhase::Queued, None),
            SlotState::Running => (JobPhase::Running, None),
            SlotState::Done(o) => (JobPhase::Done, Some((**o).clone())),
            // Unreachable through `poll` (eviction drops the key index);
            // defensively reads as a completed job with nothing left.
            SlotState::Evicted => (JobPhase::Done, None),
        };
        JobView {
            id: Self::format_id(slot.key),
            key: slot.key,
            index: slot.index,
            domain: slot.domain.clone(),
            phase,
            outcome,
            events_logged: slot.events.len(),
            recovered: slot.recovered,
        }
    }

    /// Request cancellation of a job. A queued job is removed and
    /// completed as cancelled without running (no checkpoint — it never
    /// started); a running job's token fires and its session checkpoints
    /// at the next event boundary (resume mode with a store). Returns the
    /// phase the job was in, or `None` for unknown keys.
    pub fn cancel(&self, key: u64) -> Option<JobPhase> {
        let mut state = self.state.lock().expect("queue state");
        let &slot_idx = state.by_key.get(&key)?;
        let phase = match &state.slots[slot_idx].state {
            SlotState::Queued => {
                state.sched.remove(|i| i != slot_idx);
                self.complete_cancelled_locked(&mut state, slot_idx);
                JobPhase::Queued
            }
            SlotState::Running => {
                state.slots[slot_idx].cancel.cancel();
                JobPhase::Running
            }
            SlotState::Done(_) | SlotState::Evicted => JobPhase::Done,
        };
        drop(state);
        self.event_cv.notify_all();
        Some(phase)
    }

    /// Cheap phase probe by key — no outcome clone, unlike
    /// [`JobQueue::poll`] (the submit hot path only needs the word).
    pub fn phase(&self, key: u64) -> Option<JobPhase> {
        let state = self.state.lock().expect("queue state");
        let &slot_idx = state.by_key.get(&key)?;
        Some(match &state.slots[slot_idx].state {
            SlotState::Queued => JobPhase::Queued,
            SlotState::Running => JobPhase::Running,
            SlotState::Done(_) | SlotState::Evicted => JobPhase::Done,
        })
    }

    /// Tail a job's event lines from `from`, blocking up to `timeout`
    /// when nothing new is available yet. Use the slot handle from
    /// [`Submitted::slot`] / [`JobQueue::resolve`] so a stream stays
    /// pinned to one execution even if the key is resubmitted.
    ///
    /// Returns `None` for unknown handles **and for evicted slots**: an
    /// eviction racing a mid-replay subscriber must not let the stream
    /// end as if complete — the caller aborts without a clean terminator
    /// so the client sees truncation, not a well-formed partial log.
    pub fn wait_events(&self, slot: usize, from: usize, timeout: Duration) -> Option<EventsChunk> {
        let mut state = self.state.lock().expect("queue state");
        if slot >= state.slots.len() {
            return None;
        }
        if matches!(state.slots[slot].state, SlotState::Evicted) {
            return None;
        }
        if state.slots[slot].events.len() <= from && !state.slots[slot].events_done {
            let (guard, _timeout) = self
                .event_cv
                .wait_timeout(state, timeout)
                .expect("queue state");
            state = guard;
        }
        let s = &state.slots[slot];
        if matches!(s.state, SlotState::Evicted) {
            return None; // evicted while we waited
        }
        Some(EventsChunk {
            lines: s.events.get(from..).unwrap_or_default().to_vec(),
            done: s.events_done,
        })
    }

    /// Block until a slot's job completes (tests and synchronous
    /// clients). Returns the final view.
    pub fn wait_done(&self, slot: usize) -> Option<JobView> {
        let mut state = self.state.lock().expect("queue state");
        loop {
            if slot >= state.slots.len() {
                return None;
            }
            if matches!(state.slots[slot].state, SlotState::Done(_)) {
                return Some(Self::view_of(&state.slots[slot]));
            }
            state = self
                .event_cv
                .wait_timeout(state, Duration::from_millis(200))
                .expect("queue state")
                .0;
        }
    }

    /// Number of jobs waiting to run.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue state").sched.len()
    }

    /// Snapshot the waiting line in projected execution order (the DRR
    /// dispatch order if nothing else arrived — with a single anonymous
    /// lane, exactly the FIFO order this surface always showed).
    pub fn pending_jobs(&self) -> Vec<PendingJob> {
        let state = self.state.lock().expect("queue state");
        state
            .sched
            .projected_order()
            .into_iter()
            .map(|i| {
                let slot = &state.slots[i];
                PendingJob {
                    id: Self::format_id(slot.key),
                    domain: slot.domain.clone(),
                    donated: slot.donated,
                    tenant: slot.tenant.clone(),
                }
            })
            .collect()
    }

    /// Number of waiting jobs not yet offered to a peer — what an idle
    /// peer stands to gain by calling [`JobQueue::donate`].
    pub fn stealable(&self) -> usize {
        let state = self.state.lock().expect("queue state");
        state
            .sched
            .projected_order()
            .into_iter()
            .filter(|&i| !state.slots[i].donated && state.slots[i].index == 0)
            .count()
    }

    /// The work-stealing victim side: hand up to `max` waiting jobs to
    /// a peer. Each donated job is returned as its [`JobSpec`] (the
    /// thief resubmits it to its own queue — specs are content-keyed at
    /// index 0, so both sides derive the same id and the same store
    /// entry), marked so it is never offered twice, and rotated to the
    /// *back* of the local waiting line rather than removed: the local
    /// execution is the safety net. If the thief finishes first, this
    /// queue's eventual execution answers from the store (cache hit);
    /// if the thief dies, the job simply runs here — a steal can
    /// duplicate work, never lose it. Only deduplicated (index-0)
    /// submissions are donated: batch jobs are positional and would
    /// derive a different seed on the thief.
    pub fn donate(&self, max: usize) -> Vec<JobSpec> {
        if max == 0 {
            return Vec::new();
        }
        let mut state = self.state.lock().expect("queue state");
        let picked: Vec<usize> = state
            .sched
            .projected_order()
            .into_iter()
            .filter(|&i| !state.slots[i].donated && state.slots[i].index == 0)
            .take(max)
            .collect();
        if picked.is_empty() {
            return Vec::new();
        }
        let mut specs = Vec::with_capacity(picked.len());
        for &slot_idx in &picked {
            let slot = &mut state.slots[slot_idx];
            slot.donated = true;
            specs.push(slot.spec.clone());
        }
        // A donated job stays queued (the local safety net) but yields
        // to the rest of its own tenant's line — rotation never crosses
        // lanes, so one tenant's donations cannot reorder another's.
        for slot_idx in picked {
            state.sched.rotate_to_back(slot_idx);
        }
        self.donated
            .fetch_add(specs.len() as u64, Ordering::Relaxed);
        specs
    }

    /// Number of jobs currently executing.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            donated: self.donated.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant accounting snapshot, sorted by tenant id. Registered
    /// tenants always appear (zeroed if idle); tenants only observed via
    /// forwarded attribution (e.g. recovered journals) appear once they
    /// have any recorded activity. The anonymous lane is excluded — its
    /// traffic is the open-mode aggregate already covered by `counters`.
    pub fn tenant_counters(&self) -> Vec<TenantCounters> {
        let state = self.state.lock().expect("queue state");
        let mut merged: BTreeMap<String, TenantCounters> = BTreeMap::new();
        if let Some(registry) = self.tenants {
            for tenant in registry.tenants() {
                merged.insert(
                    tenant.id.clone(),
                    TenantCounters {
                        tenant: tenant.id.clone(),
                        weight: tenant.weight,
                        ..TenantCounters::default()
                    },
                );
            }
        }
        for (id, stats) in &state.tenant_stats {
            let entry = merged.entry(id.clone()).or_insert_with(|| TenantCounters {
                tenant: id.clone(),
                weight: 1,
                ..TenantCounters::default()
            });
            entry.running = stats.running;
            entry.submitted = stats.submitted;
            entry.completed = stats.completed;
            entry.rejected = stats.rejected;
        }
        for (tenant, weight, depth) in state.sched.lanes() {
            if let Some(id) = tenant {
                let entry = merged.entry(id.clone()).or_insert_with(|| TenantCounters {
                    tenant: id,
                    weight,
                    ..TenantCounters::default()
                });
                entry.pending = depth;
            }
        }
        merged.into_values().collect()
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting work (serve workers exit once
    /// idle), cancel every queued job, and fire every running job's
    /// token — sessions checkpoint at their next event boundary and emit
    /// their terminal event, so subscribers' streams end cleanly.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        let mut state = self.state.lock().expect("queue state");
        let waiting: Vec<usize> = state.sched.drain();
        for slot_idx in waiting {
            self.complete_cancelled_locked(&mut state, slot_idx);
        }
        for slot in &state.slots {
            if matches!(slot.state, SlotState::Running) {
                slot.cancel.cancel();
            }
        }
        drop(state);
        self.work_cv.notify_all();
        self.event_cv.notify_all();
    }

    /// Release the next job under the scheduler and mark it running.
    /// The DRR state lives entirely under the mutex, so the dispatch
    /// sequence is identical however many workers call this.
    fn take_next_locked(&self, state: &mut QueueState) -> Option<usize> {
        let slot_idx = state.sched.pop()?;
        state.slots[slot_idx].state = SlotState::Running;
        if let Some(tid) = state.slots[slot_idx].tenant.clone() {
            state.tenant_stats.entry(tid).or_default().running += 1;
        }
        Some(slot_idx)
    }

    /// Batch worker: run jobs until the queue is empty, then return.
    pub fn drain_worker(&self) {
        loop {
            let slot_idx = {
                let mut state = self.state.lock().expect("queue state");
                match self.take_next_locked(&mut state) {
                    Some(i) => i,
                    None => return,
                }
            };
            self.execute(slot_idx);
        }
    }

    /// Server worker: block for work until [`JobQueue::shutdown`], then
    /// return once the queue is drained. With [`QueueOptions::pace_ms`],
    /// each freshly executed (non-cache-hit) job occupies the worker for
    /// at least that long — per-worker rate limiting.
    pub fn serve_worker(&self) {
        loop {
            let slot_idx = {
                let mut state = self.state.lock().expect("queue state");
                loop {
                    if let Some(i) = self.take_next_locked(&mut state) {
                        break i;
                    }
                    if self.is_shutting_down() {
                        return;
                    }
                    state = self
                        .work_cv
                        .wait_timeout(state, Duration::from_millis(100))
                        .expect("queue state")
                        .0;
                }
            };
            let started = std::time::Instant::now();
            let cache_hit = self.execute(slot_idx);
            if self.opts.pace_ms > 0 && !cache_hit && !self.is_shutting_down() {
                let floor = Duration::from_millis(self.opts.pace_ms);
                if let Some(rest) = floor.checked_sub(started.elapsed()) {
                    std::thread::sleep(rest);
                }
            }
        }
    }

    /// Run one slot to completion. Returns whether the outcome was a
    /// cache hit (pacing exempts those — they cost no compute).
    fn execute(&self, slot_idx: usize) -> bool {
        self.active.fetch_add(1, Ordering::Relaxed);
        let (spec, index, key, domain, cancel) = {
            let state = self.state.lock().expect("queue state");
            let slot = &state.slots[slot_idx];
            (
                slot.spec.clone(),
                slot.index,
                slot.key,
                slot.domain.clone(),
                slot.cancel.clone(),
            )
        };
        // Journal the dispatch: a crash mid-run replays as live and the
        // restarted execution resumes from the session checkpoint.
        if index == 0 {
            if let Some(journal) = self.journal {
                journal.record_started(key);
            }
        }
        let record = self.opts.record_events;
        let sink = |idx: usize, event: &SessionEvent| {
            if record {
                let line = watch_line(idx, &domain, event);
                let mut state = self.state.lock().expect("queue state");
                state.slots[slot_idx].events.push(line);
                drop(state);
                self.event_cv.notify_all();
            }
            if let Some(outer) = self.sink {
                outer(idx, event);
            }
        };
        let opts = RunOptions {
            budgets_override: self.opts.budgets_override,
            resume: self.opts.resume,
            sink: Some(&sink),
            origin: self.origin.as_deref(),
        };
        // A panicking job must not take a long-lived worker down with it
        // (the slot would stay Running forever and every poller and
        // event subscriber would hang). Catch the unwind and convert it
        // to an error outcome; the batch runner still exits nonzero on
        // any error outcome, so CI stays loud.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(self.registry, &spec, index, self.store, opts, cancel)
        }))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked with a non-string payload".to_string());
            JobOutcome {
                index,
                domain: spec.domain.clone(),
                derived_seed: derive_seed(spec.seed, index as u64),
                cache_hit: false,
                wall_time_ms: 0,
                solver: Default::default(),
                result: None,
                error: Some(xplain_core::session::SessionError::Internal { message }),
                finish: None,
            }
        });

        let cache_hit = outcome.cache_hit;
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        let was_cancelled = outcome
            .finish
            .as_ref()
            .is_some_and(|f| f.reason == FinishReason::Cancelled);
        if was_cancelled {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        // Journal the terminal transition before publishing the outcome.
        // (Crash in the gap either way is safe: the job replays as live,
        // re-runs, and lands on the committed store entry — a cache hit
        // with byte-identical results.) Budget-stopped partials journal
        // as done too: the outcome was delivered; only an explicit
        // resubmit resumes them.
        if index == 0 {
            if let Some(journal) = self.journal {
                if was_cancelled {
                    journal.record_cancelled(key);
                } else {
                    journal.record_done(key);
                }
            }
        }

        let mut state = self.state.lock().expect("queue state");
        let slot = &mut state.slots[slot_idx];
        slot.state = SlotState::Done(Box::new(outcome));
        slot.events_done = true;
        if let Some(tid) = slot.tenant.clone() {
            let stats = state.tenant_stats.entry(tid).or_default();
            stats.running = stats.running.saturating_sub(1);
            stats.completed += 1;
        }
        self.mark_done_locked(&mut state, slot_idx);
        drop(state);
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.event_cv.notify_all();
        cache_hit
    }

    /// Consume the queue, returning every outcome in submission order.
    ///
    /// # Panics
    /// If any job has not completed, or was evicted — the batch path
    /// only calls this after its workers drained, and batch queues run
    /// with `retain_done: 0` (never evict).
    pub fn into_outcomes(self) -> Vec<JobOutcome> {
        let state = self.state.into_inner().expect("queue state");
        state
            .slots
            .into_iter()
            .map(|slot| match slot.state {
                SlotState::Done(outcome) => *outcome,
                _ => panic!("into_outcomes called with unfinished or evicted jobs"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_core::session::SessionError;

    fn spec(domain: &str, seed: u64) -> JobSpec {
        JobSpec {
            domain: domain.into(),
            config: PipelineConfig::default(),
            seed,
            budgets: SessionBudgets::unlimited(),
        }
    }

    #[test]
    fn ids_roundtrip() {
        let key = JobQueue::job_key(&spec("dp", 7), 0);
        let id = JobQueue::format_id(key);
        assert_eq!(id.len(), 16);
        assert_eq!(JobQueue::parse_id(&id), Some(key));
        assert_eq!(JobQueue::parse_id("nope"), None);
        assert_eq!(JobQueue::parse_id("zz00000000000000"), None);
    }

    #[test]
    fn capacity_rejects_with_queue_full() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(
            &registry,
            None,
            QueueOptions {
                capacity: 1,
                ..Default::default()
            },
            None,
        );
        queue.submit_deduped(spec("dp", 1)).unwrap();
        let err = queue.submit_deduped(spec("dp", 2)).unwrap_err();
        assert_eq!(err.capacity, 1);
        assert_eq!(err.depth, 1);
        assert_eq!(queue.counters().rejected_full, 1);
        // Identical spec still joins in-flight work even at capacity.
        let joined = queue.submit_deduped(spec("dp", 1)).unwrap();
        assert_eq!(joined.disposition, Disposition::InFlight);
    }

    #[test]
    fn unknown_domain_runs_to_error_outcome_and_dedups_as_done() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(
            &registry,
            None,
            QueueOptions {
                record_events: true,
                ..Default::default()
            },
            None,
        );
        let sub = queue.submit_deduped(spec("no-such", 1)).unwrap();
        assert_eq!(sub.disposition, Disposition::Enqueued);
        queue.drain_worker();
        let view = queue.poll(sub.key).unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        let outcome = view.outcome.unwrap();
        assert_eq!(
            outcome.error,
            Some(SessionError::UnknownDomain {
                id: "no-such".into()
            })
        );
        // Resubmitting a terminally failed job serves the failure, it
        // does not re-run it.
        let again = queue.submit_deduped(spec("no-such", 1)).unwrap();
        assert_eq!(again.disposition, Disposition::CacheHit);
        assert_eq!(again.slot, sub.slot);
        // Its (empty) event stream reads as complete.
        let chunk = queue
            .wait_events(sub.slot, 0, Duration::from_millis(10))
            .unwrap();
        assert!(chunk.done);
    }

    #[test]
    fn cancel_of_queued_job_completes_without_running() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let sub = queue.submit_deduped(spec("dp", 9)).unwrap();
        // No worker running: the job sits queued; cancel it.
        assert_eq!(queue.cancel(sub.key), Some(JobPhase::Queued));
        let view = queue.poll(sub.key).unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        let finish = view.outcome.unwrap().finish.unwrap();
        assert_eq!(finish.reason, FinishReason::Cancelled);
        assert!(!finish.natural);
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.counters().cancelled, 1);
        // Unknown keys answer None.
        assert_eq!(queue.cancel(0xdead), None);
    }

    #[test]
    fn retain_done_evicts_oldest_completions() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(
            &registry,
            None,
            QueueOptions {
                record_events: true,
                retain_done: 1,
                ..Default::default()
            },
            None,
        );
        // Error outcomes complete instantly — cheap Done slots.
        let a = queue.submit_deduped(spec("no-such", 1)).unwrap();
        queue.drain_worker();
        let b = queue.submit_deduped(spec("no-such", 2)).unwrap();
        queue.drain_worker();
        // Only the newest completion is retained; the oldest is
        // tombstoned and its id no longer resolves.
        assert!(queue.poll(a.key).is_none(), "evicted job must not resolve");
        assert!(queue.poll(b.key).is_some());
        assert!(queue.resolve(a.key).is_none());
        // An evicted slot refuses event reads entirely (None): a
        // subscriber caught mid-replay must see truncation, never a
        // "complete" stream missing its tail.
        assert!(queue
            .wait_events(a.slot, 0, Duration::from_millis(10))
            .is_none());
        // Resubmitting the evicted spec schedules a fresh execution.
        let again = queue.submit_deduped(spec("no-such", 1)).unwrap();
        assert_eq!(again.disposition, Disposition::Enqueued);
    }

    #[test]
    fn donate_offers_each_pending_job_once_and_keeps_it_queued() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let a = queue.submit_deduped(spec("dp", 1)).unwrap();
        let b = queue.submit_deduped(spec("ff", 2)).unwrap();
        assert_eq!(queue.stealable(), 2);
        let stolen = queue.donate(1);
        assert_eq!(stolen.len(), 1);
        assert_eq!(stolen[0].domain, "dp");
        // The donated job stays queued (the local safety net) but is
        // never offered twice, and rotates to the back of the line.
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.stealable(), 1);
        let pending = queue.pending_jobs();
        assert_eq!(pending[0].id, JobQueue::format_id(b.key));
        assert!(!pending[0].donated);
        assert_eq!(pending[1].id, JobQueue::format_id(a.key));
        assert!(pending[1].donated);
        // A thief submitting the donated spec derives the same id.
        assert_eq!(JobQueue::job_key(&stolen[0], 0), a.key);
        let rest = queue.donate(10);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].domain, "ff");
        assert!(queue.donate(10).is_empty());
        assert_eq!(queue.counters().donated, 2);
        assert_eq!(queue.donate(0).len(), 0);
        // Batch (positional) jobs are never donated: the thief would
        // derive a different seed at index 0.
        queue.submit(spec("sched", 3), 5).unwrap();
        assert_eq!(queue.stealable(), 0);
        assert!(queue.donate(10).is_empty());
    }

    /// The satellite gate for `retain_done`: eviction of the oldest
    /// completions must stay consistent while submitters, pollers, and
    /// event subscribers hammer the queue concurrently with the workers
    /// draining it.
    #[test]
    fn retain_done_eviction_survives_concurrent_hammering() {
        use std::sync::atomic::AtomicUsize;

        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 40;
        const RETAIN: usize = 4;

        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(
            &registry,
            None,
            QueueOptions {
                record_events: true,
                retain_done: RETAIN,
                ..Default::default()
            },
            None,
        );
        let keys = Mutex::new(Vec::<u64>::new());
        let done_seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| queue.serve_worker());
            }
            let mut hammers = Vec::new();
            for t in 0..THREADS {
                let (queue, keys, done_seen) = (&queue, &keys, &done_seen);
                hammers.push(scope.spawn(move || {
                    // Unknown-domain specs complete instantly with an
                    // error outcome — cheap Done slots, maximum
                    // eviction churn.
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let sub = queue.submit_deduped(spec("no-such", t * 1000 + i)).unwrap();
                        mine.push(sub);
                        // Re-poll everything this thread submitted while
                        // evictions race: every answer must be a clean
                        // miss or a coherent view, never a panic.
                        for prev in &mine {
                            match queue.poll(prev.key) {
                                None => {} // evicted
                                Some(view) if view.phase == JobPhase::Done => {
                                    done_seen.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(_) => {}
                            }
                            // Event reads on evicted slots answer None
                            // (truncation), never a bogus "complete".
                            if let Some(chunk) =
                                queue.wait_events(prev.slot, 0, Duration::from_millis(1))
                            {
                                assert!(chunk.lines.len() <= 64);
                            }
                        }
                    }
                    let mut keys = keys.lock().unwrap();
                    keys.extend(mine.iter().map(|s| s.key));
                }));
            }
            for h in hammers {
                h.join().unwrap();
            }
            queue.shutdown();
        });

        let keys = keys.into_inner().unwrap();
        assert_eq!(keys.len(), (THREADS * PER_THREAD) as usize);
        let counters = queue.counters();
        assert_eq!(counters.submitted, THREADS * PER_THREAD);
        // Every submission either ran to an error outcome or was
        // cancelled by shutdown — nothing lost, nothing double-counted.
        assert_eq!(counters.completed, THREADS * PER_THREAD);
        assert!(done_seen.load(Ordering::Relaxed) > 0, "pollers saw work");
        // Eviction kept its bound: at most `retain_done` completions
        // still resolve, the rest answer like unknown jobs.
        let resolvable = keys.iter().filter(|&&k| queue.poll(k).is_some()).count();
        assert!(
            resolvable <= RETAIN,
            "{resolvable} completions retained, expected <= {RETAIN}"
        );
        for key in keys {
            if let Some(view) = queue.poll(key) {
                assert_eq!(view.phase, JobPhase::Done);
                assert!(view.outcome.is_some());
            }
        }
    }

    #[test]
    fn panicking_job_becomes_an_error_outcome_not_a_dead_worker() {
        use xplain_analyzer::oracle::GapOracle;
        use xplain_core::explainer::DslMapper;
        use xplain_core::generalizer::Observation;

        struct BoomDomain;
        impl crate::domain::Domain for BoomDomain {
            fn id(&self) -> &str {
                "boom"
            }
            fn description(&self) -> String {
                "panics on purpose".into()
            }
            fn oracle(&self) -> Box<dyn GapOracle> {
                panic!("kaboom: oracle construction failed")
            }
            fn mapper(&self) -> Option<Box<dyn DslMapper>> {
                None
            }
            fn seeds(&self) -> Vec<Vec<f64>> {
                Vec::new()
            }
            fn instance_family(&self, _seed: u64) -> Vec<Observation> {
                Vec::new()
            }
        }

        let mut registry = DomainRegistry::empty();
        registry.register(Box::new(BoomDomain));
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let sub = queue.submit_deduped(spec("boom", 1)).unwrap();
        // The worker survives the panic…
        queue.drain_worker();
        let view = queue.poll(sub.key).unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        let error = view.outcome.unwrap().error.expect("panic becomes error");
        let SessionError::Internal { message } = &error else {
            panic!("expected Internal, got {error:?}");
        };
        assert!(message.contains("kaboom"), "{message}");
        assert_eq!(queue.active(), 0, "active gauge must not leak");
        // …and keeps working afterwards.
        let ok = queue.submit_deduped(spec("boom", 2)).unwrap();
        queue.drain_worker();
        assert_eq!(queue.poll(ok.key).unwrap().phase, JobPhase::Done);
    }

    fn journal_scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xplain-queue-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The tentpole contract, in-process: a queue that dies with
    /// accepted-but-unfinished jobs hands them to its successor through
    /// the journal, in original acceptance order.
    #[test]
    fn journal_recovers_accepted_jobs_in_order_across_queue_lifetimes() {
        let dir = journal_scratch("recover");
        let registry = DomainRegistry::builtin();

        // First life: accept three jobs, run none ("crash" with a full
        // waiting line — dropping the queue loses all in-memory state).
        let keys: Vec<u64> = {
            let journal = JobJournal::open(&dir).unwrap();
            let queue = JobQueue::new(&registry, None, QueueOptions::default(), None)
                .with_journal(Some(&journal));
            assert_eq!(queue.recover(), 0, "fresh journal recovers nothing");
            [1u64, 2, 3]
                .iter()
                .map(|&s| queue.submit_deduped(spec("no-such", s)).unwrap().key)
                .collect()
        };

        // Second life over the same journal dir.
        let journal = JobJournal::open(&dir).unwrap();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None)
            .with_journal(Some(&journal));
        let recovered = queue.recover();
        assert_eq!(recovered, 3, "every accepted job comes back");
        assert_eq!(queue.counters().recovered, 3);
        // Original order is preserved in the waiting line.
        let pending = queue.pending_jobs();
        let ids: Vec<String> = keys.iter().map(|&k| JobQueue::format_id(k)).collect();
        assert_eq!(
            pending.iter().map(|p| p.id.clone()).collect::<Vec<_>>(),
            ids
        );
        queue.drain_worker();
        for &key in &keys {
            let view = queue.poll(key).unwrap();
            assert_eq!(view.phase, JobPhase::Done);
            assert!(view.recovered, "recovered executions carry the stamp");
        }
        // All terminal now: a third life recovers nothing and the
        // journal's live set is empty.
        assert_eq!(journal.stats().live_jobs, 0);
        let journal3 = JobJournal::open(&dir).unwrap();
        assert!(journal3.take_recovered().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_treats_done_and_cancelled_jobs_as_terminal() {
        let dir = journal_scratch("terminal");
        let registry = DomainRegistry::builtin();
        {
            let journal = JobJournal::open(&dir).unwrap();
            let queue = JobQueue::new(&registry, None, QueueOptions::default(), None)
                .with_journal(Some(&journal));
            // One job runs to its (error) outcome…
            let done = queue.submit_deduped(spec("no-such", 1)).unwrap();
            queue.drain_worker();
            assert_eq!(queue.poll(done.key).unwrap().phase, JobPhase::Done);
            // …one is cancelled while queued…
            let gone = queue.submit_deduped(spec("no-such", 2)).unwrap();
            assert_eq!(queue.cancel(gone.key), Some(JobPhase::Queued));
            // …and shutdown cancels the rest.
            queue.submit_deduped(spec("no-such", 3)).unwrap();
            queue.shutdown();
        }
        let journal = JobJournal::open(&dir).unwrap();
        assert!(
            journal.take_recovered().is_empty(),
            "terminal jobs must not replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Batch (positional) submissions never touch the journal — a
    /// manifest is its own durable record, and positional seeds would
    /// not survive an index-0 re-enqueue anyway.
    #[test]
    fn journal_ignores_batch_submissions() {
        let dir = journal_scratch("batch");
        let registry = DomainRegistry::builtin();
        {
            let journal = JobJournal::open(&dir).unwrap();
            let queue = JobQueue::new(&registry, None, QueueOptions::default(), None)
                .with_journal(Some(&journal));
            queue.submit(spec("no-such", 1), 5).unwrap();
            assert_eq!(journal.stats().live_jobs, 0);
        }
        let journal = JobJournal::open(&dir).unwrap();
        assert!(journal.take_recovered().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The satellite pin for `retain_done` vs a live tail: a subscriber
    /// mid-tail when its job is evicted must observe termination (the
    /// `None` truncation answer) promptly — never hang, never a
    /// "complete" stream missing its tail.
    #[test]
    fn evicted_job_terminates_event_tails_promptly() {
        use std::sync::atomic::AtomicBool;

        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(
            &registry,
            None,
            QueueOptions {
                record_events: true,
                retain_done: 1,
                ..Default::default()
            },
            None,
        );
        let a = queue.submit_deduped(spec("no-such", 1)).unwrap();
        queue.drain_worker();
        let evicted_seen = AtomicBool::new(false);
        let clean_done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let tail = scope.spawn(|| {
                // The exact loop the HTTP events handler runs: tail from
                // the current offset with a bounded wait per round.
                let mut from = 0usize;
                loop {
                    match queue.wait_events(a.slot, from, Duration::from_millis(250)) {
                        None => {
                            evicted_seen.store(true, Ordering::Relaxed);
                            return; // truncation: abort the stream
                        }
                        Some(chunk) => {
                            from += chunk.lines.len();
                            if chunk.done {
                                clean_done.store(true, Ordering::Relaxed);
                                return; // clean terminator
                            }
                        }
                    }
                }
            });
            // Evict `a` by completing a second job under retain_done: 1.
            queue.submit_deduped(spec("no-such", 2)).unwrap();
            queue.drain_worker();
            // The tail must terminate on its own, promptly. (A done
            // stream read *before* the eviction landed is equally
            // correct — the job completed; the race decides which.)
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !tail.is_finished() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "event tail hung after eviction"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            tail.join().unwrap();
        });
        assert!(
            evicted_seen.load(Ordering::Relaxed) || clean_done.load(Ordering::Relaxed),
            "tail ended without observing truncation or completion"
        );
    }

    #[test]
    fn shutdown_cancels_queued_work() {
        let registry = DomainRegistry::builtin();
        let queue = JobQueue::new(&registry, None, QueueOptions::default(), None);
        let a = queue.submit_deduped(spec("dp", 1)).unwrap();
        let b = queue.submit_deduped(spec("ff", 2)).unwrap();
        queue.shutdown();
        assert!(queue.is_shutting_down());
        for sub in [a, b] {
            let view = queue.poll(sub.key).unwrap();
            assert_eq!(view.phase, JobPhase::Done);
            assert_eq!(
                view.outcome.unwrap().finish.unwrap().reason,
                FinishReason::Cancelled
            );
        }
        // A serve worker started after shutdown returns immediately.
        queue.serve_worker();
    }
}
