//! The adversarial **regression bank**: a content-addressed, append-only
//! corpus of concrete inputs on which a heuristic has been caught
//! underperforming.
//!
//! Every analysis session that finishes naturally writes its significant
//! findings' witnesses through to the bank (see the executor), so each
//! production run permanently hardens the corpus — the ROADMAP's "close
//! the loop" item. The bank is then consumed three ways:
//!
//! * **Replay gate** — `runner bank replay` (and the CI `bank-replay`
//!   step) recomputes every entry's gap with the current oracle and
//!   fails if an instance stopped exhibiting its recorded gap: either
//!   the heuristic changed behavior or the oracle regressed.
//! * **Tuner corpus** — `xplain-tune` scores candidate heuristic
//!   parameters by their worst-case gap over the bank (plus fresh
//!   probes), so repairs are judged against every adversarial instance
//!   ever discovered, not just the current session's.
//! * **Serving** — `GET /v1/regressions` pages through the bank, and
//!   `/v1/metrics` gauges its size and last replay verdict.
//!
//! Storage is one JSON file per record under `<store>/bank/`, named by
//! the FNV-1a64 of `domain + NUL + canonical instance JSON` — the same
//! content-addressing discipline as the result store, with the same
//! durable publish (temp → fsync → rename → fsync dir) and the same
//! degrade-to-recompute philosophy: unreadable entries are skipped, a
//! sweep ([`RegressionBank::sweep`]) drops entries no current code can
//! interpret.

use crate::store::{fnv1a64, fnv1a64_continue, publish_durable};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use xplain_core::pipeline::SubspaceFinding;

/// Version stamp of the serialized [`BankRecord`] layout. Entries bearing
/// any other version are skipped by readers and dropped by
/// [`RegressionBank::sweep`].
pub const BANK_SCHEMA_VERSION: u32 = 1;

/// One banked adversarial instance: the concrete input, the gap it
/// exhibited at discovery time, the full originating finding, and enough
/// provenance to trace it back to the job that found it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankRecord {
    /// [`BANK_SCHEMA_VERSION`] at write time (`#[serde(default)]` reads
    /// pre-stamp JSON as 0, which every consumer treats as unknown).
    #[serde(default)]
    pub schema_version: u32,
    /// Owning domain id (a `DomainRegistry` key).
    pub domain: String,
    /// The adversarial input itself — the content-addressed identity of
    /// this record together with `domain`.
    pub instance: Vec<f64>,
    /// Gap observed at discovery time (what replay re-checks).
    pub gap: f64,
    /// The originating finding: subspace, significance, explanation.
    pub finding: SubspaceFinding,
    /// Provenance: the content key of the job whose session found this
    /// (`{:016x}` of the store key), and that session's seed.
    pub job_key: String,
    pub session_seed: u64,
}

impl BankRecord {
    /// Build a record from a significant finding, if it carries a
    /// replayable witness with a positive gap (a zero-gap witness is not
    /// adversarial and would only dilute the corpus).
    pub fn from_finding(
        domain: &str,
        finding: &SubspaceFinding,
        job_key: &str,
        session_seed: u64,
    ) -> Option<BankRecord> {
        let witness = finding.witness.as_ref()?;
        if !witness.gap.is_finite() || witness.gap <= 0.0 {
            return None;
        }
        Some(BankRecord {
            schema_version: BANK_SCHEMA_VERSION,
            domain: domain.to_string(),
            instance: witness.input.clone(),
            gap: witness.gap,
            finding: finding.clone(),
            job_key: job_key.to_string(),
            session_seed,
        })
    }
}

/// What a bank sweep removed (merged into the gc report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankSweep {
    pub entries_removed: usize,
    pub bytes_reclaimed: u64,
}

/// Size gauges for `/v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BankInfo {
    pub entries: usize,
    pub bytes: u64,
    /// Verdict of the most recent `bank replay` on this store, if any.
    pub last_replay_pass: Option<bool>,
}

/// Marker the replay gate leaves behind (`<bank>/last_replay`, no `.json`
/// extension so entry listings never confuse it for a record).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ReplayMarker {
    pass: bool,
    total: usize,
}

/// Unique temp names for concurrent writers in one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The on-disk bank: `<store dir>/bank/{key:016x}.json`.
pub struct RegressionBank {
    dir: PathBuf,
}

impl RegressionBank {
    /// Bank under the given *store* directory. Nothing is created until
    /// the first insert.
    pub fn new(store_dir: impl AsRef<Path>) -> Self {
        RegressionBank {
            dir: store_dir.as_ref().join("bank"),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content key: FNV-1a64 over `domain + NUL + instance JSON`. The
    /// finding and provenance deliberately do not participate — two
    /// sessions discovering the same instance dedupe to one record.
    pub fn key(domain: &str, instance: &[f64]) -> u64 {
        let instance_json = serde_json::to_string(&instance.to_vec()).unwrap_or_default();
        let mut h = fnv1a64(domain.as_bytes());
        h = fnv1a64_continue(h, &[0]);
        fnv1a64_continue(h, instance_json.as_bytes())
    }

    /// External id form of a key (16 lowercase hex digits).
    pub fn format_id(key: u64) -> String {
        format!("{key:016x}")
    }

    /// Parse an external id back to a key.
    pub fn parse_id(id: &str) -> Option<u64> {
        if id.len() != 16 || !id.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(id, 16).ok()
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Insert a record, deduplicating by content key. Returns `true` if
    /// the record was written, `false` if an entry with the same key
    /// already existed (append-only: first write wins, so recorded gaps
    /// are never silently rewritten).
    pub fn insert(&self, record: &BankRecord) -> io::Result<bool> {
        let key = Self::key(&record.domain, &record.instance);
        let final_path = self.entry_path(key);
        if final_path.exists() {
            return Ok(false);
        }
        fs::create_dir_all(&self.dir)?;
        let bytes = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        publish_durable(&self.dir, &tmp, &final_path, bytes.as_bytes())?;
        Ok(true)
    }

    /// Fetch one record by key. `None` for missing or unreadable entries
    /// (degrade philosophy: corruption looks like absence).
    pub fn get(&self, key: u64) -> Option<BankRecord> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// All parseable records, sorted by key — the canonical iteration
    /// order every consumer (replay, tuner, HTTP listing) shares, so
    /// results never depend on directory enumeration order.
    pub fn entries(&self) -> Vec<(u64, BankRecord)> {
        let mut out: Vec<(u64, BankRecord)> = self
            .keys_on_disk()
            .into_iter()
            .filter_map(|key| self.get(key).map(|r| (key, r)))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Number of entry files (parseable or not).
    pub fn len(&self) -> usize {
        self.keys_on_disk().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of entry files on disk.
    pub fn bytes(&self) -> u64 {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return 0;
        };
        read.filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Size gauges for `/v1/metrics`.
    pub fn info(&self) -> BankInfo {
        BankInfo {
            entries: self.len(),
            bytes: self.bytes(),
            last_replay_pass: self.last_replay_pass(),
        }
    }

    /// Drop entries no current deployment can interpret: unknown (or
    /// unreadable) `schema_version`, or a domain absent from
    /// `known_domains` (typically `DomainRegistry::ids()`). Entries that
    /// are valid for a registered domain are never touched.
    pub fn sweep(&self, known_domains: &[String]) -> BankSweep {
        let mut swept = BankSweep::default();
        for key in self.keys_on_disk() {
            let path = self.entry_path(key);
            let keep = fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<BankRecord>(&text).ok())
                .is_some_and(|r| {
                    r.schema_version == BANK_SCHEMA_VERSION
                        && known_domains.iter().any(|d| d == &r.domain)
                });
            if keep {
                continue;
            }
            let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if fs::remove_file(&path).is_ok() {
                swept.entries_removed += 1;
                swept.bytes_reclaimed += size;
            }
        }
        swept
    }

    /// Record the verdict of a replay run (durably, so `/v1/metrics`
    /// reports it across restarts).
    pub fn record_replay(&self, pass: bool, total: usize) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let marker = ReplayMarker { pass, total };
        let bytes = serde_json::to_string(&marker)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self.dir.join(format!(
            ".last_replay.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        publish_durable(
            &self.dir,
            &tmp,
            &self.dir.join("last_replay"),
            bytes.as_bytes(),
        )
    }

    /// Verdict of the most recent replay, if one ever ran here.
    pub fn last_replay_pass(&self) -> Option<bool> {
        let text = fs::read_to_string(self.dir.join("last_replay")).ok()?;
        serde_json::from_str::<ReplayMarker>(&text)
            .ok()
            .map(|m| m.pass)
    }

    /// Keys of every `{16 hex}.json` file present.
    fn keys_on_disk(&self) -> Vec<u64> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        read.filter_map(|e| e.ok())
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_none_or(|x| x != "json") {
                    return None;
                }
                Self::parse_id(path.file_stem()?.to_str()?)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_core::pipeline::Witness;
    use xplain_core::subspace::Subspace;

    fn scratch_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "xplain-bank-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        dir
    }

    fn finding(input: Vec<f64>, gap: f64) -> SubspaceFinding {
        let lo: Vec<f64> = input.iter().map(|v| v - 1.0).collect();
        let hi: Vec<f64> = input.iter().map(|v| v + 1.0).collect();
        SubspaceFinding {
            subspace: Subspace::from_rough_box(lo, hi, input.clone(), gap),
            significance: None,
            explanation: None,
            witness: Some(Witness { input, gap }),
        }
    }

    fn record(domain: &str, input: Vec<f64>, gap: f64) -> BankRecord {
        BankRecord::from_finding(domain, &finding(input, gap), "00000000000000ab", 7)
            .expect("positive-gap witness banks")
    }

    #[test]
    fn insert_roundtrips_and_dedupes() {
        let root = scratch_dir("roundtrip");
        let bank = RegressionBank::new(&root);
        assert!(bank.is_empty());
        let rec = record("dp", vec![50.0, 100.0, 100.0], 100.0);
        assert!(bank.insert(&rec).unwrap());
        assert!(!bank.insert(&rec).unwrap(), "same content key dedupes");
        assert_eq!(bank.len(), 1);
        let key = RegressionBank::key("dp", &[50.0, 100.0, 100.0]);
        let back = bank.get(key).expect("entry readable");
        assert_eq!(back.domain, "dp");
        assert_eq!(back.instance, vec![50.0, 100.0, 100.0]);
        assert_eq!(back.gap, 100.0);
        assert_eq!(back.job_key, "00000000000000ab");
        assert_eq!(back.session_seed, 7);
        assert!(bank.bytes() > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_ignores_provenance_and_finding() {
        let a = record("dp", vec![1.0, 2.0], 3.0);
        let mut b = a.clone();
        b.job_key = "ffffffffffffffff".into();
        b.session_seed = 99;
        b.gap = 4.0;
        assert_eq!(
            RegressionBank::key(&a.domain, &a.instance),
            RegressionBank::key(&b.domain, &b.instance)
        );
        // Different domain or instance ⇒ different key.
        assert_ne!(
            RegressionBank::key("dp", &[1.0, 2.0]),
            RegressionBank::key("ff", &[1.0, 2.0])
        );
        assert_ne!(
            RegressionBank::key("dp", &[1.0, 2.0]),
            RegressionBank::key("dp", &[1.0, 2.5])
        );
    }

    #[test]
    fn zero_gap_witness_does_not_bank() {
        assert!(BankRecord::from_finding("dp", &finding(vec![1.0], 0.0), "k", 0).is_none());
        let mut no_witness = finding(vec![1.0], 1.0);
        no_witness.witness = None;
        assert!(BankRecord::from_finding("dp", &no_witness, "k", 0).is_none());
    }

    #[test]
    fn entries_sorted_by_key() {
        let root = scratch_dir("sorted");
        let bank = RegressionBank::new(&root);
        for i in 0..6 {
            bank.insert(&record("sched", vec![i as f64, 2.0], 1.0))
                .unwrap();
        }
        let entries = bank.entries();
        assert_eq!(entries.len(), 6);
        let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_drops_unknown_schema_and_unregistered_domains() {
        let root = scratch_dir("sweep");
        let bank = RegressionBank::new(&root);
        bank.insert(&record("dp", vec![1.0], 2.0)).unwrap();
        let mut stale = record("dp", vec![9.0], 2.0);
        stale.schema_version = BANK_SCHEMA_VERSION + 1;
        // Route around `insert`'s stamping-by-construction via a raw write.
        let stale_key = RegressionBank::key(&stale.domain, &stale.instance);
        fs::write(
            bank.dir().join(format!("{stale_key:016x}.json")),
            serde_json::to_string(&stale).unwrap(),
        )
        .unwrap();
        bank.insert(&record("retired-domain", vec![1.0], 2.0))
            .unwrap();

        assert_eq!(bank.len(), 3);
        let swept = bank.sweep(&["dp".to_string(), "ff".to_string()]);
        assert_eq!(swept.entries_removed, 2);
        assert!(swept.bytes_reclaimed > 0);
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.entries()[0].1.domain, "dp");
        // Idempotent on a clean bank.
        assert_eq!(bank.sweep(&["dp".to_string()]), BankSweep::default());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn replay_marker_roundtrips_and_is_not_an_entry() {
        let root = scratch_dir("marker");
        let bank = RegressionBank::new(&root);
        assert_eq!(bank.last_replay_pass(), None);
        bank.record_replay(true, 3).unwrap();
        assert_eq!(bank.last_replay_pass(), Some(true));
        bank.record_replay(false, 3).unwrap();
        assert_eq!(bank.last_replay_pass(), Some(false));
        assert_eq!(bank.len(), 0, "marker must not count as an entry");
        let info = bank.info();
        assert_eq!(info.entries, 0);
        assert_eq!(info.last_replay_pass, Some(false));
        let _ = fs::remove_dir_all(&root);
    }
}
