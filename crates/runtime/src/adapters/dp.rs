//! Demand Pinning (traffic engineering) bound to the runtime.
//!
//! [`DpDomain`] packages the Fig. 1a-style TE problem for the registry;
//! [`DpDslMapper`] maps inputs to Fig. 4a heat-map flows; [`DpFamily`] /
//! [`generate_dp_instances`] realize §5.4's instance generator for the
//! Type-3 trends (chains of growing pinned-path length).

use crate::domain::{Domain, ParamDescriptor, ParamSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::oracle::{DpOracle, GapOracle};
use xplain_analyzer::search::dp_seeds;
use xplain_core::explainer::DslMapper;
use xplain_core::generalizer::Observation;
use xplain_domains::te::{DemandPair, DemandPinning, TeDsl, TeLexSolver, TeProblem, Topology};
use xplain_flownet::FlowNet;

/// DSL mapper for Demand Pinning on a TE problem (Fig. 4a).
///
/// Deliberately *cold per evaluation*, unlike [`DpOracle`]: the explainer
/// fans `heuristic_flows`/`benchmark_flows` across sample threads, and a
/// shared warm basis would make the returned *vertex* (the flow split
/// among equally-optimal allocations) depend on thread scheduling —
/// breaking the runtime's byte-for-byte determinism guarantee. Cold
/// solves are vertex-deterministic per input and embarrassingly
/// parallel. What the mapper does *not* pay is the per-call model build:
/// it holds a prototype [`TeLexSolver`] (both lexicographic stage LPs
/// standardized once) and takes a [`TeLexSolver::cold_clone`] — prepared
/// rhs deltas, fresh sessions — for every evaluation. The clone's cold
/// solves are byte-identical to building the model afresh (the prepared
/// and model paths funnel into one solver entry point; pinned by
/// `te_lex_solver_matches_model_path` and the replay suite).
pub struct DpDslMapper {
    pub problem: TeProblem,
    pub heuristic: DemandPinning,
    pub dsl: TeDsl,
    solver: TeLexSolver,
}

impl DpDslMapper {
    pub fn new(problem: TeProblem, threshold: f64) -> Self {
        let dsl = TeDsl::build(&problem);
        let solver = problem
            .lex_solver()
            .expect("max-flow LP of a validated TeProblem is well-formed");
        DpDslMapper {
            heuristic: DemandPinning::new(threshold),
            problem,
            dsl,
            solver,
        }
    }
}

impl DslMapper for DpDslMapper {
    fn net(&self) -> &FlowNet {
        &self.dsl.net
    }

    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let mut solver = self.solver.cold_clone();
        let alloc = self
            .heuristic
            .solve_prepared(&self.problem, x, &mut solver)
            .ok()?;
        Some(self.dsl.assignment(x, &alloc))
    }

    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let mut solver = self.solver.cold_clone();
        let alloc = solver.optimal(x).ok()?;
        Some(self.dsl.assignment(x, &alloc))
    }
}

/// Parameters of the DP instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpFamily {
    /// Chain lengths (pinned-path lengths) to generate.
    pub lengths: Vec<usize>,
    pub chain_cap: f64,
    pub bypass_cap: f64,
    pub threshold: f64,
    /// Random capacity jitter (fraction of the base capacity).
    pub cap_jitter: f64,
}

impl Default for DpFamily {
    fn default() -> Self {
        DpFamily {
            // Lengths start at 2: with a single hop the per-hop demand is
            // the end-to-end pair itself and can escape over the bypass,
            // so the gap degenerates to zero.
            lengths: (2..=7).collect(),
            chain_cap: 100.0,
            bypass_cap: 60.0,
            threshold: 50.0,
            cap_jitter: 0.0,
        }
    }
}

/// A generated DP instance with its adversarial input and features.
#[derive(Debug, Clone)]
pub struct DpInstance {
    pub problem: TeProblem,
    pub threshold: f64,
    /// The structured adversarial input (pinnable end-to-end demand at the
    /// threshold, per-hop demands saturating).
    pub adversarial_input: Vec<f64>,
    pub observation: Observation,
}

/// Generate the DP family: one instance per requested chain length.
///
/// Instance `L`: chain of `L` hops (capacity `chain_cap`) with an
/// end-to-end bypass of `L + 1` hops (capacity `bypass_cap`); demands are
/// the pinnable end-to-end pair plus one per-hop demand. At the structured
/// adversarial input the gap is `L * T` — growing with the pinned path
/// length, which is what the generalizer should discover.
pub fn generate_dp_instances(family: &DpFamily, rng: &mut impl Rng) -> Vec<DpInstance> {
    let mut out = Vec::with_capacity(family.lengths.len());
    for &len in &family.lengths {
        let mut jitter = |base: f64| -> f64 {
            if family.cap_jitter > 0.0 {
                base * (1.0 + family.cap_jitter * rng.gen_range(-1.0..1.0))
            } else {
                base
            }
        };
        let chain_cap = jitter(family.chain_cap);
        let bypass_cap = jitter(family.bypass_cap).max(family.threshold + 1.0);
        let topo = Topology::chain_with_long_bypass(len, chain_cap, bypass_cap);

        let mut demands = vec![DemandPair { src: 0, dst: len }];
        for i in 0..len {
            demands.push(DemandPair { src: i, dst: i + 1 });
        }
        let problem = TeProblem::new(topo, demands, 2 * len + 2, chain_cap.max(bypass_cap))
            .expect("chain instance is well-formed");

        // Structured adversarial input: pinnable demand at the threshold,
        // hop demands saturating their direct links.
        let mut input = vec![family.threshold];
        input.extend(std::iter::repeat_n(chain_cap, len));

        let dp = DemandPinning::new(family.threshold);
        let gap = dp.gap(&problem, &input).unwrap_or(0.0);

        let pinned_path = &problem.paths[0][0];
        let min_cap = pinned_path.min_capacity(&problem.topology);
        let observation = Observation {
            features: vec![
                ("pinned_path_length".to_string(), pinned_path.len() as f64),
                ("pinned_path_min_capacity".to_string(), min_cap),
                ("num_demands".to_string(), problem.num_demands() as f64),
            ],
            gap,
        };

        out.push(DpInstance {
            problem,
            threshold: family.threshold,
            adversarial_input: input,
            observation,
        });
    }
    out
}

/// The TE / Demand Pinning domain: a registry entry around one concrete
/// [`TeProblem`] and pinning threshold.
pub struct DpDomain {
    pub problem: TeProblem,
    pub threshold: f64,
    pub family: DpFamily,
}

impl DpDomain {
    pub fn new(problem: TeProblem, threshold: f64) -> Self {
        DpDomain {
            problem,
            threshold,
            family: DpFamily::default(),
        }
    }

    /// The paper's Fig. 1a instance at threshold 50.
    pub fn fig1a() -> Self {
        DpDomain::new(TeProblem::fig1a(), 50.0)
    }
}

impl Domain for DpDomain {
    fn id(&self) -> &str {
        "dp"
    }

    fn description(&self) -> String {
        format!(
            "Demand Pinning (threshold {}) vs optimal multi-commodity flow on {} demands",
            self.threshold,
            self.problem.num_demands()
        )
    }

    fn oracle(&self) -> Box<dyn GapOracle> {
        Box::new(DpOracle::new(self.problem.clone(), self.threshold))
    }

    fn mapper(&self) -> Option<Box<dyn DslMapper>> {
        Some(Box::new(DpDslMapper::new(
            self.problem.clone(),
            self.threshold,
        )))
    }

    fn seeds(&self) -> Vec<Vec<f64>> {
        dp_seeds(
            self.problem.num_demands(),
            self.threshold,
            self.problem.demand_cap,
        )
    }

    fn instance_family(&self, seed: u64) -> Vec<Observation> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generate_dp_instances(&self.family, &mut rng)
            .into_iter()
            .map(|i| i.observation)
            .collect()
    }

    fn param_space(&self) -> Option<ParamSpace> {
        Some(ParamSpace {
            domain: "dp".to_string(),
            params: vec![ParamDescriptor {
                name: "pin_threshold".to_string(),
                lo: 0.0,
                hi: self.problem.demand_cap,
                default: self.threshold,
            }],
        })
    }

    fn tuned_oracle(&self, params: &[f64]) -> Option<Box<dyn GapOracle>> {
        let &[threshold] = params else { return None };
        Some(Box::new(DpOracle::new(self.problem.clone(), threshold)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_core::explainer::{explain, EdgeScore, ExplainerParams};
    use xplain_core::generalizer::{generalize, GeneralizerParams, Trend};
    use xplain_core::pipeline::PipelineConfig;
    use xplain_core::session::{SessionBudgets, SessionEvent};
    use xplain_core::subspace::Subspace;

    /// The streaming API through the DP adapter: an analyzer-call budget
    /// stops the session mid-loop with the first finding already
    /// delivered, and the partial result says why.
    #[test]
    fn dp_session_streams_first_finding_under_budget() {
        let config = PipelineConfig {
            max_subspaces: 3,
            significance: xplain_core::SignificanceParams {
                pairs: 40,
                ..Default::default()
            },
            explainer: ExplainerParams {
                samples: 60,
                threads: 1,
                ..Default::default()
            },
            coverage_samples: 0,
            ..Default::default()
        };
        let mut session = DpDomain::fig1a()
            .session(
                &config,
                SessionBudgets {
                    max_analyzer_calls: Some(1),
                    ..Default::default()
                },
            )
            .expect("dp session builds");
        let mut delivered = 0usize;
        let result = session.drain_with(|event| {
            if let SessionEvent::ExplanationReady { finding, .. } = event {
                delivered += 1;
                // Type 2 flows through the streaming path too.
                assert!(finding.explanation.is_some());
                assert!(finding.subspace.seed_gap > 0.0);
            }
        });
        assert_eq!(delivered, 1, "budget of 1 call ⇒ exactly one finding");
        assert_eq!(result.analyzer_calls, 1);
        assert!(!session.finished_naturally());
    }

    /// The Fig. 4a claim: inside the DP adversarial subspace, the
    /// heuristic-only edges are the pinned demand's shortest path and the
    /// benchmark-only edges are the long path.
    #[test]
    fn dp_heatmap_matches_fig4a() {
        let mapper = DpDslMapper::new(TeProblem::fig1a(), 50.0);
        // Subspace: pinnable 1⇝3 near the threshold, other demands large.
        let sub = Subspace::from_rough_box(
            vec![35.0, 85.0, 85.0],
            vec![50.0, 100.0, 100.0],
            vec![50.0, 100.0, 100.0],
            100.0,
        );
        let params = ExplainerParams {
            samples: 250,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 42);
        assert!(ex.samples_used >= 200, "{}", ex.samples_used);

        let find = |label: &str| -> &EdgeScore {
            ex.edges
                .iter()
                .find(|e| e.label == label)
                .unwrap_or_else(|| panic!("edge {label} missing"))
        };
        // Heuristic-only (red): pinned demand on its shortest path.
        let short = find("1~3->1-2-3");
        assert!(short.score < -0.9, "short path score {}", short.score);
        // Benchmark-only (blue): the optimal reroutes over 1-4-5-3.
        let long = find("1~3->1-4-5-3");
        assert!(long.score > 0.9, "long path score {}", long.score);
        // Both route the other demands on their single paths: score ~ 0.
        let d12 = find("1~2->1-2");
        assert!(d12.score.abs() < 0.2, "1~2 score {}", d12.score);
    }

    #[test]
    fn dp_family_gap_grows_linearly_with_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = DpFamily::default();
        let instances = generate_dp_instances(&family, &mut rng);
        assert_eq!(instances.len(), 6);
        for (ix, inst) in instances.iter().enumerate() {
            let len = (ix + 2) as f64;
            // Gap = L * T (chain pinning starves every hop demand by T).
            let expect = len * family.threshold;
            assert!(
                (inst.observation.gap - expect).abs() < 1e-4,
                "L = {len}: gap {} != {expect}",
                inst.observation.gap
            );
        }
    }

    #[test]
    fn dp_family_features_present() {
        let mut rng = StdRng::seed_from_u64(2);
        let instances = generate_dp_instances(&DpFamily::default(), &mut rng);
        let names: Vec<&str> = instances[0]
            .observation
            .features
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pinned_path_length"));
        assert!(names.contains(&"pinned_path_min_capacity"));
    }

    /// The paper's E8 headline: the generalizer emits `increasing(P)` for
    /// the pinned-path-length feature.
    #[test]
    fn generalizer_discovers_increasing_pinned_path_length() {
        let observations = DpDomain::fig1a().instance_family(3);
        let findings = generalize(&observations, &GeneralizerParams::default());
        let f = findings
            .iter()
            .find(|f| f.feature == "pinned_path_length")
            .expect("increasing(pinned_path_length) must be discovered");
        assert_eq!(f.trend, Trend::Increasing);
        assert!(f.p_value < 0.05);
    }
}
