//! Built-in domain adapters: concrete [`crate::domain::Domain`]
//! implementations binding the problem logic in `xplain-domains` (and its
//! oracles in `xplain-analyzer`) to the runtime.
//!
//! Each adapter module carries the domain's DSL mapper (the Type-2
//! explainer hook) and its §5.4 instance family (the Type-3 generalizer
//! feed) alongside the `Domain` impl, so registering a new domain is one
//! self-contained file — see [`sched`] for the template.

pub mod dp;
pub mod ff;
pub mod sched;

pub use dp::{generate_dp_instances, DpDomain, DpDslMapper, DpFamily, DpInstance};
pub use ff::{generate_ff_instances, FfDomain, FfDslMapper, FfFamily, FfInstance, FfTunedOracle};
pub use sched::{
    generate_sched_instances, SchedDomain, SchedDslMapper, SchedFamily, SchedFamilyInstance,
    SchedTunedOracle,
};
