//! First-fit bin packing bound to the runtime.
//!
//! [`FfDomain`] packages the §2 VBP setting for the registry;
//! [`FfDslMapper`] maps size vectors to Fig. 4b heat-map flows;
//! [`FfFamily`] / [`generate_ff_instances`] realize §5.4's instance
//! generator for the Type-3 trends (over-half balls, small fillers).

use crate::domain::{Domain, ParamDescriptor, ParamSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::oracle::{FfOracle, GapOracle};
use xplain_analyzer::search::ff_seeds;
use xplain_core::explainer::DslMapper;
use xplain_core::generalizer::Observation;
use xplain_domains::vbp::{first_fit, first_fit_deferred, optimal, VbpDsl, VbpInstance};
use xplain_flownet::FlowNet;

/// DSL mapper for first-fit bin packing (Fig. 4b).
pub struct FfDslMapper {
    pub n_balls: usize,
    pub n_bins: usize,
    pub capacity: f64,
    pub dsl: VbpDsl,
}

impl FfDslMapper {
    pub fn new(n_balls: usize, n_bins: usize, capacity: f64) -> Self {
        FfDslMapper {
            n_balls,
            n_bins,
            capacity,
            dsl: VbpDsl::build(n_balls, n_bins, capacity),
        }
    }

    fn instance(&self, x: &[f64]) -> Option<VbpInstance> {
        if x.len() != self.n_balls {
            return None;
        }
        Some(VbpInstance {
            bin_capacity: vec![self.capacity],
            balls: x.iter().map(|&s| vec![s]).collect(),
        })
    }
}

impl DslMapper for FfDslMapper {
    fn net(&self) -> &FlowNet {
        &self.dsl.net
    }

    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let packing = first_fit(&inst);
        self.dsl.assignment(&inst, &packing)
    }

    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let packing = optimal(&inst);
        self.dsl.assignment(&inst, &packing)
    }
}

/// Parameters of the FF instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FfFamily {
    /// Number of random size-vectors to generate.
    pub instances: usize,
    pub n_balls: usize,
    pub capacity: f64,
    pub min_size: f64,
}

impl Default for FfFamily {
    fn default() -> Self {
        FfFamily {
            instances: 40,
            n_balls: 12,
            capacity: 1.0,
            min_size: 0.01,
        }
    }
}

/// A generated FF instance (a concrete ball-size vector) plus features.
#[derive(Debug, Clone)]
pub struct FfInstance {
    pub sizes: Vec<f64>,
    pub observation: Observation,
}

/// Generate random FF instances and their structural features.
///
/// Features: the count of balls over half a bin, the count of small
/// fillers, and the total volume. The Type-3 trends the generalizer
/// discovers on this family: *more small fillers → larger gap* (FF
/// strands them in early bins that over-half balls can no longer join)
/// and *more over-half balls → smaller gap* (they cost FF and the
/// optimal the same bin each).
pub fn generate_ff_instances(family: &FfFamily, rng: &mut impl Rng) -> Vec<FfInstance> {
    let cap = family.capacity;
    let mut out = Vec::with_capacity(family.instances);
    for _ in 0..family.instances {
        // Mix of size classes so the over-half count varies by instance.
        let over_half = rng.gen_range(0..=family.n_balls / 2 * 2);
        let sizes: Vec<f64> = (0..family.n_balls)
            .map(|i| {
                if i < over_half {
                    rng.gen_range(0.51 * cap..0.60 * cap)
                } else {
                    rng.gen_range(family.min_size..0.45 * cap)
                }
            })
            .collect();
        let inst = VbpInstance {
            bin_capacity: vec![cap],
            balls: sizes.iter().map(|&s| vec![s]).collect(),
        };
        let gap = first_fit(&inst).bins_used as f64 - optimal(&inst).bins_used as f64;
        let count_over = sizes.iter().filter(|&&s| s > 0.5 * cap).count() as f64;
        let count_small = sizes.iter().filter(|&&s| s < 0.25 * cap).count() as f64;
        let total: f64 = sizes.iter().sum();
        out.push(FfInstance {
            observation: Observation {
                features: vec![
                    ("balls_over_half".to_string(), count_over),
                    ("small_fillers".to_string(), count_small),
                    ("total_volume".to_string(), total),
                ],
                gap,
            },
            sizes,
        });
    }
    out
}

/// [`FfOracle`] with the sizing rule parameterized: the heuristic side
/// runs [`first_fit_deferred`] at the given `defer_below` threshold
/// (0.0 ≡ plain first-fit), the benchmark side stays the exact optimum.
pub struct FfTunedOracle {
    pub base: FfOracle,
    pub defer_below: f64,
}

impl GapOracle for FfTunedOracle {
    fn dims(&self) -> usize {
        self.base.dims()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.base.bounds()
    }

    fn gap(&self, x: &[f64]) -> f64 {
        if x.len() != self.base.n_balls
            || x.iter()
                .any(|&s| !s.is_finite() || s < 0.0 || s > self.base.bin_capacity + 1e-12)
        {
            return f64::NEG_INFINITY;
        }
        let inst = VbpInstance {
            bin_capacity: vec![self.base.bin_capacity],
            balls: x.iter().map(|&s| vec![s]).collect(),
        };
        let h = first_fit_deferred(&inst, self.defer_below).bins_used as f64;
        let b = optimal(&inst).bins_used as f64;
        h - b
    }

    fn dim_names(&self) -> Vec<String> {
        self.base.dim_names()
    }
}

/// The first-fit bin-packing domain: a registry entry around one ball
/// count and a DSL with a fixed number of bins.
pub struct FfDomain {
    pub n_balls: usize,
    pub n_bins: usize,
    pub family: FfFamily,
}

impl FfDomain {
    pub fn new(n_balls: usize, n_bins: usize) -> Self {
        FfDomain {
            n_balls,
            n_bins,
            family: FfFamily::default(),
        }
    }

    /// The §2 setting: 4 balls, 3 bins.
    pub fn small() -> Self {
        FfDomain::new(4, 3)
    }
}

impl Domain for FfDomain {
    fn id(&self) -> &str {
        "ff"
    }

    fn description(&self) -> String {
        format!(
            "First-fit bin packing vs exact optimum ({} balls, {} bins)",
            self.n_balls, self.n_bins
        )
    }

    fn oracle(&self) -> Box<dyn GapOracle> {
        Box::new(FfOracle::new(self.n_balls))
    }

    fn mapper(&self) -> Option<Box<dyn DslMapper>> {
        let oracle = FfOracle::new(self.n_balls);
        Some(Box::new(FfDslMapper::new(
            self.n_balls,
            self.n_bins,
            oracle.bin_capacity,
        )))
    }

    fn seeds(&self) -> Vec<Vec<f64>> {
        let oracle = FfOracle::new(self.n_balls);
        ff_seeds(self.n_balls, oracle.bin_capacity, oracle.min_size)
    }

    fn instance_family(&self, seed: u64) -> Vec<Observation> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generate_ff_instances(&self.family, &mut rng)
            .into_iter()
            .map(|i| i.observation)
            .collect()
    }

    fn param_space(&self) -> Option<ParamSpace> {
        let oracle = FfOracle::new(self.n_balls);
        Some(ParamSpace {
            domain: "ff".to_string(),
            params: vec![ParamDescriptor {
                name: "defer_below".to_string(),
                lo: 0.0,
                hi: oracle.bin_capacity,
                default: 0.0,
            }],
        })
    }

    fn tuned_oracle(&self, params: &[f64]) -> Option<Box<dyn GapOracle>> {
        let &[defer_below] = params else { return None };
        Some(Box::new(FfTunedOracle {
            base: FfOracle::new(self.n_balls),
            defer_below,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_core::explainer::{explain, ExplainerParams};
    use xplain_core::generalizer::{generalize, GeneralizerParams};
    use xplain_core::pipeline::PipelineConfig;
    use xplain_core::session::SessionBudgets;
    use xplain_core::subspace::Subspace;

    /// The streaming API through the FF adapter: the first finding is
    /// delivered strictly before the stream terminates (progressive
    /// delivery, not end-of-batch), and a checkpoint taken mid-stream
    /// resumes to the identical final result.
    #[test]
    fn ff_session_delivers_findings_progressively_and_resumes() {
        let config = PipelineConfig {
            max_subspaces: 1,
            significance: xplain_core::SignificanceParams {
                pairs: 40,
                ..Default::default()
            },
            explainer: ExplainerParams {
                samples: 60,
                threads: 1,
                ..Default::default()
            },
            coverage_samples: 100,
            ..Default::default()
        };
        let domain = FfDomain::small();
        let unlimited = SessionBudgets::unlimited();

        let mut kinds = Vec::new();
        let mut session = domain.session(&config, unlimited).expect("ff session");
        let reference = session.drain_with(|e| kinds.push(e.kind()));
        let finding_at = kinds
            .iter()
            .position(|k| *k == "explanation_ready")
            .expect("ff finds its subspace");
        assert!(
            finding_at + 1 < kinds.len(),
            "finding must stream before the terminal event: {kinds:?}"
        );

        // Interrupt a second run mid-stream; resume must converge on the
        // identical result (wall-time normalized — execution metadata).
        let mut interrupted = domain.session(&config, unlimited).expect("ff session");
        interrupted.next_event().expect("first event");
        interrupted.next_event().expect("second event");
        let mut resumed = crate::domain::build_session(
            &domain,
            &config,
            unlimited,
            xplain_core::session::CancelToken::new(),
            Some(interrupted.checkpoint()),
        )
        .expect("checkpoint resumes");
        let mut a = reference.clone();
        let mut b = resumed.drain();
        a.wall_time_ms = 0;
        b.wall_time_ms = 0;
        a.solver = Default::default();
        b.solver = Default::default();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// Fig. 4b in miniature: in the §2 subspace FF places the filler+ball
    /// differently from the optimal.
    #[test]
    fn ff_heatmap_shows_bin_disagreement() {
        let mapper = FfDslMapper::new(4, 3, 1.0);
        let sub = Subspace::from_rough_box(
            vec![0.01, 0.45, 0.51, 0.51],
            vec![0.05, 0.49, 0.55, 0.55],
            vec![0.01, 0.49, 0.51, 0.51],
            1.0,
        );
        let params = ExplainerParams {
            samples: 200,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 7);
        assert!(ex.samples_used >= 150);
        // FF always places B0 (the filler) in Bin0: heuristic uses
        // B0->Bin0 in every sample.
        let b0bin0 = ex.edges.iter().find(|e| e.label == "B0->Bin0").unwrap();
        assert!(
            b0bin0.heuristic_frac > 0.99,
            "B0->Bin0 heuristic frac {}",
            b0bin0.heuristic_frac
        );
        // Some edge must show strong disagreement (|score| large).
        let strongest = ex.strongest_disagreements(1)[0];
        assert!(
            strongest.score.abs() > 0.5,
            "strongest disagreement only {}",
            strongest.score
        );
    }

    #[test]
    fn unmappable_packings_skipped() {
        // DSL with 2 bins but instances that may need 3: those samples are
        // skipped, not fatal.
        let mapper = FfDslMapper::new(3, 2, 1.0);
        let sub = Subspace::from_rough_box(
            vec![0.6, 0.6, 0.6],
            vec![0.9, 0.9, 0.9],
            vec![0.7, 0.7, 0.7],
            0.0,
        );
        let params = ExplainerParams {
            samples: 30,
            threads: 1,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 5);
        // Every ball needs its own bin here (all > 0.5): 3 bins > 2.
        assert_eq!(ex.samples_used, 0);
    }

    #[test]
    fn ff_family_gap_correlates_with_over_half_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let family = FfFamily {
            instances: 100,
            ..Default::default()
        };
        let instances = generate_ff_instances(&family, &mut rng);
        assert_eq!(instances.len(), 100);
        let observations: Vec<Observation> =
            instances.iter().map(|i| i.observation.clone()).collect();
        let findings = generalize(&observations, &GeneralizerParams::default());
        // The over-half count should show up as an increasing trend.
        let f = findings.iter().find(|f| f.feature == "balls_over_half");
        assert!(f.is_some(), "findings: {findings:?}");
    }

    #[test]
    fn ff_instances_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let family = FfFamily::default();
        for inst in generate_ff_instances(&family, &mut rng) {
            for &s in &inst.sizes {
                assert!(s >= family.min_size - 1e-12 && s <= family.capacity);
            }
            assert!(inst.observation.gap >= 0.0);
        }
    }
}
