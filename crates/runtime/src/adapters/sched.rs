//! Makespan scheduling (LPT) bound to the runtime — the third registered
//! domain, proving the registry is open beyond the paper's two examples.
//!
//! [`SchedDomain`] packages an `n_jobs × n_machines` setting for the
//! registry; [`SchedDslMapper`] maps processing-time vectors onto the
//! canonical-slot DSL flows; [`SchedFamily`] / [`generate_sched_instances`]
//! generate the Graham-tight family whose gap grows as `m − 1` — the
//! Type-3 trend `increasing(num_machines)`.

use crate::domain::{Domain, ParamDescriptor, ParamSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};
use xplain_analyzer::oracle::{GapOracle, SchedOracle};
use xplain_analyzer::search::sched_seeds;
use xplain_core::explainer::DslMapper;
use xplain_core::generalizer::Observation;
use xplain_domains::sched::{lpt, lpt_capped, optimal, SchedDsl, SchedInstance};
use xplain_flownet::FlowNet;

/// DSL mapper for LPT makespan scheduling.
pub struct SchedDslMapper {
    pub n_jobs: usize,
    pub n_machines: usize,
    pub p_max: f64,
    pub dsl: SchedDsl,
}

impl SchedDslMapper {
    pub fn new(n_jobs: usize, n_machines: usize, p_max: f64) -> Self {
        SchedDslMapper {
            n_jobs,
            n_machines,
            p_max,
            dsl: SchedDsl::build(n_jobs, n_machines, p_max),
        }
    }

    fn instance(&self, x: &[f64]) -> Option<SchedInstance> {
        if x.len() != self.n_jobs {
            return None;
        }
        Some(SchedInstance::new(self.n_machines, x.to_vec()))
    }
}

impl DslMapper for SchedDslMapper {
    fn net(&self) -> &FlowNet {
        &self.dsl.net
    }

    fn heuristic_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let schedule = lpt(&inst);
        self.dsl.assignment(&inst, &schedule)
    }

    fn benchmark_flows(&self, x: &[f64]) -> Option<Vec<f64>> {
        let inst = self.instance(x)?;
        let schedule = optimal(&inst);
        self.dsl.assignment(&inst, &schedule)
    }
}

/// Parameters of the scheduling instance family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedFamily {
    /// Machine counts to generate (one Graham-tight instance each).
    pub machine_counts: Vec<usize>,
    /// Random processing-time jitter (fraction of each job's size).
    pub p_jitter: f64,
}

impl Default for SchedFamily {
    fn default() -> Self {
        SchedFamily {
            machine_counts: (2..=6).collect(),
            p_jitter: 0.0,
        }
    }
}

/// A generated scheduling instance plus features.
#[derive(Debug, Clone)]
pub struct SchedFamilyInstance {
    pub instance: SchedInstance,
    pub observation: Observation,
}

/// Generate the scheduling family: one Graham-tight instance per machine
/// count. At `m` machines the LPT−OPT gap is exactly `m − 1`, so the
/// generalizer should discover `increasing(num_machines)`.
pub fn generate_sched_instances(
    family: &SchedFamily,
    rng: &mut impl Rng,
) -> Vec<SchedFamilyInstance> {
    let mut out = Vec::with_capacity(family.machine_counts.len());
    for &m in &family.machine_counts {
        let mut instance = SchedInstance::lpt_tight(m);
        if family.p_jitter > 0.0 {
            for p in &mut instance.jobs {
                *p *= 1.0 + family.p_jitter * rng.gen_range(-1.0..1.0);
            }
        }
        let gap = lpt(&instance).makespan - optimal(&instance).makespan;
        let total: f64 = instance.jobs.iter().sum();
        let observation = Observation {
            features: vec![
                ("num_machines".to_string(), m as f64),
                ("num_jobs".to_string(), instance.num_jobs() as f64),
                ("total_work".to_string(), total),
            ],
            gap,
        };
        out.push(SchedFamilyInstance {
            instance,
            observation,
        });
    }
    out
}

/// [`SchedOracle`] with the LPT tie-break parameterized: the heuristic
/// side runs [`lpt_capped`] at the given MULTIFIT-style `cap_factor`
/// (0.0 ≡ plain LPT), the benchmark side stays the exact optimum.
pub struct SchedTunedOracle {
    pub base: SchedOracle,
    pub cap_factor: f64,
}

impl GapOracle for SchedTunedOracle {
    fn dims(&self) -> usize {
        self.base.dims()
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        self.base.bounds()
    }

    fn gap(&self, x: &[f64]) -> f64 {
        if x.len() != self.base.n_jobs
            || x.iter()
                .any(|&p| !p.is_finite() || p < 0.0 || p > self.base.p_max + 1e-12)
        {
            return f64::NEG_INFINITY;
        }
        let inst = SchedInstance::new(self.base.n_machines, x.to_vec());
        let h = lpt_capped(&inst, self.cap_factor).makespan;
        let b = optimal(&inst).makespan;
        h - b
    }

    fn dim_names(&self) -> Vec<String> {
        self.base.dim_names()
    }
}

/// The makespan-scheduling domain: a registry entry around one
/// `n_jobs × n_machines` setting.
pub struct SchedDomain {
    pub n_jobs: usize,
    pub n_machines: usize,
    pub family: SchedFamily,
}

impl SchedDomain {
    pub fn new(n_jobs: usize, n_machines: usize) -> Self {
        SchedDomain {
            n_jobs,
            n_machines,
            family: SchedFamily::default(),
        }
    }

    /// The 2-machine, 5-job setting whose Graham-tight point has gap 1.
    pub fn small() -> Self {
        SchedDomain::new(5, 2)
    }
}

impl Domain for SchedDomain {
    fn id(&self) -> &str {
        "sched"
    }

    fn description(&self) -> String {
        format!(
            "LPT makespan scheduling vs exact optimum ({} jobs, {} machines)",
            self.n_jobs, self.n_machines
        )
    }

    fn oracle(&self) -> Box<dyn GapOracle> {
        Box::new(SchedOracle::new(self.n_jobs, self.n_machines))
    }

    fn mapper(&self) -> Option<Box<dyn DslMapper>> {
        let oracle = SchedOracle::new(self.n_jobs, self.n_machines);
        Some(Box::new(SchedDslMapper::new(
            self.n_jobs,
            self.n_machines,
            oracle.p_max,
        )))
    }

    fn seeds(&self) -> Vec<Vec<f64>> {
        let oracle = SchedOracle::new(self.n_jobs, self.n_machines);
        sched_seeds(self.n_jobs, self.n_machines, oracle.p_max)
    }

    fn instance_family(&self, seed: u64) -> Vec<Observation> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generate_sched_instances(&self.family, &mut rng)
            .into_iter()
            .map(|i| i.observation)
            .collect()
    }

    fn param_space(&self) -> Option<ParamSpace> {
        Some(ParamSpace {
            domain: "sched".to_string(),
            params: vec![ParamDescriptor {
                name: "cap_factor".to_string(),
                lo: 0.0,
                hi: 2.0,
                default: 0.0,
            }],
        })
    }

    fn tuned_oracle(&self, params: &[f64]) -> Option<Box<dyn GapOracle>> {
        let &[cap_factor] = params else { return None };
        Some(Box::new(SchedTunedOracle {
            base: SchedOracle::new(self.n_jobs, self.n_machines),
            cap_factor,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xplain_core::explainer::{explain, ExplainerParams};
    use xplain_core::generalizer::{generalize, GeneralizerParams, Trend};
    use xplain_core::subspace::Subspace;

    /// Around the Graham-tight point, LPT splits the two longest jobs
    /// across machines while the optimum pairs them — the heat-map must
    /// show that disagreement on the canonical-slot edges.
    #[test]
    fn sched_heatmap_shows_pairing_disagreement() {
        let mapper = SchedDslMapper::new(5, 2, 3.0);
        let sub = Subspace::from_rough_box(
            vec![2.9, 2.9, 1.9, 1.9, 1.9],
            vec![3.0, 3.0, 2.0, 2.0, 2.0],
            vec![3.0, 3.0, 2.0, 2.0, 2.0],
            1.0,
        );
        let params = ExplainerParams {
            samples: 200,
            threads: 2,
            ..Default::default()
        };
        let ex = explain(&mapper, &sub, &params, 11);
        assert!(ex.samples_used >= 150, "{}", ex.samples_used);
        // J0 lands on slot 0 under both (slot 0 is J0's machine by
        // canonicalization), so the story is told by J1: the optimum
        // pairs it with J0 on slot 0, LPT sends it to slot 1.
        let j1s0 = ex.edges.iter().find(|e| e.label == "J1->M0").unwrap();
        assert!(j1s0.score > 0.9, "J1->M0 score {}", j1s0.score);
        let j1s1 = ex.edges.iter().find(|e| e.label == "J1->M1").unwrap();
        assert!(j1s1.score < -0.9, "J1->M1 score {}", j1s1.score);
    }

    #[test]
    fn sched_family_gap_is_m_minus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let family = SchedFamily::default();
        let instances = generate_sched_instances(&family, &mut rng);
        assert_eq!(instances.len(), 5);
        for (inst, &m) in instances.iter().zip(&family.machine_counts) {
            assert!(
                (inst.observation.gap - (m - 1) as f64).abs() < 1e-9,
                "m = {m}: gap {}",
                inst.observation.gap
            );
        }
    }

    #[test]
    fn generalizer_discovers_increasing_num_machines() {
        let observations = SchedDomain::small().instance_family(9);
        let findings = generalize(&observations, &GeneralizerParams::default());
        let f = findings
            .iter()
            .find(|f| f.feature == "num_machines")
            .expect("increasing(num_machines) must be discovered");
        assert_eq!(f.trend, Trend::Increasing);
        assert!(f.p_value < 0.05);
    }

    /// The streaming API through the sched adapter: deadline budgets are
    /// honored (an already-expired deadline finishes before any work),
    /// while an unbudgeted session runs the full Type-1/2 event stream.
    #[test]
    fn sched_session_honors_deadline_and_streams_naturally() {
        use xplain_core::pipeline::PipelineConfig;
        use xplain_core::session::{FinishReason, SessionBudgets, SessionEvent};

        let config = PipelineConfig {
            max_subspaces: 1,
            significance: xplain_core::SignificanceParams {
                pairs: 40,
                ..Default::default()
            },
            explainer: xplain_core::ExplainerParams {
                samples: 60,
                threads: 1,
                ..Default::default()
            },
            coverage_samples: 0,
            ..Default::default()
        };
        let domain = SchedDomain::small();

        let mut expired = domain
            .session(
                &config,
                SessionBudgets {
                    deadline_ms: Some(0),
                    ..Default::default()
                },
            )
            .expect("sched session builds");
        let Some(SessionEvent::Finished { reason, result }) = expired.next_event() else {
            panic!("expired deadline must finish immediately");
        };
        assert_eq!(reason, FinishReason::DeadlineExceeded);
        assert_eq!(result.analyzer_calls, 0);

        let mut kinds = Vec::new();
        let result = domain
            .session(&config, SessionBudgets::unlimited())
            .expect("sched session builds")
            .drain_with(|e| kinds.push(e.kind()));
        assert!(!result.findings.is_empty());
        for expected in [
            "analyzer_probe",
            "subspace_grown",
            "significance_verdict",
            "explanation_ready",
            "finished",
        ] {
            assert!(kinds.contains(&expected), "missing {expected}: {kinds:?}");
        }
    }

    #[test]
    fn jittered_family_stays_valid() {
        let mut rng = StdRng::seed_from_u64(2);
        let family = SchedFamily {
            p_jitter: 0.02,
            ..Default::default()
        };
        for inst in generate_sched_instances(&family, &mut rng) {
            inst.instance.validate().unwrap();
            assert!(inst.observation.gap >= -1e-9);
        }
    }
}
