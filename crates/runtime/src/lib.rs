//! # xplain-runtime
//!
//! The serving layer over the XPlain pipeline — what turns the library
//! into something operators point at *their* heuristics (the paper's §6
//! pitch, and X-SYS's "explanation systems need a reference serving
//! architecture" argument):
//!
//! * [`domain`] — the object-safe [`Domain`] trait (oracle factory, DSL
//!   mapper, analyzer seeds, instance family, feature schema) and the
//!   id-keyed [`DomainRegistry`]. `core::pipeline` knows nothing about
//!   concrete domains; this crate binds them.
//! * [`adapters`] — the built-in domains: Demand Pinning (`"dp"`),
//!   first-fit bin packing (`"ff"`), and LPT makespan scheduling
//!   (`"sched"` — the third domain, proving the registry is open).
//! * [`executor`] — the parallel batch engine: JSONL job manifests fanned
//!   out over `std::thread::scope` workers with deterministic per-job
//!   seed derivation (1 worker and N workers produce byte-identical
//!   results).
//! * [`queue`] — the shared [`queue::JobQueue`]: submit/poll/cancel and
//!   per-job event tailing, the one engine under both the batch driver
//!   and the `xplain-serve` HTTP layer.
//! * [`store`] — the content-addressed on-disk result store (JSON keyed
//!   by a hash of domain id + config); repeated jobs are cache hits,
//!   corrupted entries degrade to recomputes.
//! * [`journal`] — the write-ahead job journal: accepted jobs are
//!   durable before they are visible, so a crashed server re-enqueues
//!   every accepted-but-unfinished job on restart.
//! * [`tenant`] — the multi-tenancy layer: [`tenant::TenantRegistry`]
//!   (API keys, weights, quotas, loaded from JSON config), the
//!   deficit-round-robin [`tenant::DrrScheduler`] the queue dispatches
//!   through, and token-bucket submit rates. With no config the queue
//!   runs in "open mode": one anonymous lane, byte-identical to the
//!   pre-tenancy FIFO.
//! * [`bank`] — the adversarial regression bank: every naturally
//!   finished session writes its findings' witnesses through to a
//!   content-addressed corpus under the store, which `runner bank
//!   replay` gates on and `xplain-tune` repairs against.
//! * [`watch`] — the NDJSON event wire format shared by `runner --watch`
//!   and the HTTP streaming endpoint.
//!
//! The `runner` binary (in the `xplain-serve` crate, which stacks the
//! HTTP serving layer on this one) drives all of it from the command
//! line; see the README's batch-runner quickstart.

pub mod adapters;
pub mod bank;
pub mod domain;
pub mod executor;
pub mod journal;
pub mod queue;
pub mod store;
pub mod tenant;
pub mod watch;

pub use adapters::{DpDomain, DpDslMapper, FfDomain, FfDslMapper, SchedDomain, SchedDslMapper};
pub use bank::{BankInfo, BankRecord, BankSweep, RegressionBank, BANK_SCHEMA_VERSION};
pub use domain::{
    build_session, run_domain, run_domain_full, Domain, DomainAnalysis, DomainRegistry,
    ParamDescriptor, ParamSpace,
};
pub use executor::{
    derive_seed, fan_out, manifest_to_jsonl, parse_manifest, run_manifest, run_manifest_opts,
    EventSink, JobOutcome, JobSpec, RunOptions, SessionFinish,
};
pub use journal::{JobJournal, JournalStats};
pub use queue::{
    Disposition, EventsChunk, JobPhase, JobQueue, JobView, PendingJob, QueueCounters, QueueFull,
    QueueOptions, Submitted, TenantCounters, TenantRejection,
};
pub use store::{GcReport, ResultStore, STALE_TMP_MAX_AGE};
pub use tenant::{DrrScheduler, Tenant, TenantQuota, TenantRegistry, TokenBucket};
pub use watch::{watch_line, WatchLine};
// The session vocabulary travels with the runtime so callers need not
// depend on xplain-core directly.
pub use xplain_core::session::{
    AnalysisSession, CancelToken, FinishReason, SessionBudgets, SessionBuilder, SessionCheckpoint,
    SessionError, SessionEvent,
};
// Solver counters ride on `JobOutcome` and the watch wire format, so
// their type travels too.
pub use xplain_lp::SolverCounters;
