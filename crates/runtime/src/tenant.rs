//! Multi-tenancy: identities, quotas, and weighted fair-share
//! scheduling.
//!
//! The serving layer is multi-tenant in name only without this module —
//! every submission lands in one FIFO line, so a single heavy client
//! starves everyone else. XPlain's pitch is an *interactive* tool
//! heuristic designers iterate against; interactivity dies the moment
//! one tenant's flood queues ahead of another tenant's three probes.
//! This module supplies the three pieces the queue, the HTTP layer, and
//! the mesh gateway share:
//!
//! * [`TenantRegistry`] — tenant identities loaded from a JSON config
//!   file. API keys are stored as FNV-1a64 hashes (the same hash the
//!   store keys use), never in plaintext; `Authorization: Bearer`
//!   values are hashed and looked up. With no config the registry is in
//!   **open mode**: authentication is off, every submission is the
//!   single anonymous tenant, and every byte of existing behavior is
//!   preserved — open mode is the back-compat contract, not a fallback.
//! * [`TenantQuota`] — per-tenant admission limits: an in-flight cap
//!   (queued + running executions) and a token-bucket submit rate.
//!   Either limit rejects with a *tenant-scoped* `Retry-After` instead
//!   of the global backlog estimate.
//! * [`DrrScheduler`] — deficit-round-robin dispatch over per-tenant
//!   FIFO lanes, weighted by tenant weight. Jobs are unit-cost (the
//!   queue paces per job, not per byte), so each round a lane earns
//!   `weight` credits and releases up to that many jobs. The scheduler
//!   is a plain data structure mutated only under the queue mutex, so
//!   the dispatch order is a pure function of the arrival order — one
//!   worker and N workers drain tenants in the same sequence, the same
//!   positional-determinism contract the executor pins.
//!
//! # Config schema
//!
//! ```json
//! {
//!   "tenants": [
//!     {
//!       "id": "acme",
//!       "key_fnv": "b3c1a09e77d01f22",
//!       "weight": 4,
//!       "max_in_flight": 8,
//!       "submit_rate": 5.0,
//!       "submit_burst": 10
//!     }
//!   ]
//! }
//! ```
//!
//! `key_fnv` is the zero-padded hex FNV-1a64 of the tenant's API key
//! ([`TenantRegistry::hash_api_key`] computes it). `weight` defaults to
//! 1 (0 is treated as 1 — a configured tenant is never starved
//! outright). `max_in_flight` and `submit_rate` default to 0 =
//! unlimited; `submit_burst` defaults to the ceiling of `submit_rate`
//! (at least 1) when a rate is set.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::store::fnv1a64;

/// One tenant entry as it appears in the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantEntry {
    pub id: String,
    /// FNV-1a64 of the API key, zero-padded hex (never the plaintext).
    pub key_fnv: String,
    /// Fair-share weight (default 1; 0 is clamped to 1).
    #[serde(default)]
    pub weight: u64,
    /// Max queued + running executions (0 = unlimited).
    #[serde(default)]
    pub max_in_flight: u64,
    /// Sustained submissions per second (0 = unlimited).
    #[serde(default)]
    pub submit_rate: f64,
    /// Token-bucket burst size (0 = derived from `submit_rate`).
    #[serde(default)]
    pub submit_burst: u64,
}

/// Wrapper for the config file's top level.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TenantFile {
    tenants: Vec<TenantEntry>,
}

/// Admission limits for one tenant. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Max queued + running executions.
    pub max_in_flight: Option<usize>,
    /// Token-bucket refill rate (submissions per second) and burst.
    pub rate: Option<(f64, f64)>,
}

impl TenantQuota {
    pub const UNLIMITED: TenantQuota = TenantQuota {
        max_in_flight: None,
        rate: None,
    };
}

/// One resolved tenant.
#[derive(Debug, Clone)]
pub struct Tenant {
    pub id: String,
    /// Fair-share weight, already clamped to >= 1.
    pub weight: u64,
    pub quota: TenantQuota,
}

/// The tenant directory: API-key authentication plus per-tenant weight
/// and quota lookup. See the module docs for open mode.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
    by_key: HashMap<u64, usize>,
    by_id: HashMap<String, usize>,
    enforcing: bool,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        Self::open()
    }
}

impl TenantRegistry {
    /// Open mode: no identities, no auth, one anonymous tenant. Every
    /// existing caller that never heard of tenancy gets exactly the old
    /// behavior.
    pub fn open() -> Self {
        TenantRegistry {
            tenants: Vec::new(),
            by_key: HashMap::new(),
            by_id: HashMap::new(),
            enforcing: false,
        }
    }

    /// Load a registry from a JSON config file (enforcing mode).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path.as_ref())?;
        Self::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.as_ref().display()),
            )
        })
    }

    /// Parse a registry from config JSON (enforcing mode).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let file: TenantFile =
            serde_json::from_str(text).map_err(|e| format!("bad tenant config: {e}"))?;
        if file.tenants.is_empty() {
            return Err("tenant config lists no tenants".to_string());
        }
        let mut tenants = Vec::with_capacity(file.tenants.len());
        let mut by_key = HashMap::new();
        let mut by_id = HashMap::new();
        for entry in file.tenants {
            if entry.id.is_empty() {
                return Err("tenant with empty id".to_string());
            }
            let key = u64::from_str_radix(&entry.key_fnv, 16)
                .map_err(|_| format!("tenant '{}': key_fnv is not 16-hex", entry.id))?;
            let idx = tenants.len();
            if by_id.insert(entry.id.clone(), idx).is_some() {
                return Err(format!("duplicate tenant id '{}'", entry.id));
            }
            if by_key.insert(key, idx).is_some() {
                return Err(format!("tenant '{}': key_fnv collides", entry.id));
            }
            let rate = (entry.submit_rate > 0.0).then(|| {
                let burst = if entry.submit_burst > 0 {
                    entry.submit_burst as f64
                } else {
                    entry.submit_rate.ceil().max(1.0)
                };
                (entry.submit_rate, burst)
            });
            tenants.push(Tenant {
                id: entry.id,
                weight: entry.weight.max(1),
                quota: TenantQuota {
                    max_in_flight: (entry.max_in_flight > 0)
                        .then_some(entry.max_in_flight as usize),
                    rate,
                },
            });
        }
        Ok(TenantRegistry {
            tenants,
            by_key,
            by_id,
            enforcing: true,
        })
    }

    /// The zero-padded hex FNV-1a64 of an API key — what `key_fnv`
    /// holds in the config file.
    pub fn hash_api_key(api_key: &str) -> String {
        format!("{:016x}", fnv1a64(api_key.as_bytes()))
    }

    /// Whether authentication is on (a config was loaded). Open mode
    /// answers false and every lookup below answers `None`.
    pub fn enforcing(&self) -> bool {
        self.enforcing
    }

    /// Resolve a presented API key (the `Bearer` value) to its tenant.
    pub fn authenticate(&self, api_key: &str) -> Option<&Tenant> {
        let key = fnv1a64(api_key.as_bytes());
        self.by_key.get(&key).map(|&i| &self.tenants[i])
    }

    /// Resolve a tenant id (the mesh gateway forwards ids, not keys).
    pub fn lookup(&self, id: &str) -> Option<&Tenant> {
        self.by_id.get(id).map(|&i| &self.tenants[i])
    }

    /// All configured tenants (empty in open mode).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Weight for a tenant id; unknown ids (and the anonymous tenant)
    /// weigh 1 so an attribution surviving a config change still
    /// schedules.
    pub fn weight_of(&self, id: Option<&str>) -> u64 {
        id.and_then(|id| self.lookup(id))
            .map(|t| t.weight)
            .unwrap_or(1)
    }

    /// Quota for a tenant id; unknown ids are unlimited.
    pub fn quota_of(&self, id: Option<&str>) -> TenantQuota {
        id.and_then(|id| self.lookup(id))
            .map(|t| t.quota)
            .unwrap_or(TenantQuota::UNLIMITED)
    }
}

/// A token bucket: `rate` tokens/sec refill up to `burst`; each
/// submission takes one. [`TokenBucket::try_take`] answers how long
/// until the next token when empty — the tenant-scoped `Retry-After`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(rate: f64, burst: f64, now: Instant) -> Self {
        TokenBucket {
            rate: rate.max(f64::MIN_POSITIVE),
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            last: now,
        }
    }

    /// Take one token, or answer the whole seconds until one refills.
    pub fn try_take(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - self.tokens) / self.rate;
            Err(wait.ceil().max(1.0) as u64)
        }
    }
}

/// Deficit round robin over per-tenant FIFO lanes.
///
/// Items are opaque (the queue stores slot indices). Lanes are created
/// on first arrival in arrival order; each lane is strict FIFO. A
/// dispatch round walks the lanes in creation order: a lane with
/// backlog earns `weight` credits when its turn starts and releases one
/// item per credit before the cursor moves on. Unit-cost DRR like this
/// is exactly weighted round robin, and with a single lane it
/// degenerates to the plain FIFO the queue shipped with — the open-mode
/// back-compat contract.
///
/// All mutation happens under the owning queue's mutex, so the pop
/// sequence is a pure function of the arrival sequence — worker count
/// never changes which tenant's job dispatches next.
#[derive(Debug, Clone, Default)]
pub struct DrrScheduler {
    lanes: Vec<DrrLane>,
    by_tenant: HashMap<Option<String>, usize>,
    cursor: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct DrrLane {
    tenant: Option<String>,
    weight: u64,
    deficit: u64,
    queue: std::collections::VecDeque<usize>,
}

impl DrrScheduler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items in one tenant's lane (the tenant-scoped backlog an
    /// admission layer reports).
    pub fn lane_depth(&self, tenant: Option<&str>) -> usize {
        self.lane_index(tenant)
            .map(|i| self.lanes[i].queue.len())
            .unwrap_or(0)
    }

    /// Sum of weights over lanes with backlog — the denominator of a
    /// tenant's drain share.
    pub fn active_weight(&self) -> u64 {
        self.lanes
            .iter()
            .filter(|l| !l.queue.is_empty())
            .map(|l| l.weight)
            .sum()
    }

    fn lane_index(&self, tenant: Option<&str>) -> Option<usize> {
        // HashMap<Option<String>> cannot be probed with Option<&str>
        // directly; two probes avoid allocating on the hot anonymous
        // path.
        match tenant {
            None => self.by_tenant.get(&None).copied(),
            Some(id) => self.by_tenant.get(&Some(id.to_string())).copied(),
        }
    }

    /// Append an item to its tenant's lane, creating the lane (with the
    /// given weight, clamped to >= 1) on first arrival.
    pub fn push(&mut self, tenant: Option<&str>, weight: u64, item: usize) {
        let lane = match self.lane_index(tenant) {
            Some(i) => i,
            None => {
                let i = self.lanes.len();
                let tenant_owned = tenant.map(|t| t.to_string());
                self.lanes.push(DrrLane {
                    tenant: tenant_owned.clone(),
                    weight: weight.max(1),
                    deficit: 0,
                    queue: std::collections::VecDeque::new(),
                });
                self.by_tenant.insert(tenant_owned, i);
                i
            }
        };
        self.lanes[lane].queue.push_back(item);
        self.len += 1;
    }

    /// Release the next item under DRR. `None` only when empty.
    pub fn pop(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let n = self.lanes.len();
        loop {
            let lane = &mut self.lanes[self.cursor % n];
            if lane.queue.is_empty() {
                // An empty lane forfeits its credits — deficits never
                // accumulate across idle periods, so a returning tenant
                // cannot burst past its weight.
                lane.deficit = 0;
                self.cursor = (self.cursor + 1) % n;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            let item = lane.queue.pop_front().expect("non-empty lane");
            lane.deficit -= 1;
            if lane.deficit == 0 || lane.queue.is_empty() {
                lane.deficit = 0;
                self.cursor = (self.cursor + 1) % n;
            }
            self.len -= 1;
            return Some(item);
        }
    }

    /// Remove specific items wherever they sit (cancellation).
    pub fn remove(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for lane in &mut self.lanes {
            let before = lane.queue.len();
            lane.queue.retain(|&i| keep(i));
            self.len -= before - lane.queue.len();
        }
    }

    /// Drain every lane, in projected dispatch order.
    pub fn drain(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(i) = self.pop() {
            out.push(i);
        }
        out
    }

    /// Rotate an item to the back of its own lane (a donated job stays
    /// queued as the safety net, but yields to the rest of its tenant's
    /// line).
    pub fn rotate_to_back(&mut self, item: usize) {
        for lane in &mut self.lanes {
            if let Some(pos) = lane.queue.iter().position(|&i| i == item) {
                lane.queue.remove(pos);
                lane.queue.push_back(item);
                return;
            }
        }
    }

    /// The order items would dispatch in if no more arrived — a pure
    /// projection (clones the lane state; lanes are few and shallow).
    /// With one lane this is the lane itself: the FIFO snapshot the
    /// open-mode `/v1/queue` surface always showed.
    pub fn projected_order(&self) -> Vec<usize> {
        let mut copy = self.clone();
        copy.drain()
    }

    /// Per-lane snapshot: (tenant, weight, depth), lanes in creation
    /// order.
    pub fn lanes(&self) -> Vec<(Option<String>, u64, usize)> {
        self.lanes
            .iter()
            .map(|l| (l.tenant.clone(), l.weight, l.queue.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry_json() -> String {
        format!(
            r#"{{"tenants": [
                {{"id": "heavy", "key_fnv": "{}", "weight": 3, "max_in_flight": 8, "submit_rate": 5.0, "submit_burst": 10}},
                {{"id": "light", "key_fnv": "{}", "weight": 1}}
            ]}}"#,
            TenantRegistry::hash_api_key("heavy-key"),
            TenantRegistry::hash_api_key("light-key"),
        )
    }

    #[test]
    fn registry_authenticates_by_key_hash_and_looks_up_by_id() {
        let reg = TenantRegistry::from_json(&registry_json()).unwrap();
        assert!(reg.enforcing());
        assert_eq!(reg.tenants().len(), 2);
        let heavy = reg.authenticate("heavy-key").unwrap();
        assert_eq!(heavy.id, "heavy");
        assert_eq!(heavy.weight, 3);
        assert_eq!(heavy.quota.max_in_flight, Some(8));
        assert_eq!(heavy.quota.rate, Some((5.0, 10.0)));
        // Unknown key, unknown id.
        assert!(reg.authenticate("wrong-key").is_none());
        assert!(reg.lookup("nobody").is_none());
        // Defaults: weight clamps to 1, quotas unlimited.
        let light = reg.lookup("light").unwrap();
        assert_eq!(light.weight, 1);
        assert_eq!(light.quota, TenantQuota::UNLIMITED);
        assert_eq!(reg.weight_of(Some("heavy")), 3);
        assert_eq!(reg.weight_of(Some("gone")), 1);
        assert_eq!(reg.weight_of(None), 1);
    }

    #[test]
    fn registry_rejects_malformed_configs() {
        assert!(TenantRegistry::from_json("{}").is_err());
        assert!(TenantRegistry::from_json(r#"{"tenants": []}"#).is_err());
        assert!(TenantRegistry::from_json(
            r#"{"tenants": [{"id": "", "key_fnv": "00000000000000aa"}]}"#
        )
        .is_err());
        assert!(
            TenantRegistry::from_json(r#"{"tenants": [{"id": "a", "key_fnv": "zz"}]}"#).is_err()
        );
        let dup_id = r#"{"tenants": [
            {"id": "a", "key_fnv": "00000000000000aa"},
            {"id": "a", "key_fnv": "00000000000000ab"}
        ]}"#;
        assert!(TenantRegistry::from_json(dup_id).is_err());
        let dup_key = r#"{"tenants": [
            {"id": "a", "key_fnv": "00000000000000aa"},
            {"id": "b", "key_fnv": "00000000000000aa"}
        ]}"#;
        assert!(TenantRegistry::from_json(dup_key).is_err());
    }

    #[test]
    fn open_mode_registry_authenticates_nothing() {
        let reg = TenantRegistry::open();
        assert!(!reg.enforcing());
        assert!(reg.authenticate("anything").is_none());
        assert!(reg.tenants().is_empty());
        assert_eq!(reg.weight_of(None), 1);
        assert_eq!(reg.quota_of(None), TenantQuota::UNLIMITED);
    }

    #[test]
    fn token_bucket_refills_at_rate_and_reports_whole_second_waits() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2.0, 2.0, t0);
        assert!(bucket.try_take(t0).is_ok());
        assert!(bucket.try_take(t0).is_ok());
        // Empty: the wait is the time to one token, ceiled, >= 1.
        let wait = bucket.try_take(t0).unwrap_err();
        assert_eq!(wait, 1);
        // Half a second refills one token at 2/sec.
        assert!(bucket.try_take(t0 + Duration::from_millis(600)).is_ok());
        // Burst caps accumulation: a long idle refills to burst, no more.
        let mut bucket = TokenBucket::new(1.0, 2.0, t0);
        let later = t0 + Duration::from_secs(60);
        assert!(bucket.try_take(later).is_ok());
        assert!(bucket.try_take(later).is_ok());
        assert!(bucket.try_take(later).is_err());
    }

    #[test]
    fn single_lane_drr_is_plain_fifo() {
        let mut s = DrrScheduler::new();
        for i in 0..5 {
            s.push(None, 1, i);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.projected_order(), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.drain(), vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn weighted_lanes_interleave_by_weight() {
        let mut s = DrrScheduler::new();
        // heavy (weight 3) arrives first with 6 jobs, light (weight 1)
        // with 2. One round: 3 heavy, 1 light; next round: 3 heavy, 1
        // light.
        for i in 0..6 {
            s.push(Some("heavy"), 3, i);
        }
        for i in 10..12 {
            s.push(Some("light"), 1, i);
        }
        assert_eq!(s.drain(), vec![0, 1, 2, 10, 3, 4, 5, 11]);
    }

    #[test]
    fn empty_lane_forfeits_credit_and_rotation_stays_in_lane() {
        let mut s = DrrScheduler::new();
        s.push(Some("a"), 2, 0);
        s.push(Some("b"), 1, 10);
        // Drain a entirely; later arrivals must not inherit stale
        // deficit.
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(10));
        s.push(Some("a"), 2, 1);
        s.push(Some("a"), 2, 2);
        s.push(Some("b"), 1, 11);
        let order = s.projected_order();
        assert_eq!(order, vec![1, 2, 11]);
        // rotate_to_back moves within the lane only.
        s.rotate_to_back(1);
        assert_eq!(s.drain(), vec![2, 1, 11]);
    }

    #[test]
    fn remove_filters_across_lanes() {
        let mut s = DrrScheduler::new();
        s.push(Some("a"), 1, 0);
        s.push(Some("b"), 1, 1);
        s.push(Some("a"), 1, 2);
        s.remove(|i| i != 1 && i != 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.drain(), vec![0]);
    }

    #[test]
    fn lane_depth_and_active_weight_track_backlog() {
        let mut s = DrrScheduler::new();
        s.push(Some("a"), 3, 0);
        s.push(Some("a"), 3, 1);
        s.push(Some("b"), 1, 2);
        assert_eq!(s.lane_depth(Some("a")), 2);
        assert_eq!(s.lane_depth(Some("b")), 1);
        assert_eq!(s.lane_depth(Some("zzz")), 0);
        assert_eq!(s.active_weight(), 4);
        s.pop();
        s.pop();
        s.pop();
        // Drained lanes stop counting toward the share denominator.
        s.push(Some("b"), 1, 3);
        assert_eq!(s.active_weight(), 1);
    }
}
