//! `runner` — drive the batch-analysis engine from the command line.
//!
//! ```text
//! runner --manifest jobs.jsonl [--workers N] [--store DIR] [--json]
//! runner --smoke [--workers N] [--store DIR]
//! runner --list-domains | --emit-manifest
//!
//!   --manifest PATH   JSONL manifest: one {"domain", "config", "seed"}
//!                     object per line (# starts a comment line)
//!   --workers N       worker threads (0 = auto) [default: 0]
//!   --store DIR       content-addressed result store; omit to disable
//!                     caching
//!   --json            print the machine-readable JSON outcome array
//!                     instead of the summary table
//!   --list-domains    list registered domain ids and exit
//!   --emit-manifest   print an editable one-job-per-domain JSONL
//!                     manifest (default pipeline config) and exit
//!   --smoke           run the built-in one-job-per-domain manifest three
//!                     ways (1 worker, N workers, N workers against the
//!                     warm store) and fail unless all three agree
//!                     byte-for-byte and the third is pure cache hits.
//!                     Uses its own `runner-smoke-store/` scratch
//!                     subdirectory (under --store when given); existing
//!                     cache entries are never touched
//! ```
//!
//! Exit status: 0 on success; 1 on any job error, determinism mismatch,
//! or cache inconsistency; 2 on usage errors.

use xplain_core::pipeline::PipelineConfig;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{
    manifest_to_jsonl, parse_manifest, run_manifest, DomainRegistry, JobOutcome, JobSpec,
    ResultStore,
};

struct Args {
    manifest: Option<String>,
    workers: usize,
    store: Option<String>,
    json: bool,
    list_domains: bool,
    emit_manifest: bool,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        manifest: None,
        workers: 0,
        store: None,
        json: false,
        list_domains: false,
        emit_manifest: false,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifest" => args.manifest = Some(it.next().ok_or("--manifest needs a path")?),
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a count")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--store" => args.store = Some(it.next().ok_or("--store needs a directory")?),
            "--json" => args.json = true,
            "--list-domains" => args.list_domains = true,
            "--emit-manifest" => args.emit_manifest = true,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
runner — XPlain batch-analysis engine

usage:
  runner --manifest jobs.jsonl [--workers N] [--store DIR] [--json]
  runner --smoke [--workers N] [--store DIR]
  runner --list-domains | --emit-manifest
";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("runner: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let registry = DomainRegistry::builtin();

    if args.list_domains {
        for id in registry.ids() {
            let d = registry.get(&id).expect("listed id resolves");
            println!("{id:<8} {}", d.description());
        }
        return;
    }

    if args.emit_manifest {
        println!(
            "# one job per registered domain; edit configs/seeds and feed back via --manifest"
        );
        println!(
            "# each job's pipeline seed derives from its \"seed\" field and its line position;"
        );
        println!(
            "# the \"seed\" inside \"config\" is overwritten at run time — edit the outer one"
        );
        print!("{}", manifest_to_jsonl(&default_manifest(&registry)));
        return;
    }

    if args.smoke {
        std::process::exit(run_smoke(&registry, &args));
    }

    let Some(path) = &args.manifest else {
        eprintln!("runner: --manifest, --smoke, or --list-domains required\n{USAGE}");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("runner: cannot read manifest '{path}': {e}");
            std::process::exit(2);
        }
    };
    let jobs = match parse_manifest(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("runner: {e}");
            std::process::exit(2);
        }
    };

    let store = args.store.as_ref().map(ResultStore::new);
    let outcomes = run_manifest(&registry, &jobs, store.as_ref(), args.workers);

    if args.json {
        println!(
            "{}",
            serde_json::to_string(&outcomes).expect("outcomes serialize")
        );
    } else {
        print!("{}", summary_table(&outcomes));
    }

    if outcomes.iter().any(|o| o.error.is_some()) {
        std::process::exit(1);
    }
}

/// Render outcomes as a fixed-width summary table.
fn summary_table(outcomes: &[JobOutcome]) -> String {
    let mut out = String::new();
    out.push_str(
        "  job  domain    seed              cache  findings  rejected  oracle-evals  lp-solves  warm%  ms\n",
    );
    for o in outcomes {
        let (findings, rejected, evals) = o
            .result
            .as_ref()
            .map(|r| (r.findings.len(), r.rejected, r.oracle_evaluations))
            .unwrap_or((0, 0, 0));
        let warm_pct = if o.solver.lp_solves > 0 {
            100.0 * o.solver.lp_warm_hits as f64 / o.solver.lp_solves as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<4} {:<9} {:016x}  {:<5} {:<9} {:<9} {:<13} {:<10} {:<6.1} {}\n",
            o.index,
            o.domain,
            o.derived_seed,
            if o.cache_hit { "hit" } else { "miss" },
            findings,
            rejected,
            evals,
            o.solver.lp_solves,
            warm_pct,
            o.wall_time_ms,
        ));
        if let Some(err) = &o.error {
            out.push_str(&format!("       ERROR: {err}\n"));
        }
    }
    out
}

/// CI-sized pipeline config for the smoke manifest.
fn smoke_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        significance: SignificanceParams {
            pairs: 60,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 120,
            threads: 2,
            ..Default::default()
        },
        coverage_samples: 300,
        ..Default::default()
    }
}

/// One default-config job per registered domain.
fn default_manifest(registry: &DomainRegistry) -> Vec<JobSpec> {
    registry
        .ids()
        .into_iter()
        .map(|id| JobSpec {
            domain: id,
            config: PipelineConfig::default(),
            seed: 7,
        })
        .collect()
}

/// The zero-setup self-check gating CI: one job per registered domain,
/// run three ways.
///
/// 1. serial (1 worker, no store) — the reference;
/// 2. parallel (N workers, cold store) — must match 1 byte-for-byte;
/// 3. parallel again (warm store) — must be all cache hits and match 2.
fn run_smoke(registry: &DomainRegistry, args: &Args) -> i32 {
    let jobs: Vec<JobSpec> = registry
        .ids()
        .into_iter()
        .map(|id| JobSpec {
            domain: id,
            config: smoke_config(),
            seed: 0x5A05E,
        })
        .collect();
    println!(
        "smoke: {} jobs (one per domain: {})",
        jobs.len(),
        registry.ids().join(", ")
    );
    let workers = if args.workers == 0 { 4 } else { args.workers };

    // The smoke needs a cold store, so it owns a dedicated scratch
    // subdirectory (under --store's path when given) and never touches
    // the user's actual cache entries.
    let base = args.store.clone().unwrap_or_else(|| "target".into());
    let store_dir = std::path::Path::new(&base).join("runner-smoke-store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ResultStore::new(&store_dir);

    let serial = run_manifest(registry, &jobs, None, 1);
    let parallel = run_manifest(registry, &jobs, Some(&store), workers);
    let cached = run_manifest(registry, &jobs, Some(&store), workers);

    print!("{}", summary_table(&parallel));

    let mut failures = 0;
    for ((s, p), c) in serial.iter().zip(&parallel).zip(&cached) {
        let id = format!("job {} ({})", s.index, s.domain);
        for o in [s, p, c] {
            if let Some(err) = &o.error {
                eprintln!("smoke FAIL: {id}: {err}");
                failures += 1;
            }
        }
        let sj = serde_json::to_string(&s.result).expect("result serializes");
        let pj = serde_json::to_string(&p.result).expect("result serializes");
        let cj = serde_json::to_string(&c.result).expect("result serializes");
        if sj != pj {
            eprintln!("smoke FAIL: {id}: 1-worker and {workers}-worker results differ");
            failures += 1;
        }
        if pj != cj {
            eprintln!("smoke FAIL: {id}: cached result differs from computed result");
            failures += 1;
        }
        if !c.cache_hit {
            eprintln!("smoke FAIL: {id}: second store pass was not a cache hit");
            failures += 1;
        }
        if s.result.as_ref().is_none_or(|r| r.findings.is_empty()) {
            eprintln!("smoke FAIL: {id}: pipeline found no significant subspace");
            failures += 1;
        }
    }
    if failures == 0 {
        println!(
            "smoke OK: serial ≡ {workers}-worker ≡ cached for all {} jobs (store: {})",
            jobs.len(),
            store_dir.display()
        );
        0
    } else {
        eprintln!("smoke: {failures} failure(s)");
        1
    }
}
