//! The NDJSON event wire format shared by `runner --watch` and the
//! `xplain-serve` streaming endpoint.
//!
//! One [`WatchLine`] per session event: `{"job", "domain", "kind",
//! "solver", "event"}`. Because both the CLI sink and the HTTP event
//! stream serialize through [`watch_line`], a job streamed over HTTP is
//! byte-identical to the same job watched from the batch runner — the
//! property the serve smoke test pins (terminal lines excepted only for
//! the nondeterministic `wall_time_ms` execution metadata inside the
//! embedded result).
//!
//! `solver` is populated on terminal (`"finished"`) lines only and
//! carries the session's accumulated [`SolverCounters`] — the same delta
//! the batch summary table prints from `JobOutcome::solver`, which the
//! watch stream used to drop (the batch path normalizes the counters out
//! of the stored result *after* the stream ends, so NDJSON consumers had
//! no per-job solver numbers at all).

use serde::{Deserialize, Serialize};
use xplain_core::session::SessionEvent;
use xplain_lp::SolverCounters;

/// One NDJSON `--watch` line. Emitted per session event and re-parsed by
/// the `--smoke --watch` CI gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchLine {
    /// Manifest index (batch) or 0 (single HTTP submissions).
    pub job: usize,
    pub domain: String,
    /// [`SessionEvent::kind`] of the embedded event.
    pub kind: String,
    /// The per-job solver counter delta — terminal lines only (`None`,
    /// serialized as `null`, elsewhere). Equals `JobOutcome::solver` for
    /// a computed job: cumulative across resumed segments, a superset
    /// under concurrent workers (the same process-global attribution
    /// caveat `SolverCounters` documents).
    #[serde(default)]
    pub solver: Option<SolverCounters>,
    pub event: SessionEvent,
}

impl WatchLine {
    /// Build the line for one event of one job.
    pub fn new(job: usize, domain: &str, event: &SessionEvent) -> Self {
        let solver = match event {
            SessionEvent::Finished { result, .. } => Some(result.solver),
            _ => None,
        };
        WatchLine {
            job,
            domain: domain.to_string(),
            kind: event.kind().to_string(),
            solver,
            event: event.clone(),
        }
    }
}

/// Serialize one event as its NDJSON watch line (no trailing newline).
pub fn watch_line(job: usize, domain: &str, event: &SessionEvent) -> String {
    serde_json::to_string(&WatchLine::new(job, domain, event)).expect("watch lines serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_core::pipeline::{PipelineResult, PIPELINE_SCHEMA_VERSION};
    use xplain_core::session::FinishReason;

    #[test]
    fn non_terminal_lines_have_null_solver() {
        let event = SessionEvent::AnalyzerProbe {
            call: 2,
            gap: Some(1.5),
            accepted: true,
        };
        let line = watch_line(3, "dp", &event);
        let parsed: WatchLine = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed.job, 3);
        assert_eq!(parsed.domain, "dp");
        assert_eq!(parsed.kind, "analyzer_probe");
        assert!(parsed.solver.is_none());
        assert!(matches!(
            parsed.event,
            SessionEvent::AnalyzerProbe { call: 2, .. }
        ));
    }

    #[test]
    fn terminal_lines_carry_the_solver_delta() {
        let mut result = PipelineResult {
            schema_version: PIPELINE_SCHEMA_VERSION,
            findings: Vec::new(),
            rejected: 0,
            analyzer_calls: 1,
            coverage: None,
            oracle_evaluations: 10,
            wall_time_ms: 0,
            solver: SolverCounters::default(),
        };
        result.solver.lp_solves = 42;
        result.solver.lp_warm_hits = 40;
        let event = SessionEvent::Finished {
            reason: FinishReason::SpaceExhausted,
            result,
        };
        let line = watch_line(0, "sched", &event);
        let parsed: WatchLine = serde_json::from_str(&line).unwrap();
        assert_eq!(parsed.kind, "finished");
        let solver = parsed.solver.expect("terminal line carries solver delta");
        assert_eq!(solver.lp_solves, 42);
        assert_eq!(solver.lp_warm_hits, 40);
    }
}
