//! Write-ahead job journal: accepted jobs survive a crash.
//!
//! The store's checkpoints only protect *running* sessions — a job that
//! was accepted (HTTP `202`, disposition `enqueued`) but not yet picked
//! up by a worker lived nowhere but in queue memory, so a crash silently
//! dropped it. [`JobJournal`] closes that hole: the queue writes every
//! serving-path lifecycle transition through an append-only journal
//! *before* the transition becomes visible, and a restarted process
//! replays the journal to re-enqueue every accepted-but-unfinished job
//! in its original acceptance order.
//!
//! # Record format
//!
//! A journal is a directory of segment files (`seg-NNNNNNNN.wal`). Each
//! segment is a sequence of length-prefixed, checksummed frames:
//!
//! ```text
//! [payload len: u32 LE][FNV-1a64 of payload: u64 LE][payload bytes]
//! ```
//!
//! The payload is the JSON of one `JournalRecord` — `kind` is one of
//! `accepted` (carries the full [`JobSpec`]), `started`, `done`, or
//! `cancelled`; `id` is the job's content key in the same zero-padded
//! hex used everywhere else (JSON numbers here are f64-backed, so a raw
//! `u64` key would not round-trip). A torn or corrupt frame ends replay
//! of *that segment* — everything before it is kept, everything after
//! is unreachable anyway (frames are not self-synchronizing), and a
//! job whose terminal record was lost is simply re-run into a store
//! cache hit. Corruption degrades to duplicate work, never to loss.
//!
//! # Recovery state machine
//!
//! Replay folds records per key, latest wins: `accepted` → live,
//! `started` → live (a crash mid-run resumes from the session
//! checkpoint), `done`/`cancelled` → terminal. Records for unknown keys
//! (their `accepted` fell in a compacted or corrupt segment) are
//! ignored. The live set, in first-acceptance order, is what
//! [`JobJournal::take_recovered`] hands the queue to re-enqueue.
//!
//! # Rotation and compaction
//!
//! Appends go to the newest segment; when it exceeds the rotation
//! threshold it is sealed and a fresh one is opened. Compaction drops
//! every sealed segment: fully-terminal segments are dropped outright,
//! and any still-live jobs are first re-written (as fresh `accepted`
//! records) into the active segment so no information leaves the disk
//! before its replacement is durable. Compaction runs when sealed bytes
//! accumulate and once at open — so across repeated restarts the
//! journal collapses to the live set plus recent activity, keeping its
//! on-disk size bounded regardless of how many jobs have flowed
//! through.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::executor::JobSpec;
use crate::store::{fnv1a64, fsync_dir};

/// Seal the active segment once it grows past this many bytes.
pub const DEFAULT_ROTATE_BYTES: u64 = 64 * 1024;
/// Replay refuses frames larger than this (a corrupt length prefix must
/// not trigger a gigabyte allocation).
const MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;
/// Frame header: u32 payload length + u64 payload checksum.
const FRAME_HEADER: usize = 12;

/// One journal record on the wire. `spec` and `tenant` ride only on
/// `accepted`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalRecord {
    kind: String,
    /// Content key as zero-padded hex (see module docs for why not u64).
    id: String,
    #[serde(default)]
    spec: Option<JobSpec>,
    /// Tenant attribution (`None` for anonymous / open-mode
    /// submissions, and absent in journals written before tenancy —
    /// `default` keeps old segments replayable).
    #[serde(default)]
    tenant: Option<String>,
}

/// Where a journaled job stands after folding its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    /// Accepted (and possibly started) but not finished — re-enqueue on
    /// recovery.
    Live,
    /// Done or cancelled — nothing to recover.
    Terminal,
}

/// Point-in-time journal gauges (the `journal` block of
/// `GET /v1/metrics`, and the `runner gc` report).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct JournalStats {
    /// Segment files on disk (sealed + active).
    pub segments: usize,
    /// Total journal bytes on disk.
    pub bytes: u64,
    /// Accepted-but-unfinished jobs the journal is carrying.
    pub live_jobs: usize,
    /// Records appended by this process.
    pub records: u64,
    /// Jobs replayed as live when the journal was opened.
    pub recovered: usize,
    /// Appends that failed (disk trouble — durability is degraded and
    /// the metrics surface says so; the queue keeps serving).
    pub append_errors: u64,
    /// Sealed segments dropped by compaction since open.
    pub segments_compacted: u64,
    /// Bytes reclaimed by compaction since open.
    pub bytes_compacted: u64,
}

struct Inner {
    active: File,
    active_seq: u64,
    active_bytes: u64,
    /// Sealed segments: (path, bytes on disk), oldest first.
    sealed: Vec<(PathBuf, u64)>,
    /// Latest state per key. Terminal entries are pruned at compaction.
    jobs: HashMap<u64, JobState>,
    /// Latest accepted spec per live key.
    specs: HashMap<u64, JobSpec>,
    /// Tenant attribution per live key (absent = anonymous).
    tenants: HashMap<u64, String>,
    /// First-acceptance order (may hold keys gone terminal; filtered on
    /// use, pruned at compaction).
    order: Vec<u64>,
    /// Live jobs found at open, in order — drained by `take_recovered`.
    recovered: Vec<(JobSpec, Option<String>)>,
    records: u64,
    recovered_count: usize,
    segments_compacted: u64,
    bytes_compacted: u64,
}

/// The write-ahead job journal. See the module docs for the contract.
///
/// All methods are `&self` and internally synchronized; append failures
/// after open never panic or propagate — they are counted
/// ([`JournalStats::append_errors`]) and the queue keeps serving with
/// degraded durability.
pub struct JobJournal {
    dir: PathBuf,
    rotate_bytes: u64,
    inner: Mutex<Inner>,
    append_errors: AtomicU64,
}

impl JobJournal {
    /// Open (or create) the journal at `dir`, replaying every existing
    /// segment into the recovery state and compacting history down to
    /// the live set. Call [`JobJournal::take_recovered`] afterwards to
    /// collect the jobs to re-enqueue.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(dir, DEFAULT_ROTATE_BYTES)
    }

    /// [`JobJournal::open`] with an explicit rotation threshold (tests
    /// force tiny segments to exercise rotation and compaction).
    pub fn open_with(dir: impl Into<PathBuf>, rotate_bytes: u64) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut segments: Vec<(u64, PathBuf, u64)> = Vec::new();
        for entry in fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            segments.push((seq, path, bytes));
        }
        segments.sort_by_key(|(seq, _, _)| *seq);

        let mut jobs = HashMap::new();
        let mut specs = HashMap::new();
        let mut tenants = HashMap::new();
        let mut order = Vec::new();
        for (_, path, _) in &segments {
            replay_segment(path, &mut jobs, &mut specs, &mut tenants, &mut order);
        }
        let recovered: Vec<(JobSpec, Option<String>)> = order
            .iter()
            .filter(|k| jobs.get(k) == Some(&JobState::Live))
            .filter_map(|k| specs.get(k).map(|s| (s.clone(), tenants.get(k).cloned())))
            .collect();
        let recovered_count = recovered.len();

        let active_seq = segments.last().map(|(s, _, _)| s + 1).unwrap_or(0);
        let active = open_segment(&dir, active_seq)?;
        fsync_dir(&dir);

        let journal = JobJournal {
            dir,
            rotate_bytes: rotate_bytes.max(1),
            inner: Mutex::new(Inner {
                active,
                active_seq,
                active_bytes: 0,
                sealed: segments.into_iter().map(|(_, p, b)| (p, b)).collect(),
                jobs,
                specs,
                tenants,
                order,
                recovered,
                records: 0,
                recovered_count,
                segments_compacted: 0,
                bytes_compacted: 0,
            }),
            append_errors: AtomicU64::new(0),
        };
        // Collapse history immediately: every restart rewrites the live
        // set and drops the old segments, so repeated crash/restart
        // cycles cannot grow the journal without bound.
        if !journal
            .inner
            .lock()
            .expect("journal state")
            .sealed
            .is_empty()
        {
            journal.compact();
        }
        Ok(journal)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Drain the jobs replayed as live at open — `(spec, tenant)` in
    /// original acceptance order. The queue re-submits each one (which
    /// re-journals it, attribution included, so fairness state survives
    /// repeated crashes); jobs that cannot be re-enqueued (queue at
    /// capacity) stay live in the journal and surface again on the next
    /// restart.
    pub fn take_recovered(&self) -> Vec<(JobSpec, Option<String>)> {
        std::mem::take(&mut self.inner.lock().expect("journal state").recovered)
    }

    /// Journal an accepted job, durably, before the queue makes it
    /// visible to workers. `tenant` is the submission's attribution
    /// (`None` for anonymous / open mode).
    pub fn record_accepted(&self, key: u64, spec: &JobSpec, tenant: Option<&str>) {
        let mut inner = self.inner.lock().expect("journal state");
        if inner.jobs.get(&key) != Some(&JobState::Live) {
            inner.order.push(key);
        }
        inner.jobs.insert(key, JobState::Live);
        inner.specs.insert(key, spec.clone());
        match tenant {
            Some(t) => {
                inner.tenants.insert(key, t.to_string());
            }
            None => {
                inner.tenants.remove(&key);
            }
        }
        self.append_locked(&mut inner, "accepted", key, Some(spec), tenant);
        self.maybe_compact_locked(&mut inner);
    }

    /// Journal a dispatch (a worker picked the job up). Ignored for keys
    /// the journal never accepted.
    pub fn record_started(&self, key: u64) {
        self.transition(key, "started", JobState::Live);
    }

    /// Journal a completion — the job reached a terminal outcome (done,
    /// errored, or budget-stopped; all stand as answers).
    pub fn record_done(&self, key: u64) {
        self.transition(key, "done", JobState::Terminal);
    }

    /// Journal a cancellation (queued-cancel, running-cancel, shutdown).
    pub fn record_cancelled(&self, key: u64) {
        self.transition(key, "cancelled", JobState::Terminal);
    }

    fn transition(&self, key: u64, kind: &str, next: JobState) {
        let mut inner = self.inner.lock().expect("journal state");
        // Only keys the journal accepted transition — a `started` for an
        // unknown key would replay as noise, so it is never written.
        if !inner.jobs.contains_key(&key) {
            return;
        }
        inner.jobs.insert(key, next);
        if next == JobState::Terminal {
            inner.specs.remove(&key);
            inner.tenants.remove(&key);
        }
        self.append_locked(&mut inner, kind, key, None, None);
        self.maybe_compact_locked(&mut inner);
    }

    /// Drop every sealed segment, first carrying still-live jobs forward
    /// into the active segment. Returns bytes reclaimed.
    pub fn compact(&self) -> u64 {
        let mut inner = self.inner.lock().expect("journal state");
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> u64 {
        if inner.sealed.is_empty() {
            return 0;
        }
        // Claim the sealed list *before* re-accepting the live set: the
        // snapshot appends below may themselves rotate the active
        // segment, and a segment sealed mid-snapshot must survive this
        // compaction round.
        let sealed = std::mem::take(&mut inner.sealed);
        // Re-accept the live set into the active segment so the sealed
        // history is redundant before it is unlinked.
        let live: Vec<(u64, JobSpec, Option<String>)> = inner
            .order
            .iter()
            .filter(|k| inner.jobs.get(k) == Some(&JobState::Live))
            .filter_map(|k| {
                inner
                    .specs
                    .get(k)
                    .map(|s| (*k, s.clone(), inner.tenants.get(k).cloned()))
            })
            .collect();
        for (key, spec, tenant) in &live {
            self.append_locked(inner, "accepted", *key, Some(spec), tenant.as_deref());
        }
        let mut reclaimed = 0u64;
        for (path, bytes) in sealed {
            if fs::remove_file(&path).is_ok() {
                reclaimed += bytes;
                inner.segments_compacted += 1;
            }
        }
        fsync_dir(&self.dir);
        inner.bytes_compacted += reclaimed;
        // Terminal keys have no on-disk representation anymore; prune
        // them so a long-lived process stays bounded in memory too.
        let jobs = std::mem::take(&mut inner.jobs);
        inner.jobs = jobs
            .into_iter()
            .filter(|(_, s)| *s == JobState::Live)
            .collect();
        let order = std::mem::take(&mut inner.order);
        let mut seen = std::collections::HashSet::new();
        inner.order = order
            .into_iter()
            .filter(|k| inner.jobs.contains_key(k) && seen.insert(*k))
            .collect();
        reclaimed
    }

    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock().expect("journal state");
        JournalStats {
            segments: inner.sealed.len() + 1,
            bytes: inner.sealed.iter().map(|(_, b)| b).sum::<u64>() + inner.active_bytes,
            live_jobs: inner
                .jobs
                .values()
                .filter(|s| **s == JobState::Live)
                .count(),
            records: inner.records,
            recovered: inner.recovered_count,
            append_errors: self.append_errors.load(Ordering::Relaxed),
            segments_compacted: inner.segments_compacted,
            bytes_compacted: inner.bytes_compacted,
        }
    }

    /// Append one frame to the active segment and fsync it (the write
    /// must be durable before the state change it records becomes
    /// visible). Failures are counted, never propagated — see the type
    /// docs.
    fn append_locked(
        &self,
        inner: &mut Inner,
        kind: &str,
        key: u64,
        spec: Option<&JobSpec>,
        tenant: Option<&str>,
    ) {
        let record = JournalRecord {
            kind: kind.to_string(),
            id: format!("{key:016x}"),
            spec: spec.cloned(),
            tenant: tenant.map(|t| t.to_string()),
        };
        let payload = match serde_json::to_string(&record) {
            Ok(p) => p.into_bytes(),
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let ok = inner
            .active
            .write_all(&frame)
            .and_then(|()| inner.active.sync_data())
            .is_ok();
        if !ok {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.active_bytes += frame.len() as u64;
        inner.records += 1;
        if inner.active_bytes >= self.rotate_bytes {
            self.rotate_locked(inner);
        }
    }

    /// Seal the active segment and open the next one. On failure the
    /// journal keeps appending to the oversized active segment —
    /// rotation is an optimization, not a correctness boundary.
    fn rotate_locked(&self, inner: &mut Inner) {
        let next_seq = inner.active_seq + 1;
        let Ok(next) = open_segment(&self.dir, next_seq) else {
            return;
        };
        fsync_dir(&self.dir);
        let sealed_path = segment_path(&self.dir, inner.active_seq);
        let sealed_bytes = inner.active_bytes;
        inner.active = next;
        inner.active_seq = next_seq;
        inner.active_bytes = 0;
        inner.sealed.push((sealed_path, sealed_bytes));
    }

    /// Collapse sealed history once a few segments' worth has piled up.
    /// Called from the public record paths only — never from inside
    /// [`JobJournal::compact_locked`]'s own snapshot appends.
    fn maybe_compact_locked(&self, inner: &mut Inner) {
        let sealed_total: u64 = inner.sealed.iter().map(|(_, b)| b).sum();
        if sealed_total >= self.rotate_bytes.saturating_mul(4) {
            self.compact_locked(inner);
        }
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.wal"))
}

fn open_segment(dir: &Path, seq: u64) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(segment_path(dir, seq))
}

/// Fold one segment's records into the recovery state. Stops at the
/// first torn or corrupt frame (see module docs); I/O errors read as an
/// empty segment.
fn replay_segment(
    path: &Path,
    jobs: &mut HashMap<u64, JobState>,
    specs: &mut HashMap<u64, JobSpec>,
    tenants: &mut HashMap<u64, String>,
    order: &mut Vec<u64>,
) {
    let Ok(bytes) = fs::read(path) else {
        return;
    };
    let mut at = 0usize;
    while at + FRAME_HEADER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_FRAME_BYTES || at + FRAME_HEADER + len > bytes.len() {
            return; // torn tail or corrupt length
        }
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if fnv1a64(payload) != sum {
            return; // corrupt frame: everything after is unreachable
        }
        at += FRAME_HEADER + len;
        let Ok(text) = std::str::from_utf8(payload) else {
            continue;
        };
        let Ok(record) = serde_json::from_str::<JournalRecord>(text) else {
            continue; // checksummed but unparsable: skip the record
        };
        let Ok(key) = u64::from_str_radix(&record.id, 16) else {
            continue;
        };
        match record.kind.as_str() {
            "accepted" => {
                if let Some(spec) = record.spec {
                    if jobs.get(&key) != Some(&JobState::Live) {
                        order.push(key);
                    }
                    jobs.insert(key, JobState::Live);
                    specs.insert(key, spec);
                    match record.tenant {
                        Some(t) => {
                            tenants.insert(key, t);
                        }
                        None => {
                            tenants.remove(&key);
                        }
                    }
                }
            }
            "started" => {
                // Live either way; only meaningful for known keys.
            }
            "done" | "cancelled" => {
                if let Some(state) = jobs.get_mut(&key) {
                    *state = JobState::Terminal;
                    specs.remove(&key);
                    tenants.remove(&key);
                }
            }
            _ => {} // future record kinds: ignore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_core::pipeline::PipelineConfig;
    use xplain_core::session::SessionBudgets;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xplain-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            domain: "dp".into(),
            config: PipelineConfig::default(),
            seed,
            budgets: SessionBudgets::unlimited(),
        }
    }

    #[test]
    fn accepted_jobs_replay_live_in_order_and_terminal_ones_do_not() {
        let dir = scratch("replay");
        {
            let journal = JobJournal::open(&dir).unwrap();
            journal.record_accepted(1, &spec(1), None);
            journal.record_accepted(2, &spec(2), None);
            journal.record_accepted(3, &spec(3), None);
            journal.record_started(2);
            journal.record_done(2);
            journal.record_cancelled(3);
            assert_eq!(journal.stats().live_jobs, 1);
        }
        let journal = JobJournal::open(&dir).unwrap();
        let recovered = journal.take_recovered();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0.seed, 1);
        assert_eq!(recovered[0].1, None);
        assert_eq!(journal.stats().recovered, 1);
        // Draining is one-shot.
        assert!(journal.take_recovered().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transitions_for_unknown_keys_are_ignored() {
        let dir = scratch("unknown");
        let journal = JobJournal::open(&dir).unwrap();
        journal.record_started(99);
        journal.record_done(99);
        journal.record_cancelled(99);
        assert_eq!(journal.stats().records, 0, "nothing written for unknowns");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance bound: repeated accept/finish churn (and repeated
    /// reopens) must not grow the journal without bound — rotation seals
    /// segments and compaction drops them once their jobs are terminal.
    #[test]
    fn compaction_bounds_disk_across_churn_and_restarts() {
        let dir = scratch("bound");
        const ROTATE: u64 = 512;
        for _ in 0..3 {
            let journal = JobJournal::open_with(&dir, ROTATE).unwrap();
            journal.take_recovered();
            for i in 0..200u64 {
                journal.record_accepted(i, &spec(i), Some("tenant-a"));
                journal.record_done(i);
            }
            let stats = journal.stats();
            assert_eq!(stats.live_jobs, 0);
            assert!(stats.segments_compacted > 0, "compaction must have run");
            assert!(
                stats.bytes <= ROTATE * 8,
                "journal grew unbounded: {} bytes",
                stats.bytes
            );
        }
        // On-disk truth, not just gauges: the directory itself is small.
        let on_disk: u64 = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        assert!(on_disk <= ROTATE * 8, "{on_disk} bytes on disk");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Live jobs must survive compaction — they are carried forward into
    /// the fresh segment before history is unlinked.
    #[test]
    fn compaction_carries_live_jobs_forward() {
        let dir = scratch("carry");
        {
            let journal = JobJournal::open_with(&dir, 256).unwrap();
            journal.record_accepted(7, &spec(7), Some("light")); // stays live throughout
            for i in 100..160u64 {
                journal.record_accepted(i, &spec(i), None);
                journal.record_done(i);
            }
            let stats = journal.stats();
            assert!(stats.segments_compacted > 0);
            assert_eq!(stats.live_jobs, 1);
        }
        let journal = JobJournal::open_with(&dir, 256).unwrap();
        let recovered = journal.take_recovered();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0.seed, 7);
        // Attribution survives compaction: the carried-forward accepted
        // record re-writes the tenant too.
        assert_eq!(recovered[0].1.as_deref(), Some("light"));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Tenant attribution rides the accepted record and replays with
    /// it; journals written before tenancy (no `tenant` field) replay
    /// as anonymous.
    #[test]
    fn tenant_attribution_replays_in_acceptance_order() {
        let dir = scratch("tenant");
        {
            let journal = JobJournal::open(&dir).unwrap();
            journal.record_accepted(1, &spec(1), Some("heavy"));
            journal.record_accepted(2, &spec(2), None);
            journal.record_accepted(3, &spec(3), Some("light"));
        }
        let journal = JobJournal::open(&dir).unwrap();
        let recovered = journal.take_recovered();
        let got: Vec<(u64, Option<&str>)> = recovered
            .iter()
            .map(|(s, t)| (s.seed, t.as_deref()))
            .collect();
        assert_eq!(got, vec![(1, Some("heavy")), (2, None), (3, Some("light"))]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A torn tail (crash mid-append) ends replay at the last good
    /// frame; everything before it is intact.
    #[test]
    fn torn_tail_degrades_to_prefix_replay() {
        let dir = scratch("torn");
        let seg = {
            let journal = JobJournal::open(&dir).unwrap();
            journal.record_accepted(1, &spec(1), None);
            journal.record_accepted(2, &spec(2), None);
            segment_path(&dir, 0)
        };
        // Simulate a torn write: a frame header promising more bytes
        // than exist.
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"trunc");
        fs::write(&seg, &bytes).unwrap();
        let journal = JobJournal::open(&dir).unwrap();
        assert_eq!(journal.take_recovered().len(), 2, "prefix survives");

        // A corrupt checksum mid-file ends that segment's replay there.
        let flipped: Vec<u8> = {
            let good = fs::read(segment_path(&dir, journal.stats().segments as u64)).ok();
            drop(good);
            let mut b = fs::read(&seg).unwrap_or_default();
            if b.len() > 20 {
                b[15] ^= 0xff;
            }
            b
        };
        drop(journal);
        let _ = fs::remove_dir_all(&dir);
        drop(flipped);
    }

    /// A checksum flip in the first frame hides the whole segment; the
    /// journal still opens (degrade, never fail).
    #[test]
    fn corrupt_frame_hides_the_rest_of_its_segment() {
        let dir = scratch("corrupt");
        {
            let journal = JobJournal::open(&dir).unwrap();
            journal.record_accepted(1, &spec(1), None);
            journal.record_accepted(2, &spec(2), None);
        }
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[FRAME_HEADER] ^= 0xff; // first payload byte
        fs::write(&seg, &bytes).unwrap();
        let journal = JobJournal::open(&dir).unwrap();
        assert!(
            journal.take_recovered().is_empty(),
            "frames after corruption are unreachable"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
