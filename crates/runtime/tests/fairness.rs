//! Weighted fair-share dispatch, pinned as property tests: deficit
//! round robin preserves per-tenant FIFO order, never starves a
//! nonzero-weight tenant, and the queue's dispatch (and every job's
//! result bytes) are identical across worker counts — the same
//! positional-determinism contract the executor pins in
//! `determinism.rs`, extended to tenant lanes.

use proptest::prelude::*;
use xplain_core::pipeline::PipelineConfig;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{
    DomainRegistry, DrrScheduler, JobQueue, JobSpec, QueueOptions, TenantRegistry,
};

/// Tenant ids for up to four lanes; index 3 is the anonymous lane.
fn lane(t: usize) -> Option<String> {
    (t < 3).then(|| format!("tenant-{t}"))
}

/// Replay a push schedule into a scheduler. `weights[t]` may be 0 to
/// exercise the clamp-to-1 contract.
fn build(pushes: &[usize], weights: &[u64]) -> DrrScheduler {
    let mut sched = DrrScheduler::new();
    for (item, &t) in pushes.iter().enumerate() {
        sched.push(lane(t).as_deref(), weights[t.min(weights.len() - 1)], item);
    }
    sched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Within one tenant, DRR is FIFO: the dispatch order restricted to
    /// any tenant's items equals their arrival order, and nothing is
    /// lost or duplicated.
    #[test]
    fn drr_preserves_per_tenant_fifo(
        pushes in proptest::collection::vec(0usize..4, 1..80),
        weights in proptest::collection::vec(0u64..5, 4usize),
    ) {
        let mut sched = build(&pushes, &weights);
        prop_assert_eq!(sched.len(), pushes.len());
        let mut popped = Vec::new();
        while let Some(item) = sched.pop() {
            popped.push(item);
        }
        prop_assert!(sched.is_empty());
        prop_assert_eq!(popped.len(), pushes.len());
        for t in 0..4 {
            let arrived: Vec<usize> = (0..pushes.len()).filter(|&i| pushes[i] == t).collect();
            let dispatched: Vec<usize> =
                popped.iter().copied().filter(|&i| pushes[i] == t).collect();
            prop_assert_eq!(arrived, dispatched, "tenant {} reordered", t);
        }
    }

    /// No starvation: while a tenant has backlog, it waits at most one
    /// full DRR round — the sum of all lane weights — between
    /// consecutive dispatches, whatever the other tenants' weights or
    /// backlogs are. (Zero configured weights clamp to 1, so every lane
    /// has a nonzero share.)
    #[test]
    fn drr_never_starves_a_backlogged_tenant(
        pushes in proptest::collection::vec(0usize..4, 4..120),
        weights in proptest::collection::vec(0u64..6, 4usize),
    ) {
        let mut sched = build(&pushes, &weights);
        // One full round dispatches `clamped weight` items per lane.
        let round: u64 = weights.iter().map(|w| (*w).max(1)).sum();
        let mut backlog = [0usize; 4];
        for &t in &pushes {
            backlog[t] += 1;
        }
        let mut waited = [0u64; 4];
        while let Some(item) = sched.pop() {
            let t = pushes[item];
            backlog[t] -= 1;
            waited[t] = 0;
            for other in 0..4 {
                if other != t && backlog[other] > 0 {
                    waited[other] += 1;
                    prop_assert!(
                        waited[other] <= round,
                        "tenant {} starved for {} dispatches (round is {})",
                        other, waited[other], round
                    );
                }
            }
        }
    }

    /// Dispatch order is a pure function of the arrival order: the
    /// projection the queue surfaces (`/v1/queue`, steal planning) is
    /// exactly what `pop` then yields, item for item.
    #[test]
    fn drr_projected_order_matches_dispatch(
        pushes in proptest::collection::vec(0usize..4, 1..60),
        weights in proptest::collection::vec(1u64..5, 4usize),
    ) {
        let mut sched = build(&pushes, &weights);
        let projected = sched.projected_order();
        let mut popped = Vec::new();
        while let Some(item) = sched.pop() {
            popped.push(item);
        }
        prop_assert_eq!(projected, popped);
    }
}

// ---------------------------------------------------------------- queue

/// Small-but-real config so each case stays fast.
fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        significance: SignificanceParams {
            pairs: 24,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 24,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 50,
        ..Default::default()
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        domain: "dp".into(),
        config: tiny_config(),
        seed,
        budgets: Default::default(),
    }
}

const TWO_TENANTS: &str = r#"{"tenants": [
    {"id": "heavy", "key_fnv": "00000000000000aa", "weight": 3},
    {"id": "light", "key_fnv": "00000000000000bb", "weight": 1}
]}"#;

/// Submit the same two-tenant workload and drain it with `workers`
/// threads; returns each job's result JSON in submission order.
fn run_two_tenant_queue(workers: usize) -> Vec<String> {
    let registry = DomainRegistry::builtin();
    let tenants = TenantRegistry::from_json(TWO_TENANTS).expect("config parses");
    let queue =
        JobQueue::new(&registry, None, QueueOptions::default(), None).with_tenants(Some(&tenants));
    let mut subs = Vec::new();
    for (tenant, seed) in [
        ("heavy", 10),
        ("heavy", 11),
        ("light", 20),
        ("heavy", 12),
        ("light", 21),
        ("heavy", 13),
    ] {
        subs.push(
            queue
                .submit_deduped_as(spec(seed), Some(tenant))
                .expect("under capacity"),
        );
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| queue.drain_worker());
        }
    });
    subs.iter()
        .map(|sub| {
            let outcome = queue.poll(sub.key).expect("job resolves").outcome.unwrap();
            serde_json::to_string(&outcome.result).expect("result serializes")
        })
        .collect()
}

/// The tenancy determinism contract end to end: 1 worker and N workers
/// produce byte-identical results per job for a mixed two-tenant
/// workload — DRR dispatch order lives under the queue mutex, so worker
/// count never leaks into outcomes.
#[test]
fn two_tenant_queue_results_are_byte_identical_across_worker_counts() {
    let serial = run_two_tenant_queue(1);
    let parallel = run_two_tenant_queue(3);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "job {i} diverged between 1 and 3 workers");
    }
}

/// Weighted interleave at the queue level: with both lanes backlogged,
/// a weight-3 tenant gets three dispatches per round to the light
/// tenant's one, and each lane stays FIFO. `pending_jobs` (the
/// `/v1/queue` projection) is the dispatch order.
#[test]
fn queue_dispatch_interleaves_by_weight() {
    let registry = DomainRegistry::builtin();
    let tenants = TenantRegistry::from_json(TWO_TENANTS).expect("config parses");
    let queue =
        JobQueue::new(&registry, None, QueueOptions::default(), None).with_tenants(Some(&tenants));
    let mut heavy_ids = Vec::new();
    let mut light_ids = Vec::new();
    for seed in 0..6u64 {
        heavy_ids.push(
            queue
                .submit_deduped_as(spec(seed), Some("heavy"))
                .unwrap()
                .id,
        );
    }
    for seed in 100..102u64 {
        light_ids.push(
            queue
                .submit_deduped_as(spec(seed), Some("light"))
                .unwrap()
                .id,
        );
    }
    let order: Vec<(Option<String>, String)> = queue
        .pending_jobs()
        .into_iter()
        .map(|p| (p.tenant, p.id))
        .collect();
    let expect: Vec<(Option<String>, String)> = [
        ("heavy", &heavy_ids[0]),
        ("heavy", &heavy_ids[1]),
        ("heavy", &heavy_ids[2]),
        ("light", &light_ids[0]),
        ("heavy", &heavy_ids[3]),
        ("heavy", &heavy_ids[4]),
        ("heavy", &heavy_ids[5]),
        ("light", &light_ids[1]),
    ]
    .into_iter()
    .map(|(t, id)| (Some(t.to_string()), id.clone()))
    .collect();
    assert_eq!(order, expect);
}
