//! The acceptance replay pin: draining an `AnalysisSession` to
//! completion produces a `PipelineResult` byte-identical (via
//! serde_json) to the **pre-redesign** `run_pipeline` for the dp/ff/sched
//! domains at default config.
//!
//! The pre-redesign loop is preserved verbatim below
//! ([`legacy_run_pipeline`]) as the oracle of this test — the decomposed
//! state machine must reproduce the monolithic loop's RNG draw sequence
//! and accounting exactly.
//!
//! One `#[test]` on purpose: solver counters are process-global, and a
//! single test per binary keeps this process free of concurrent solves,
//! so the legacy single-delta and the session's accumulated per-step
//! deltas are exactly comparable. Only `wall_time_ms` is normalized —
//! it is execution metadata (the executor zeroes it in stored results
//! for the same reason).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::GapOracle;
use xplain_analyzer::search::find_adversarial;
use xplain_core::coverage::estimate_coverage;
use xplain_core::explainer::{explain, DslMapper};
use xplain_core::features::FeatureMap;
use xplain_core::pipeline::{
    Finder, PipelineConfig, PipelineResult, SubspaceFinding, PIPELINE_SCHEMA_VERSION,
};
use xplain_core::significance::check_significance;
use xplain_core::subspace::{grow_subspace, Subspace};
use xplain_lp::SolverCounters;
use xplain_runtime::{run_domain, DomainRegistry};

/// The pre-redesign `run_pipeline`, kept byte-for-byte (modulo the
/// `schema_version` stamp, which did not exist then and is set to the
/// current constant so the serialized forms are comparable).
fn legacy_run_pipeline(
    oracle: &dyn GapOracle,
    mapper: Option<&dyn DslMapper>,
    features: &FeatureMap,
    finder: &Finder<'_>,
    config: &PipelineConfig,
) -> PipelineResult {
    let start = std::time::Instant::now();
    let solver_before = SolverCounters::snapshot();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut exclusions: Vec<Polytope> = Vec::new();
    let mut findings: Vec<SubspaceFinding> = Vec::new();
    let mut rejected = 0usize;
    let mut analyzer_calls = 0usize;
    let mut oracle_evaluations = 0usize;
    let mut first_gap: Option<f64> = None;
    let mut insignificant_strikes = 0usize;

    while findings.len() < config.max_subspaces {
        analyzer_calls += 1;
        let Some(adv) = finder(&exclusions, &mut rng) else {
            break; // no adversarial input left outside the exclusions
        };
        let reference = *first_gap.get_or_insert(adv.gap);
        if adv.gap < config.min_gap_frac * reference {
            break; // remaining regions are below the interest threshold
        }

        let subspace = grow_subspace(oracle, &adv, features, &config.subspace, &mut rng);
        oracle_evaluations += subspace.evaluations;

        let significance =
            check_significance(oracle, &subspace, &config.significance, &mut rng).ok();
        oracle_evaluations += config.significance.pairs * 2;

        let significant = significance.as_ref().is_some_and(|r| r.significant);

        exclusions.push(subspace.polytope.clone());

        if significant {
            insignificant_strikes = 0;
            let explanation = mapper.map(|m| {
                explain(
                    m,
                    &subspace,
                    &config.explainer,
                    config.seed ^ (findings.len() as u64 + 1),
                )
            });
            if let Some(e) = &explanation {
                oracle_evaluations += e.samples_used * 2;
            }
            let witness = Some(xplain_core::pipeline::Witness {
                input: subspace.seed.clone(),
                gap: subspace.seed_gap,
            });
            findings.push(SubspaceFinding {
                subspace,
                significance,
                explanation,
                witness,
            });
        } else {
            rejected += 1;
            insignificant_strikes += 1;
            if insignificant_strikes > config.max_insignificant_retries {
                break;
            }
        }
    }

    let coverage = if config.coverage_samples > 0 && !findings.is_empty() {
        let threshold = config.min_gap_frac * first_gap.unwrap_or(0.0);
        let subspaces: Vec<Subspace> = findings.iter().map(|f| f.subspace.clone()).collect();
        let report = estimate_coverage(
            oracle,
            &subspaces,
            threshold.max(1e-9),
            config.coverage_samples,
            &mut rng,
        );
        oracle_evaluations += report.samples;
        Some(report)
    } else {
        None
    };

    PipelineResult {
        schema_version: PIPELINE_SCHEMA_VERSION,
        findings,
        rejected,
        analyzer_calls,
        coverage,
        oracle_evaluations,
        wall_time_ms: start.elapsed().as_millis() as u64,
        solver: SolverCounters::snapshot().since(&solver_before),
    }
}

fn normalized(result: &PipelineResult) -> String {
    let mut r = result.clone();
    r.wall_time_ms = 0;
    serde_json::to_string(&r).expect("result serializes")
}

#[test]
fn session_drain_matches_pre_redesign_pipeline_at_default_config() {
    let registry = DomainRegistry::builtin();
    for id in registry.ids() {
        let domain = registry.get(&id).expect("builtin id resolves");
        let config = PipelineConfig::default();

        // The pre-redesign batch loop, assembled exactly the way the old
        // `run_domain` did (stop flag absent — it did not exist).
        let legacy = {
            let oracle = domain.oracle();
            let finder_oracle = domain.oracle();
            let mapper = domain.mapper();
            let features = domain.feature_schema();
            let search = domain.search_options();
            let finder = move |excl: &[Polytope], rng: &mut StdRng| {
                find_adversarial(finder_oracle.as_ref(), excl, &search, rng)
            };
            legacy_run_pipeline(
                oracle.as_ref(),
                mapper.as_deref(),
                &features,
                &finder,
                &config,
            )
        };

        // The redesigned path: session drain via the domain layer.
        let streamed = run_domain(domain, &config);

        assert!(
            !streamed.findings.is_empty(),
            "{id}: default config found nothing (vacuous pin)"
        );
        assert_eq!(
            normalized(&legacy),
            normalized(&streamed),
            "{id}: session drain diverged from the pre-redesign pipeline"
        );
    }
}
