//! Concurrent access to one store directory must never corrupt entries.
//!
//! The serving layer makes this load-bearing: multiple server workers —
//! and, across processes, a server plus a batch runner — share one
//! content-addressed directory. The store's contract under that traffic
//! is: every read returns a *valid* entry (the full bytes of some
//! committed write) or a clean miss that degrades to a recompute; never
//! a torn file, never a panic. The write-to-temp + atomic-rename
//! discipline is what guarantees it; these tests hammer exactly that.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use xplain_core::pipeline::{PipelineConfig, PipelineResult, PIPELINE_SCHEMA_VERSION};
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{run_manifest, DomainRegistry, JobSpec, ResultStore, SessionBudgets};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xplain-store-concurrency-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dummy_result(rejected: usize) -> PipelineResult {
    PipelineResult {
        schema_version: PIPELINE_SCHEMA_VERSION,
        findings: Vec::new(),
        rejected,
        analyzer_calls: 1,
        coverage: None,
        oracle_evaluations: 42,
        wall_time_ms: 0,
        solver: Default::default(),
    }
}

/// N writer threads race two distinct payloads onto the SAME key while
/// N reader threads poll it: every successful read must be one of the
/// two committed payloads, whole — a torn or interleaved file would
/// parse to garbage (miss at best, wrong bytes at worst, both counted
/// here).
#[test]
fn same_key_hammered_from_many_threads_reads_whole_entries_or_misses() {
    let store = ResultStore::new(scratch_dir("hammer"));
    let config = PipelineConfig::default();
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for writer in 0..4usize {
            let store = &store;
            let config = &config;
            scope.spawn(move || {
                for i in 0..50 {
                    // Two alternating payloads → concurrent overwrites of
                    // the same final path from different temp files.
                    let payload = dummy_result(if (writer + i) % 2 == 0 { 1 } else { 2 });
                    store
                        .insert("dp", config, &payload)
                        .expect("insert under contention");
                }
            });
        }
        for _ in 0..4usize {
            let store = &store;
            let config = &config;
            let hits = &hits;
            let misses = &misses;
            scope.spawn(move || {
                for _ in 0..200 {
                    match store.lookup("dp", config) {
                        Some(result) => {
                            assert!(
                                result.rejected == 1 || result.rejected == 2,
                                "read returned bytes no writer committed: {result:?}"
                            );
                            assert_eq!(result.oracle_evaluations, 42);
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // After the dust settles the entry is valid (writers committed 200
    // times; rename is atomic, so the final file is whole).
    let settled = store.lookup("dp", &config).expect("final entry is a hit");
    assert!(settled.rejected == 1 || settled.rejected == 2);
    // Sanity on the traffic itself: the readers genuinely raced writers.
    assert_eq!(
        hits.load(Ordering::Relaxed) + misses.load(Ordering::Relaxed),
        800
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Checkpoints follow the same discipline: concurrent saves of the same
/// key against concurrent loads never surface a torn checkpoint.
#[test]
fn checkpoint_path_is_race_safe_too() {
    use rand::rngs::StdRng;
    use xplain_analyzer::geometry::Polytope;
    use xplain_analyzer::oracle::GapOracle;
    use xplain_analyzer::search::Adversarial;
    use xplain_core::session::SessionBuilder;

    struct Flat;
    impl GapOracle for Flat {
        fn dims(&self) -> usize {
            1
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0)]
        }
        fn gap(&self, _: &[f64]) -> f64 {
            0.0
        }
    }

    let store = ResultStore::new(scratch_dir("ckpt"));
    let config = PipelineConfig::default();
    let checkpoint = SessionBuilder::new(Flat)
        .config(config.clone())
        .finder(|_: &[Polytope], _: &mut StdRng| None::<Adversarial>)
        .build()
        .unwrap()
        .checkpoint();

    std::thread::scope(|scope| {
        for _ in 0..3usize {
            let (store, config, checkpoint) = (&store, &config, &checkpoint);
            scope.spawn(move || {
                for _ in 0..50 {
                    store
                        .save_checkpoint("dp", config, checkpoint)
                        .expect("save under contention");
                }
            });
        }
        for _ in 0..3usize {
            let (store, config, checkpoint) = (&store, &config, &checkpoint);
            scope.spawn(move || {
                for _ in 0..100 {
                    if let Some(loaded) = store.load_checkpoint("dp", config) {
                        assert_eq!(loaded.schema_version, checkpoint.schema_version);
                        assert_eq!(loaded.events_emitted, checkpoint.events_emitted);
                    }
                }
            });
        }
    });
    assert!(store.load_checkpoint("dp", &config).is_some());
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Two full executors sharing one store directory, computing the same
/// manifest concurrently: both must produce results byte-identical to a
/// serial no-store reference, and the settled store entry must be the
/// canonical bytes — the "server worker + batch runner on one cache"
/// deployment shape.
#[test]
fn two_executors_share_one_store_without_corruption() {
    let tiny = PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    };
    let jobs = vec![JobSpec {
        domain: "sched".into(),
        config: tiny,
        seed: 0xC0C0,
        budgets: SessionBudgets::unlimited(),
    }];
    let registry = DomainRegistry::builtin();
    let reference = run_manifest(&registry, &jobs, None, 1);
    let reference_json = serde_json::to_string(&reference[0].result).unwrap();

    let store = ResultStore::new(scratch_dir("executors"));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (registry, jobs, store) = (&registry, &jobs, &store);
                scope.spawn(move || run_manifest(registry, jobs, Some(store), 1))
            })
            .collect();
        for handle in handles {
            let outcomes = handle.join().expect("executor thread");
            assert!(outcomes[0].error.is_none());
            assert_eq!(
                serde_json::to_string(&outcomes[0].result).unwrap(),
                reference_json,
                "a concurrent executor diverged from the serial reference"
            );
        }
    });

    // The settled entry is the canonical result, whichever writer won.
    let mut derived = jobs[0].config.clone();
    derived.seed = xplain_runtime::derive_seed(jobs[0].seed, 0);
    let settled = store
        .lookup("sched", &derived)
        .expect("shared store holds the entry");
    assert_eq!(
        serde_json::to_string(&Some(settled)).unwrap(),
        reference_json
    );
    let _ = std::fs::remove_dir_all(store.dir());
}
