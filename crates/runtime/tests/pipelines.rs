//! End-to-end pipeline runs for every registered domain — the registry
//! replaces the old hard-coded `run_dp_pipeline` / `run_ff_pipeline`
//! entry points, and the scheduling domain proves the interface is open.

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams, Trend};
use xplain_runtime::{run_domain, run_domain_full, Domain, DomainRegistry};

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 60,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 150,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn dp_pipeline_end_to_end_via_registry() {
    let registry = DomainRegistry::builtin();
    let result = run_domain(registry.get("dp").unwrap(), &fast_config());
    assert!(
        !result.findings.is_empty(),
        "pipeline found no significant subspace (rejected {})",
        result.rejected
    );
    let f = &result.findings[0];
    // The seed gap should be near the true maximum of 100.
    assert!(f.subspace.seed_gap > 80.0, "{}", f.subspace.seed_gap);
    // Significance at the paper's bar.
    let sig = f.significance.as_ref().unwrap();
    assert!(sig.significant);
    assert!(sig.test.p_value < 0.05);
    // Type-2 explanation present and pointing at the right edges.
    let ex = f.explanation.as_ref().unwrap();
    let short = ex.edges.iter().find(|e| e.label == "1~3->1-2-3").unwrap();
    let long = ex.edges.iter().find(|e| e.label == "1~3->1-4-5-3").unwrap();
    assert!(short.score < -0.5, "short score {}", short.score);
    assert!(long.score > 0.5, "long score {}", long.score);
}

#[test]
fn ff_pipeline_end_to_end_via_registry() {
    let registry = DomainRegistry::builtin();
    let result = run_domain(registry.get("ff").unwrap(), &fast_config());
    assert!(
        !result.findings.is_empty(),
        "pipeline found no significant subspace (rejected {})",
        result.rejected
    );
    let f = &result.findings[0];
    assert!(f.subspace.seed_gap >= 1.0);
    assert!(f.significance.as_ref().unwrap().significant);
}

/// The acceptance headline: the *third* domain runs the full Type-1/2/3
/// pipeline purely through the registry.
#[test]
fn sched_pipeline_types_1_2_3_end_to_end() {
    let registry = DomainRegistry::builtin();
    let analysis = run_domain_full(registry.get("sched").unwrap(), &fast_config());

    // Type 1: a significant adversarial subspace around gap >= 1.
    assert!(
        !analysis.pipeline.findings.is_empty(),
        "no significant subspace (rejected {})",
        analysis.pipeline.rejected
    );
    let f = &analysis.pipeline.findings[0];
    assert!(f.subspace.seed_gap >= 1.0 - 1e-9, "{}", f.subspace.seed_gap);
    assert!(f.significance.as_ref().unwrap().significant);

    // Type 2: the heat-map exists and some edge shows real disagreement
    // (LPT separates jobs the optimum pairs).
    let ex = f.explanation.as_ref().unwrap();
    assert!(ex.samples_used > 0);
    let strongest = ex.strongest_disagreements(1)[0];
    assert!(
        strongest.score.abs() > 0.5,
        "strongest disagreement only {}",
        strongest.score
    );

    // Type 3: the Graham-tight family yields increasing(num_machines).
    let trend = analysis
        .trends
        .iter()
        .find(|t| t.feature == "num_machines")
        .expect("increasing(num_machines) must be discovered");
    assert_eq!(trend.trend, Trend::Increasing);
    assert!(trend.p_value < 0.05);
}

#[test]
fn exclusions_accumulate_across_findings() {
    let registry = DomainRegistry::builtin();
    let config = PipelineConfig {
        max_subspaces: 3,
        ..fast_config()
    };
    let result = run_domain(registry.get("dp").unwrap(), &config);
    // Later findings must not overlap the first subspace's seed.
    if result.findings.len() >= 2 {
        let first = &result.findings[0].subspace;
        for later in &result.findings[1..] {
            assert!(
                !first.contains(&later.subspace.seed),
                "later seed inside earlier subspace"
            );
        }
    }
    assert!(result.analyzer_calls >= result.findings.len());
    assert!(result.oracle_evaluations > 0);
}

/// Registering a fourth, out-of-tree domain needs nothing beyond the
/// trait — the openness claim, demonstrated with a synthetic domain.
#[test]
fn registry_accepts_custom_domains() {
    use xplain_analyzer::oracle::GapOracle;
    use xplain_core::explainer::DslMapper;
    use xplain_core::generalizer::Observation;

    struct RidgeOracle;
    impl GapOracle for RidgeOracle {
        fn dims(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn gap(&self, x: &[f64]) -> f64 {
            // Positive gap on a diagonal ridge.
            (1.0 - (x[0] - x[1]).abs() * 4.0).max(0.0)
        }
    }

    struct RidgeDomain;
    impl Domain for RidgeDomain {
        fn id(&self) -> &str {
            "ridge"
        }
        fn description(&self) -> String {
            "synthetic diagonal-ridge gap".into()
        }
        fn oracle(&self) -> Box<dyn GapOracle> {
            Box::new(RidgeOracle)
        }
        fn mapper(&self) -> Option<Box<dyn DslMapper>> {
            None
        }
        fn seeds(&self) -> Vec<Vec<f64>> {
            vec![vec![0.5, 0.5]]
        }
        fn instance_family(&self, _seed: u64) -> Vec<Observation> {
            (1..=6)
                .map(|k| Observation {
                    features: vec![("k".to_string(), k as f64)],
                    gap: k as f64,
                })
                .collect()
        }
    }

    let mut registry = DomainRegistry::builtin();
    registry.register(Box::new(RidgeDomain));
    assert_eq!(registry.len(), 4);
    let analysis = run_domain_full(registry.get("ridge").unwrap(), &fast_config());
    assert!(!analysis.pipeline.findings.is_empty());
    // No mapper: Type 2 off, Types 1 and 3 still flow.
    assert!(analysis.pipeline.findings[0].explanation.is_none());
    assert!(analysis.trends.iter().any(|t| t.feature == "k"));
}
