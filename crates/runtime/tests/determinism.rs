//! The executor's core guarantee, pinned as a property test: the same
//! manifest run with 1 worker and with N workers yields identical
//! `PipelineResult` JSON per job, and rerunning against a warm store is
//! pure cache hits with the same bytes.

use proptest::prelude::*;
use xplain_core::pipeline::PipelineConfig;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{run_manifest, DomainRegistry, JobOutcome, JobSpec, ResultStore};

/// Small-but-real config so each property case stays fast.
fn tiny_config(pairs: usize, samples: usize, coverage: usize) -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        significance: SignificanceParams {
            pairs,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: coverage,
        ..Default::default()
    }
}

/// One job per registered domain, all sharing the manifest base seed.
fn three_domain_manifest(config: &PipelineConfig, seed: u64) -> Vec<JobSpec> {
    DomainRegistry::builtin()
        .ids()
        .into_iter()
        .map(|domain| JobSpec {
            domain,
            config: config.clone(),
            seed,
            budgets: Default::default(),
        })
        .collect()
}

fn results_json(outcomes: &[JobOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| serde_json::to_string(&o.result).expect("result serializes"))
        .collect()
}

fn scratch_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("xplain-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::new(dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The satellite requirement: serial ≡ parallel, per job, over random
    /// small configs and manifest seeds.
    #[test]
    fn serial_equals_parallel_per_job(
        seed in 0u64..1_000_000,
        pairs in 20usize..40,
        samples in 20usize..60,
        coverage in 0usize..200,
        workers in 2usize..5,
    ) {
        let jobs = three_domain_manifest(&tiny_config(pairs, samples, coverage), seed);
        let registry = DomainRegistry::builtin();
        let serial = run_manifest(&registry, &jobs, None, 1);
        let parallel = run_manifest(&registry, &jobs, None, workers);
        prop_assert_eq!(serial.len(), parallel.len());
        let sj = results_json(&serial);
        let pj = results_json(&parallel);
        for (i, (s, p)) in sj.iter().zip(&pj).collect::<Vec<_>>().into_iter().enumerate() {
            prop_assert_eq!(s, p, "job {} diverged between 1 and {} workers", i, workers);
        }
        // Derived seeds are positional: same between runs, distinct
        // across the manifest (all base seeds equal, indices differ).
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.derived_seed, p.derived_seed);
        }
        prop_assert!(serial[0].derived_seed != serial[1].derived_seed);
    }
}

/// The acceptance scenario end to end: a 3-domain manifest executed with
/// 4 workers reproduces the single-threaded results byte-for-byte, and a
/// second run over the store is all cache hits with identical bytes.
#[test]
fn three_domain_manifest_4_workers_bit_identical_with_cache_hits() {
    let registry = DomainRegistry::builtin();
    let jobs = three_domain_manifest(&tiny_config(40, 80, 200), 0xACCE97);
    assert_eq!(jobs.len(), 3, "one job per registered domain");

    let store = scratch_store("acceptance");
    let serial = run_manifest(&registry, &jobs, None, 1);
    let parallel = run_manifest(&registry, &jobs, Some(&store), 4);
    let cached = run_manifest(&registry, &jobs, Some(&store), 4);

    let sj = results_json(&serial);
    let pj = results_json(&parallel);
    let cj = results_json(&cached);
    assert_eq!(
        sj, pj,
        "1-worker vs 4-worker results must be byte-identical"
    );
    assert_eq!(pj, cj, "cached results must be byte-identical");
    for o in &parallel {
        assert!(!o.cache_hit, "cold store must compute");
        assert!(o.error.is_none());
        assert!(o.result.is_some());
    }
    for o in &cached {
        assert!(o.cache_hit, "warm store must hit ({})", o.domain);
    }
    assert_eq!(store.len(), 3);
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Corrupting a store entry between runs degrades to a recompute that
/// heals the cache — never a panic, never a wrong result.
#[test]
fn corrupted_store_entry_recovers_through_the_executor() {
    let registry = DomainRegistry::builtin();
    let jobs = three_domain_manifest(&tiny_config(30, 40, 0), 0xC0FFEE);
    let store = scratch_store("corrupt");

    let first = run_manifest(&registry, &jobs, Some(&store), 2);
    // Vandalize the sched entry (garbage bytes) and delete the dp entry.
    let mut sched_config = jobs[2].config.clone();
    sched_config.seed = first[2].derived_seed;
    std::fs::write(store.entry_path("sched", &sched_config), b"not json").unwrap();
    let mut dp_config = jobs[0].config.clone();
    dp_config.seed = first[0].derived_seed;
    std::fs::remove_file(store.entry_path("dp", &dp_config)).unwrap();

    let second = run_manifest(&registry, &jobs, Some(&store), 2);
    assert_eq!(results_json(&first), results_json(&second));
    assert!(!second[0].cache_hit, "deleted entry recomputes");
    assert!(second[1].cache_hit, "untouched entry still hits");
    assert!(!second[2].cache_hit, "corrupted entry recomputes");

    // The recompute healed the store: third run is all hits.
    let third = run_manifest(&registry, &jobs, Some(&store), 2);
    assert!(third.iter().all(|o| o.cache_hit));
    let _ = std::fs::remove_dir_all(store.dir());
}
