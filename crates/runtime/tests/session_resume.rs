//! Determinism under interruption, through the runtime layer: interrupt
//! a domain session after every event index k, persist the checkpoint
//! through the content-addressed store (exactly what a killed `runner
//! --resume` leaves behind), resume, and demand the final
//! `PipelineResult` byte-identical to the uninterrupted run's.
//!
//! One `#[test]` on purpose: solver counters are process-global, and
//! keeping this binary single-test means the uninterrupted run's
//! accumulated counters and every resumed run's (partial + rest) sum are
//! exactly comparable — so `solver` is *not* normalized here, pinning
//! that budget accounting survives interruption too. Only
//! `wall_time_ms` (pure execution metadata) is normalized.

use xplain_core::pipeline::PipelineConfig;
use xplain_core::session::{CancelToken, SessionBudgets};
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, PipelineResult, SignificanceParams};
use xplain_runtime::{build_session, DomainRegistry, ResultStore};

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 200,
        ..Default::default()
    }
}

fn normalized(result: &PipelineResult) -> String {
    let mut r = result.clone();
    r.wall_time_ms = 0;
    serde_json::to_string(&r).expect("result serializes")
}

#[test]
fn interrupt_after_every_event_resume_via_store_is_byte_identical() {
    let registry = DomainRegistry::builtin();
    // `sched` exercises the full Type-1/2 path (mapper present) at the
    // lowest oracle cost of the three builtin domains.
    let domain = registry.get("sched").expect("sched is builtin");
    let config = tiny_config();
    let store = ResultStore::new(
        std::env::temp_dir().join(format!("xplain-session-resume-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(store.dir());

    let fresh = || {
        build_session(
            domain,
            &config,
            SessionBudgets::unlimited(),
            CancelToken::new(),
            None,
        )
        .expect("fresh session builds")
    };

    let reference = fresh().drain();
    assert!(
        !reference.findings.is_empty(),
        "vacuous test: uninterrupted run found nothing"
    );
    let total_events = {
        let mut n = 0usize;
        let mut s = fresh();
        while s.next_event().is_some() {
            n += 1;
        }
        n
    };
    assert!(total_events >= 6, "expected a multi-event stream");

    for k in 0..total_events {
        // Run to event k, then abandon the session (as a kill would),
        // leaving only the persisted checkpoint behind.
        let mut session = fresh();
        for _ in 0..k {
            session.next_event().expect("event before interruption");
        }
        store
            .save_checkpoint(domain.id(), &config, &session.checkpoint())
            .expect("checkpoint persists");
        drop(session);

        let checkpoint = store
            .load_checkpoint(domain.id(), &config)
            .expect("checkpoint loads back");
        let mut resumed = build_session(
            domain,
            &config,
            SessionBudgets::unlimited(),
            CancelToken::new(),
            Some(checkpoint),
        )
        .expect("checkpoint resumes");
        let result = resumed.drain();
        assert!(
            resumed.finished_naturally(),
            "resume after event {k} did not run to completion"
        );
        assert_eq!(
            normalized(&reference),
            normalized(&result),
            "resume after event {k} diverged from the uninterrupted run"
        );
        store.clear_checkpoint(domain.id(), &config);
    }

    let _ = std::fs::remove_dir_all(store.dir());
}
