//! Executor-level streaming behavior: event sinks, budget enforcement,
//! and checkpoint-resume through `run_manifest_opts` — the API surface
//! `runner --watch/--resume/--deadline-ms/--max-analyzer-calls` drives.
//!
//! Solver counters are normalized in comparisons here (multiple tests
//! share this process, so the process-global counters bleed); the
//! single-test binaries `replay_pin` and `session_resume` pin the
//! counter accounting exactly.

use std::sync::Mutex;

use xplain_core::pipeline::PipelineConfig;
use xplain_core::session::{FinishReason, SessionBudgets, SessionEvent};
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, PipelineResult, SignificanceParams};
use xplain_runtime::{
    run_manifest, run_manifest_opts, DomainRegistry, JobSpec, ResultStore, RunOptions,
};

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 100,
        ..Default::default()
    }
}

fn job(domain: &str, budgets: SessionBudgets) -> JobSpec {
    JobSpec {
        domain: domain.into(),
        config: tiny_config(),
        seed: 0x5EED,
        budgets,
    }
}

fn normalized(result: &Option<PipelineResult>) -> String {
    let mut r = result.clone().expect("result present");
    r.wall_time_ms = 0;
    r.solver = Default::default();
    serde_json::to_string(&r).expect("result serializes")
}

fn scratch_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!(
        "xplain-streaming-exec-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::new(dir)
}

#[test]
fn event_sink_sees_the_whole_stream_in_order() {
    let registry = DomainRegistry::builtin();
    let jobs = vec![job("sched", SessionBudgets::unlimited())];
    let log: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let sink = |index: usize, event: &SessionEvent| {
        log.lock().unwrap().push((index, event.kind().to_string()));
    };
    let opts = RunOptions {
        budgets_override: None,
        resume: false,
        sink: Some(&sink),
        origin: None,
    };
    let outcomes = run_manifest_opts(&registry, &jobs, None, 1, opts);
    assert!(outcomes[0].error.is_none());
    let finish = outcomes[0].finish.as_ref().expect("session ran");
    assert!(finish.natural);
    assert!(finish.reason.is_natural());
    assert!(!finish.resumed);

    let log = log.into_inner().unwrap();
    assert_eq!(finish.events as usize, log.len());
    let kinds: Vec<&str> = log.iter().map(|(_, k)| k.as_str()).collect();
    assert_eq!(
        kinds.last(),
        Some(&"finished"),
        "stream must end with the terminal event: {kinds:?}"
    );
    assert!(kinds.contains(&"analyzer_probe"));
    assert!(kinds.contains(&"subspace_grown"));
    assert!(kinds.contains(&"significance_verdict"));
    assert!(kinds.contains(&"explanation_ready"));
    // Findings stream before the end, not at it.
    let finding_at = kinds
        .iter()
        .position(|k| *k == "explanation_ready")
        .unwrap();
    assert!(finding_at + 1 < kinds.len());
    assert!(log.iter().all(|(i, _)| *i == 0));
}

#[test]
fn analyzer_budget_stops_job_then_resume_completes_identically() {
    let registry = DomainRegistry::builtin();
    let store = scratch_store("budget-resume");

    // Two subspaces wanted, so a 1-call analyzer budget fires mid-loop
    // (with the tiny 1-subspace config the loop would finish naturally
    // before ever consulting the budget).
    let two_subspace = |budgets| {
        let mut j = job("sched", budgets);
        j.config.max_subspaces = 2;
        j
    };

    // Reference: the unbudgeted result.
    let reference = run_manifest(
        &registry,
        &[two_subspace(SessionBudgets::unlimited())],
        None,
        1,
    );
    assert!(reference[0].finish.as_ref().unwrap().natural);

    // Budgeted: one analyzer call only — stops mid-loop after the first
    // finding, deterministically.
    let budgeted_spec = two_subspace(SessionBudgets {
        max_analyzer_calls: Some(1),
        ..Default::default()
    });
    let opts = RunOptions {
        budgets_override: None,
        resume: true,
        sink: None,
        origin: None,
    };
    let stopped = run_manifest_opts(
        &registry,
        std::slice::from_ref(&budgeted_spec),
        Some(&store),
        1,
        opts,
    );
    let finish = stopped[0].finish.as_ref().expect("session ran");
    assert_eq!(finish.reason, FinishReason::AnalyzerBudgetExhausted);
    assert!(!finish.natural);
    let partial = stopped[0].result.as_ref().expect("partial result present");
    assert_eq!(partial.analyzer_calls, 1);
    assert!(partial.coverage.is_none(), "interrupted runs skip coverage");

    // The partial result must NOT have been cached as the canonical one…
    let derived_config = {
        let mut c = budgeted_spec.config.clone();
        c.seed = stopped[0].derived_seed;
        c
    };
    assert!(
        store.lookup("sched", &derived_config).is_none(),
        "budget-stopped partial result leaked into the result cache"
    );
    // …but its checkpoint must be there.
    assert!(store.load_checkpoint("sched", &derived_config).is_some());

    // Rerun without the budget and with --resume semantics: continues
    // mid-loop and lands on the byte-identical full result.
    let resumed = run_manifest_opts(
        &registry,
        &[two_subspace(SessionBudgets::unlimited())],
        Some(&store),
        1,
        opts,
    );
    let finish = resumed[0].finish.as_ref().expect("session ran");
    assert!(finish.natural);
    assert!(
        finish.resumed,
        "second run must continue from the checkpoint"
    );
    assert_eq!(
        normalized(&reference[0].result),
        normalized(&resumed[0].result)
    );
    // Natural completion commits the result and clears the checkpoint.
    assert!(store.lookup("sched", &derived_config).is_some());
    assert!(store.load_checkpoint("sched", &derived_config).is_none());

    // Third run: pure cache hit.
    let cached = run_manifest_opts(
        &registry,
        &[two_subspace(SessionBudgets::unlimited())],
        Some(&store),
        1,
        opts,
    );
    assert!(cached[0].cache_hit);
    assert_eq!(
        normalized(&reference[0].result),
        normalized(&cached[0].result)
    );

    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn deadline_zero_override_interrupts_every_job() {
    let registry = DomainRegistry::builtin();
    let jobs = vec![
        job("dp", SessionBudgets::unlimited()),
        job("ff", SessionBudgets::unlimited()),
    ];
    let opts = RunOptions {
        budgets_override: Some(SessionBudgets {
            deadline_ms: Some(0),
            ..Default::default()
        }),
        resume: false,
        sink: None,
        origin: None,
    };
    let outcomes = run_manifest_opts(&registry, &jobs, None, 2, opts);
    for o in &outcomes {
        let finish = o.finish.as_ref().expect("session ran");
        assert_eq!(
            finish.reason,
            FinishReason::DeadlineExceeded,
            "{}",
            o.domain
        );
        assert!(!finish.natural);
        let result = o.result.as_ref().unwrap();
        assert!(result.findings.is_empty());
        assert_eq!(result.analyzer_calls, 0);
    }
}

#[test]
fn outcomes_serialize_with_structured_errors_and_finish() {
    let registry = DomainRegistry::builtin();
    let jobs = vec![
        job("sched", SessionBudgets::unlimited()),
        job("no-such", SessionBudgets::unlimited()),
    ];
    let outcomes = run_manifest(&registry, &jobs, None, 1);
    let json = serde_json::to_string(&outcomes).unwrap();
    let back: Vec<xplain_runtime::JobOutcome> = serde_json::from_str(&json).unwrap();
    assert!(back[0].error.is_none());
    assert!(back[0].finish.as_ref().unwrap().natural);
    let err = back[1].error.as_ref().expect("unknown domain errors");
    assert_eq!(
        *err,
        xplain_runtime::SessionError::UnknownDomain {
            id: "no-such".into()
        }
    );
    assert!(back[1].finish.is_none());
}
