//! The candidate-based repair engine, in the petabricks shape: a
//! population of parameter vectors evolved by **elitism + mutation +
//! exploration probability**, scored by **failure-penalized worst-case
//! gap** over the regression bank's instances plus fresh deterministic
//! probes inside the discovered subspaces.
//!
//! Determinism contract: all randomness (initial population, mutation,
//! exploration) is drawn from one seeded RNG on the calling thread;
//! candidate *evaluation* is pure and fans out through the runtime's
//! [`fan_out`] with positional result slots — so `workers = 1` and
//! `workers = N` produce byte-identical [`TuneReport`]s. Probe points
//! are derived once, positionally ([`derive_seed`]) from the tuning seed
//! and the bank entry's rank, before any candidate exists, so every
//! candidate in every generation faces the identical evaluation set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xplain_runtime::bank::BankRecord;
use xplain_runtime::{derive_seed, fan_out, Domain, ParamSpace, RegressionBank};

/// Version stamp of the serialized [`TuneReport`] layout.
pub const TUNE_SCHEMA_VERSION: u32 = 1;

/// Fitness assigned to a candidate whose tuned heuristic *failed* on any
/// evaluation point (oracle returned a non-finite gap). Large but finite:
/// the JSON layer is f64-backed and cannot carry infinities, and a failed
/// candidate must still sort strictly worse than any real worst-case gap.
pub const FAILURE_FITNESS: f64 = 1e18;

/// Gaps above this are "still adversarial" when listing the instances
/// that continue to defeat the best candidate.
const DEFEAT_TOL: f64 = 1e-9;

/// Tuning knobs (the petabricks vocabulary: elites survive unchanged,
/// the rest of each generation is mutation around elites with an
/// exploration probability of fresh random candidates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneOptions {
    pub generations: usize,
    pub population: usize,
    /// Candidates carried unchanged into the next generation.
    pub elites: usize,
    /// Probability a non-elite slot is a fresh uniform-random candidate
    /// rather than a mutation of an elite.
    pub exploration_probability: f64,
    /// Mutation step as a fraction of each parameter's `[lo, hi]` width.
    pub mutation_scale: f64,
    /// Deterministic probe points sampled inside each bank entry's
    /// discovered subspace box (fresh evaluations beyond the recorded
    /// witnesses).
    pub probes_per_finding: usize,
    pub seed: u64,
    /// Parallelism for candidate evaluation (byte-identical results for
    /// any value ≥ 1).
    pub workers: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            generations: 8,
            population: 16,
            elites: 3,
            exploration_probability: 0.2,
            mutation_scale: 0.3,
            probes_per_finding: 8,
            seed: 0xD5,
            workers: 1,
        }
    }
}

impl TuneOptions {
    /// The CI smoke preset: small but large enough to repair the
    /// built-in domains' banks.
    pub fn quick() -> Self {
        TuneOptions {
            generations: 3,
            population: 8,
            probes_per_finding: 4,
            ..Default::default()
        }
    }
}

/// One scored parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// Parameter values, ordered per the domain's `ParamSpace`.
    pub params: Vec<f64>,
    /// Worst-case gap over the evaluation set — lower is better;
    /// [`FAILURE_FITNESS`] if the tuned heuristic failed anywhere.
    pub fitness: f64,
    /// Evaluation points on which the tuned oracle returned a non-finite
    /// gap (each one pushes fitness to [`FAILURE_FITNESS`]).
    pub failures: usize,
}

/// Per-generation progress — one NDJSON line of `POST /v1/tune` and
/// `runner tune --watch`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationStat {
    pub generation: usize,
    pub evaluated: usize,
    pub best_fitness: f64,
    pub best_params: Vec<f64>,
}

/// The tuner's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// [`TUNE_SCHEMA_VERSION`] at production time.
    pub schema_version: u32,
    pub domain: String,
    /// Parameter names, ordered as every `params` vector here.
    pub param_names: Vec<String>,
    pub default_params: Vec<f64>,
    /// The shipped heuristic's worst-case gap over the same evaluation
    /// set — the baseline a repair must strictly beat.
    pub default_fitness: f64,
    pub best: Candidate,
    /// `best.fitness < default_fitness`, strictly.
    pub improved: bool,
    pub trajectory: Vec<GenerationStat>,
    /// Bank instances scored (after shape filtering).
    pub bank_instances: usize,
    /// Bank instances whose dimensionality no longer matches the
    /// domain's oracle and were excluded from scoring.
    pub skipped_instances: usize,
    /// Fresh probe points scored alongside the bank instances.
    pub probe_points: usize,
    /// Ids of bank entries on which the best candidate still shows a
    /// positive gap — the corpus that continues to defeat the repair.
    pub still_defeated: Vec<String>,
}

/// Why a tuning run could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The domain exposes no `ParamSpace`.
    NotTunable { domain: String },
    /// No usable bank instances for this domain (nothing to score
    /// against — run an analysis session first).
    EmptyCorpus { domain: String },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NotTunable { domain } => {
                write!(f, "domain '{domain}' exposes no tunable parameter space")
            }
            TuneError::EmptyCorpus { domain } => write!(
                f,
                "regression bank holds no usable instances for domain '{domain}'"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// One point of the fixed evaluation set.
struct EvalPoint {
    /// Bank entry id when the point is a recorded witness, `None` for a
    /// fresh probe.
    bank_id: Option<String>,
    x: Vec<f64>,
}

/// Score one candidate: worst-case gap over the evaluation set,
/// failure-penalized. Pure — safe to fan out.
fn score(domain: &dyn Domain, params: &[f64], points: &[EvalPoint]) -> Candidate {
    let Some(oracle) = domain.tuned_oracle(params) else {
        return Candidate {
            params: params.to_vec(),
            fitness: FAILURE_FITNESS,
            failures: points.len(),
        };
    };
    let mut worst = 0.0_f64;
    let mut failures = 0usize;
    for point in points {
        let gap = oracle.gap(&point.x);
        if gap.is_finite() {
            worst = worst.max(gap);
        } else {
            failures += 1;
        }
    }
    Candidate {
        params: params.to_vec(),
        fitness: if failures > 0 { FAILURE_FITNESS } else { worst },
        failures,
    }
}

/// Total order on candidates: fitness, then params lexicographically —
/// ties never depend on evaluation order.
fn candidate_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    a.fitness.total_cmp(&b.fitness).then_with(|| {
        for (x, y) in a.params.iter().zip(&b.params) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    })
}

fn random_candidate(space: &ParamSpace, rng: &mut StdRng) -> Vec<f64> {
    space
        .params
        .iter()
        .map(|d| {
            if d.hi > d.lo {
                rng.gen_range(d.lo..=d.hi)
            } else {
                d.lo
            }
        })
        .collect()
}

/// Build the fixed evaluation set from this domain's bank records:
/// every recorded witness, plus `probes_per_finding` deterministic
/// uniform samples inside each record's discovered subspace box.
fn eval_points(
    records: &[(u64, BankRecord)],
    dims: usize,
    opts: &TuneOptions,
) -> (Vec<EvalPoint>, usize, usize, usize) {
    let mut points = Vec::new();
    let mut bank_instances = 0usize;
    let mut skipped = 0usize;
    let mut probes = 0usize;
    for (rank, (key, record)) in records.iter().enumerate() {
        if record.instance.len() != dims {
            skipped += 1;
            continue;
        }
        bank_instances += 1;
        points.push(EvalPoint {
            bank_id: Some(RegressionBank::format_id(*key)),
            x: record.instance.clone(),
        });
        let lo = &record.finding.subspace.rough_lo;
        let hi = &record.finding.subspace.rough_hi;
        if lo.len() != dims || hi.len() != dims {
            continue;
        }
        // Positional derivation: the probe stream depends only on the
        // tuning seed and this record's rank in key order, never on how
        // many records came before it in directory order.
        let mut rng = StdRng::seed_from_u64(derive_seed(opts.seed, rank as u64));
        for _ in 0..opts.probes_per_finding {
            let x: Vec<f64> = lo
                .iter()
                .zip(hi)
                .map(|(&a, &b)| if b > a { rng.gen_range(a..=b) } else { a })
                .collect();
            points.push(EvalPoint { bank_id: None, x });
            probes += 1;
        }
    }
    (points, bank_instances, skipped, probes)
}

/// Run the repair loop for one domain over its bank records, invoking
/// `on_generation` after each generation is scored (the streaming hook
/// behind `runner tune --watch` and `POST /v1/tune`).
///
/// `records` is typically `RegressionBank::entries()` filtered to this
/// domain; entries for other domains are ignored here too, so passing
/// the whole bank is safe.
pub fn tune_with(
    domain: &dyn Domain,
    records: &[(u64, BankRecord)],
    opts: &TuneOptions,
    mut on_generation: impl FnMut(&GenerationStat),
) -> Result<TuneReport, TuneError> {
    let space = domain.param_space().ok_or_else(|| TuneError::NotTunable {
        domain: domain.id().to_string(),
    })?;
    let domain_records: Vec<(u64, BankRecord)> = records
        .iter()
        .filter(|(_, r)| r.domain == domain.id())
        .cloned()
        .collect();
    let dims = domain.oracle().dims();
    let (points, bank_instances, skipped_instances, probe_points) =
        eval_points(&domain_records, dims, opts);
    if bank_instances == 0 {
        return Err(TuneError::EmptyCorpus {
            domain: domain.id().to_string(),
        });
    }

    let defaults = space.defaults();
    let default_candidate = score(domain, &defaults, &points);

    let generations = opts.generations.max(1);
    let population = opts.population.max(2);
    let elites = opts.elites.clamp(1, population);

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut pop: Vec<Vec<f64>> = vec![defaults.clone()];
    while pop.len() < population {
        pop.push(random_candidate(&space, &mut rng));
    }

    let mut trajectory = Vec::with_capacity(generations);
    let mut best: Option<Candidate> = None;
    for generation in 0..generations {
        let mut scored = fan_out(pop.len(), opts.workers, |i| score(domain, &pop[i], &points));
        scored.sort_by(candidate_order);
        if best
            .as_ref()
            .is_none_or(|b| candidate_order(&scored[0], b) == std::cmp::Ordering::Less)
        {
            best = Some(scored[0].clone());
        }
        let leader = best.as_ref().expect("just set");
        let stat = GenerationStat {
            generation,
            evaluated: scored.len(),
            best_fitness: leader.fitness,
            best_params: leader.params.clone(),
        };
        on_generation(&stat);
        trajectory.push(stat);

        if generation + 1 == generations {
            break;
        }
        let elite_pool: Vec<Vec<f64>> = scored
            .iter()
            .take(elites)
            .map(|c| c.params.clone())
            .collect();
        let mut next: Vec<Vec<f64>> = elite_pool.clone();
        while next.len() < population {
            if rng.gen_bool(opts.exploration_probability) {
                next.push(random_candidate(&space, &mut rng));
            } else {
                let parent = &elite_pool[rng.gen_range(0..elite_pool.len())];
                let mut child = parent.clone();
                let dim = rng.gen_range(0..child.len());
                let d = &space.params[dim];
                child[dim] += opts.mutation_scale * (d.hi - d.lo) * rng.gen_range(-1.0..=1.0);
                space.clamp(&mut child);
                next.push(child);
            }
        }
        pop = next;
    }

    let best = best.expect("at least one generation ran");
    // Which bank instances still defeat the repaired heuristic?
    let still_defeated = match domain.tuned_oracle(&best.params) {
        Some(oracle) => points
            .iter()
            .filter_map(|p| {
                let id = p.bank_id.as_ref()?;
                let gap = oracle.gap(&p.x);
                (!gap.is_finite() || gap > DEFEAT_TOL).then(|| id.clone())
            })
            .collect(),
        None => Vec::new(),
    };

    let improved = best.fitness < default_candidate.fitness;
    Ok(TuneReport {
        schema_version: TUNE_SCHEMA_VERSION,
        domain: domain.id().to_string(),
        param_names: space.params.iter().map(|p| p.name.clone()).collect(),
        default_params: defaults,
        default_fitness: default_candidate.fitness,
        best,
        improved,
        trajectory,
        bank_instances,
        skipped_instances,
        probe_points,
        still_defeated,
    })
}

/// [`tune_with`] without a streaming hook.
pub fn tune(
    domain: &dyn Domain,
    records: &[(u64, BankRecord)],
    opts: &TuneOptions,
) -> Result<TuneReport, TuneError> {
    tune_with(domain, records, opts, |_| {})
}

/// NDJSON line for one generation (`{"generation":{...}}`) — the wire
/// format shared by `runner tune --watch` and `POST /v1/tune`.
pub fn generation_line(stat: &GenerationStat) -> String {
    format!(
        "{{\"generation\":{}}}",
        serde_json::to_string(stat).unwrap_or_default()
    )
}

/// Terminal NDJSON line carrying the full report (`{"report":{...}}`).
pub fn report_line(report: &TuneReport) -> String {
    format!(
        "{{\"report\":{}}}",
        serde_json::to_string(report).unwrap_or_default()
    )
}
