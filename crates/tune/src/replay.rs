//! The bank **replay gate**: recompute every regression-bank entry's gap
//! with the current oracle and fail if an instance stopped exhibiting
//! its recorded gap.
//!
//! An entry passes when the recomputed gap is at least the recorded gap
//! (minus a float tolerance): the instance is still *at least as
//! adversarial* as when it was banked. A smaller recomputed gap means
//! either the heuristic silently changed behavior on a known-bad input
//! or the oracle regressed — exactly what a CI gate must catch. Entries
//! with an unknown schema version or an unregistered domain are
//! *skipped*, not failed: dropping them is `runner gc`'s job, and a gate
//! that fails on stale corpus would block every deliberate domain
//! retirement.
//!
//! Replay is order-independent: entries are processed and reported in
//! content-key order regardless of the order supplied.

use serde::{Deserialize, Serialize};
use xplain_runtime::bank::{BankRecord, BANK_SCHEMA_VERSION};
use xplain_runtime::{DomainRegistry, RegressionBank};

/// Recomputed gaps may differ from recorded ones by float noise (the
/// oracle's LP path is deterministic, but recorded gaps travelled
/// through JSON); anything beyond this is a behavioral change.
pub const REPLAY_TOL: f64 = 1e-6;

/// One entry's replay verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayEntry {
    /// Bank id (16 hex digits).
    pub id: String,
    pub domain: String,
    pub recorded_gap: f64,
    /// `None` when the entry was skipped or the oracle returned a
    /// non-finite gap (JSON carries no infinities).
    pub recomputed_gap: Option<f64>,
    /// `"pass"`, `"fail"`, or `"skipped"`.
    pub status: String,
}

/// The gate's verdict over a whole bank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    pub total: usize,
    pub passed: usize,
    pub failed: usize,
    pub skipped: usize,
    /// `failed == 0` — skipped entries do not block the gate.
    pub pass: bool,
    /// Per-entry verdicts in content-key order.
    pub entries: Vec<ReplayEntry>,
}

/// Replay a set of records against the registry's current oracles.
/// The input order is irrelevant: records are sorted by content key
/// before processing, so two banks holding the same entries produce the
/// same report regardless of enumeration order.
pub fn replay_records(registry: &DomainRegistry, records: &[(u64, BankRecord)]) -> ReplayReport {
    let mut sorted: Vec<&(u64, BankRecord)> = records.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);

    let mut report = ReplayReport {
        total: sorted.len(),
        passed: 0,
        failed: 0,
        skipped: 0,
        pass: true,
        entries: Vec::with_capacity(sorted.len()),
    };
    for (key, record) in sorted {
        let id = RegressionBank::format_id(*key);
        let domain = registry.get(&record.domain);
        let usable = record.schema_version == BANK_SCHEMA_VERSION && domain.is_some();
        let mut entry = ReplayEntry {
            id,
            domain: record.domain.clone(),
            recorded_gap: record.gap,
            recomputed_gap: None,
            status: "skipped".to_string(),
        };
        if !usable {
            report.skipped += 1;
            report.entries.push(entry);
            continue;
        }
        let gap = domain
            .expect("usable implies registered")
            .oracle()
            .gap(&record.instance);
        if gap.is_finite() {
            entry.recomputed_gap = Some(gap);
        }
        if gap.is_finite() && gap + REPLAY_TOL >= record.gap {
            entry.status = "pass".to_string();
            report.passed += 1;
        } else {
            entry.status = "fail".to_string();
            report.failed += 1;
        }
        report.entries.push(entry);
    }
    report.pass = report.failed == 0;
    report
}

/// Replay a whole on-disk bank and durably record the verdict (the
/// marker `/v1/metrics` reports as `bank.last_replay_pass`).
pub fn replay_bank(registry: &DomainRegistry, bank: &RegressionBank) -> ReplayReport {
    let report = replay_records(registry, &bank.entries());
    let _ = bank.record_replay(report.pass, report.total);
    report
}
