//! # xplain-tune — the repair loop
//!
//! XPlain's pipeline *finds* inputs where a heuristic underperforms;
//! this crate closes the loop by *repairing* the heuristic against
//! them. Two pieces:
//!
//! - [`engine`] — candidate-based parameter search over a domain's
//!   [`ParamSpace`](xplain_runtime::ParamSpace), scored by worst-case
//!   gap over the adversarial regression bank plus fresh probes around
//!   each banked instance. The search is elitist with mutation and an
//!   exploration probability, failure-penalized, and deterministic:
//!   one worker and N workers produce byte-identical
//!   [`TuneReport`]s.
//! - [`replay`] — the regression gate: recompute every banked
//!   instance's gap with the current oracle and fail if any entry
//!   stopped exhibiting its recorded gap.
//!
//! The bank itself (content-addressed, append-only, write-through from
//! the runtime's executor) lives in `xplain-runtime`; its types are
//! re-exported here so callers of the repair loop need only this crate.
//!
//! ```no_run
//! use xplain_tune::{tune, TuneOptions};
//! use xplain_runtime::{DomainRegistry, RegressionBank};
//!
//! let registry = DomainRegistry::builtin();
//! let bank = RegressionBank::new(std::path::Path::new("store"));
//! let domain = registry.get("dp").unwrap();
//! let report = tune(domain, &bank.entries(), &TuneOptions::default()).unwrap();
//! assert!(report.best.fitness <= report.default_fitness);
//! ```

pub mod engine;
pub mod replay;

pub use engine::{
    generation_line, report_line, tune, tune_with, Candidate, GenerationStat, TuneError,
    TuneOptions, TuneReport, FAILURE_FITNESS, TUNE_SCHEMA_VERSION,
};
pub use replay::{replay_bank, replay_records, ReplayEntry, ReplayReport, REPLAY_TOL};
// Bank types live in the runtime (the executor writes through to the
// bank as sessions finish); re-exported so the repair loop is
// self-contained for callers.
pub use xplain_runtime::bank::{
    BankInfo, BankRecord, BankSweep, RegressionBank, BANK_SCHEMA_VERSION,
};
