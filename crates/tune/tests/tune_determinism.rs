//! The tuner's determinism contract, pinned: the same domain, bank, and
//! options produce a byte-identical `TuneReport` whether candidate
//! evaluation runs on 1 worker or N — and the `--watch` NDJSON stream is
//! identical too.

use xplain_core::pipeline::{SubspaceFinding, Witness};
use xplain_core::subspace::Subspace;
use xplain_runtime::DomainRegistry;
use xplain_tune::{generation_line, report_line, tune_with, BankRecord, TuneOptions};

/// Synthetic bank records for every builtin domain: the oracle-box
/// midpoint plus a corner-ish point, each wrapped in a witnessed
/// finding over the domain's full input box.
fn synthetic_records(registry: &DomainRegistry) -> Vec<(u64, BankRecord)> {
    let mut records = Vec::new();
    for id in registry.ids() {
        let domain = registry.get(&id).expect("registered");
        let bounds = domain.oracle().bounds();
        let mid: Vec<f64> = bounds.iter().map(|(lo, hi)| lo + 0.5 * (hi - lo)).collect();
        let high: Vec<f64> = bounds.iter().map(|(lo, hi)| lo + 0.9 * (hi - lo)).collect();
        for (j, instance) in [mid, high].into_iter().enumerate() {
            let lo: Vec<f64> = bounds.iter().map(|&(l, _)| l).collect();
            let hi: Vec<f64> = bounds.iter().map(|&(_, h)| h).collect();
            let subspace = Subspace::from_rough_box(lo, hi, instance.clone(), 1.0);
            let finding = SubspaceFinding {
                subspace,
                significance: None,
                explanation: None,
                witness: Some(Witness {
                    input: instance.clone(),
                    gap: 1.0,
                }),
            };
            let record = BankRecord::from_finding(&id, &finding, "synthetic", j as u64)
                .expect("witnessed finding banks");
            let key = xplain_tune::RegressionBank::key(&id, &record.instance);
            records.push((key, record));
        }
    }
    records.sort_by_key(|(k, _)| *k);
    records
}

#[test]
fn one_worker_equals_n_workers_byte_for_byte() {
    let registry = DomainRegistry::builtin();
    let records = synthetic_records(&registry);
    for id in registry.ids() {
        let domain = registry.get(&id).expect("registered");
        if domain.param_space().is_none() {
            continue;
        }
        let mut serial_opts = TuneOptions::quick();
        serial_opts.workers = 1;
        let mut parallel_opts = TuneOptions::quick();
        parallel_opts.workers = 4;

        let mut serial_stream = Vec::new();
        let serial = tune_with(domain, &records, &serial_opts, |stat| {
            serial_stream.push(generation_line(stat));
        })
        .expect("tune runs");
        let mut parallel_stream = Vec::new();
        let parallel = tune_with(domain, &records, &parallel_opts, |stat| {
            parallel_stream.push(generation_line(stat));
        })
        .expect("tune runs");

        assert_eq!(
            report_line(&serial),
            report_line(&parallel),
            "domain '{id}': report must not depend on worker count"
        );
        assert_eq!(
            serial_stream, parallel_stream,
            "domain '{id}': --watch stream must not depend on worker count"
        );
        // NDJSON framing: every line is a single-key object.
        for line in serial_stream {
            assert!(line.starts_with("{\"generation\":{"), "bad frame: {line}");
            assert!(line.ends_with("}}"), "bad frame: {line}");
        }
        assert!(report_line(&serial).starts_with("{\"report\":{"));
    }
}

#[test]
fn all_builtin_domains_are_tunable() {
    let registry = DomainRegistry::builtin();
    for id in registry.ids() {
        let domain = registry.get(&id).expect("registered");
        let space = domain
            .param_space()
            .unwrap_or_else(|| panic!("builtin domain '{id}' must expose a ParamSpace"));
        assert_eq!(space.domain, id);
        assert!(!space.params.is_empty());
        // The tuned oracle at the default vector must reproduce the
        // shipped oracle on a midpoint probe.
        let defaults = space.defaults();
        let tuned = domain
            .tuned_oracle(&defaults)
            .expect("tunable domain yields a tuned oracle");
        let shipped = domain.oracle();
        let mid: Vec<f64> = shipped
            .bounds()
            .iter()
            .map(|(lo, hi)| lo + 0.5 * (hi - lo))
            .collect();
        let a = shipped.gap(&mid);
        let b = tuned.gap(&mid);
        assert!(
            (a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()),
            "domain '{id}': default tuned oracle diverges from shipped oracle ({a} vs {b})"
        );
    }
}
