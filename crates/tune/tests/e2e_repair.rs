//! The acceptance scenario end to end: a real `dp` analysis session
//! populates the regression bank (write-through from the executor), the
//! tuner repairs the heuristic against it, and the tuned parameters
//! strictly reduce the worst-case gap over the banked instances.

use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{run_manifest, DomainRegistry, JobSpec, ResultStore};
use xplain_tune::{replay_bank, tune, TuneOptions};

fn session_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 2,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 6,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 80,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 100,
        ..Default::default()
    }
}

#[test]
fn dp_session_seeds_bank_and_tune_repairs_it() {
    let registry = DomainRegistry::builtin();
    let store = {
        let dir = std::env::temp_dir().join(format!("xplain-e2e-repair-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::new(dir)
    };

    // 1. Real analysis session: the executor writes every witnessed
    //    significant finding through to the bank.
    let jobs = vec![JobSpec {
        domain: "dp".into(),
        config: session_config(),
        seed: 0x5EED,
        budgets: Default::default(),
    }];
    let outcomes = run_manifest(&registry, &jobs, Some(&store), 1);
    assert_eq!(outcomes.len(), 1);
    let findings = &outcomes[0].result.as_ref().expect("job ran").findings;
    assert!(
        !findings.is_empty(),
        "dp session must surface at least one finding"
    );
    assert!(
        findings.iter().all(|f| f.witness.is_some()),
        "every finding carries its adversarial witness"
    );

    let bank = store.bank();
    assert!(!bank.is_empty(), "session findings must reach the bank");
    let records = bank.entries();
    assert!(records.iter().all(|(_, r)| r.domain == "dp"));

    // 2. Freshly banked instances replay clean against the oracle that
    //    produced them.
    let replay = replay_bank(&registry, &bank);
    assert!(replay.pass, "fresh bank must replay clean: {replay:?}");
    assert_eq!(bank.info().last_replay_pass, Some(true));

    // 3. Repair: the tuned pin threshold must strictly beat the shipped
    //    default on the banked worst case.
    let domain = registry.get("dp").expect("dp registered");
    let report = tune(domain, &records, &TuneOptions::quick()).expect("tune runs");
    assert!(report.default_fitness > 0.0, "bank holds real adversaries");
    assert!(
        report.improved,
        "repair must strictly beat the default (default {}, best {})",
        report.default_fitness, report.best.fitness
    );
    assert!(report.best.fitness < report.default_fitness);
    assert_eq!(report.best.failures, 0);

    // 4. Independently recompute the worst-case gap over the *banked
    //    instances only* — the tuned parameters must strictly reduce it.
    let worst = |params: &[f64]| {
        let oracle = domain.tuned_oracle(params).expect("dp is tunable");
        records
            .iter()
            .map(|(_, r)| oracle.gap(&r.instance))
            .fold(0.0_f64, f64::max)
    };
    let default_worst = worst(&report.default_params);
    let tuned_worst = worst(&report.best.params);
    assert!(
        tuned_worst < default_worst,
        "tuned params must strictly reduce the banked worst-case gap \
         ({default_worst} -> {tuned_worst})"
    );

    // 5. Idempotence at the system level: re-running the same job is a
    //    cache hit and must not grow the bank.
    let before = bank.len();
    let jobs2 = vec![JobSpec {
        domain: "dp".into(),
        config: session_config(),
        seed: 0x5EED,
        budgets: Default::default(),
    }];
    run_manifest(&registry, &jobs2, Some(&store), 1);
    assert_eq!(bank.len(), before, "replayed session must dedupe");
}
