//! Satellite property tests for the regression bank: insertion is
//! idempotent by content key (provenance does not create duplicates),
//! and the replay gate is order-independent (any enumeration order of
//! the same records yields a byte-identical report).

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use xplain_core::pipeline::{SubspaceFinding, Witness};
use xplain_core::subspace::Subspace;
use xplain_runtime::DomainRegistry;
use xplain_tune::{replay_records, BankRecord, RegressionBank};

/// A bank record around a synthetic witnessed finding.
fn record(domain: &str, instance: Vec<f64>, gap: f64, job_key: &str, seed: u64) -> BankRecord {
    let dims = instance.len();
    let subspace =
        Subspace::from_rough_box(vec![0.0; dims], vec![1000.0; dims], instance.clone(), gap);
    let finding = SubspaceFinding {
        subspace,
        significance: None,
        explanation: None,
        witness: Some(Witness {
            input: instance,
            gap,
        }),
    };
    BankRecord::from_finding(domain, &finding, job_key, seed).expect("witnessed finding banks")
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_bank() -> RegressionBank {
    let dir = std::env::temp_dir().join(format!(
        "xplain-tune-bank-props-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    RegressionBank::new(&dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Inserting the same (domain, instance) content twice — even with
    /// different provenance (job key, session seed, gap) — is a no-op:
    /// the bank holds exactly one entry per distinct content key.
    #[test]
    fn insert_is_idempotent_by_content_key(
        instances in proptest::collection::vec(
            proptest::collection::vec(0.25f64..100.0, 1..6),
            1..8,
        ),
    ) {
        let bank = scratch_bank();
        let domains = ["dp", "ff", "sched"];
        let mut distinct = std::collections::BTreeSet::new();
        for (i, instance) in instances.iter().enumerate() {
            let domain = domains[i % domains.len()];
            let fresh = distinct.insert(RegressionBank::key(domain, instance));
            let first = bank
                .insert(&record(domain, instance.clone(), 1.0, "job-a", 1))
                .expect("insert succeeds");
            prop_assert_eq!(first, fresh, "insert reports new iff key unseen");
            // Same content, different provenance: must dedupe.
            let again = bank
                .insert(&record(domain, instance.clone(), 2.0, "job-b", 99))
                .expect("re-insert succeeds");
            prop_assert!(!again, "identical content with new provenance deduped");
        }
        prop_assert_eq!(bank.len(), distinct.len());
        // entries() enumerates exactly the distinct keys, sorted.
        let keys: Vec<u64> = bank.entries().iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = distinct.into_iter().collect();
        prop_assert_eq!(keys, expected);
    }

    /// Replaying the same records in any order produces a byte-identical
    /// report: the gate sorts by content key internally.
    #[test]
    fn replay_is_order_independent(rot in 0usize..7, gap_scale in 0.1f64..2.0) {
        let registry = DomainRegistry::builtin();
        let mut records = Vec::new();
        for id in registry.ids() {
            let domain = registry.get(&id).expect("registered");
            let oracle = domain.oracle();
            let instance: Vec<f64> = oracle
                .bounds()
                .iter()
                .map(|(lo, hi)| lo + 0.5 * (hi - lo))
                .collect();
            let key = RegressionBank::key(&id, &instance);
            records.push((key, record(&id, instance, gap_scale, "job", 7)));
        }
        // A record the gate must skip (unregistered domain), plus one
        // with a foreign schema version.
        let ghost = record("ghost", vec![1.0, 2.0], 0.5, "job", 7);
        records.push((RegressionBank::key("ghost", &ghost.instance), ghost));
        let mut stale = record("dp", vec![3.0], 0.5, "job", 7);
        stale.schema_version = 999;
        records.push((RegressionBank::key("dp-stale", &stale.instance), stale));

        let baseline = replay_records(&registry, &records);
        let mut shuffled = records.clone();
        let pivot = rot % shuffled.len();
        shuffled.rotate_left(pivot);
        shuffled.reverse();
        let report = replay_records(&registry, &shuffled);

        prop_assert_eq!(
            serde_json::to_string(&baseline).expect("report serializes"),
            serde_json::to_string(&report).expect("report serializes"),
            "replay must not depend on record order"
        );
        prop_assert_eq!(report.skipped, 2, "ghost domain and stale schema skipped");
        prop_assert_eq!(report.total, records.len());
    }
}
