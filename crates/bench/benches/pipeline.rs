//! E7 timing bench — XPlain pipeline stages: subspace growth,
//! significance checking, and the 3000-sample explainer (the figure
//! caption's "20 minutes per figure" in the paper's setup).
//!
//! Sample counts are scaled down so `cargo bench` completes in minutes;
//! `repro pipeline-time` runs the full-size configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use xplain_analyzer::geometry::Polytope;
use xplain_analyzer::oracle::{DpOracle, GapOracle};
use xplain_analyzer::search::{dp_seeds, find_adversarial, Adversarial, SearchOptions};
use xplain_core::explainer::{explain, ExplainerParams};
use xplain_core::features::FeatureMap;
use xplain_core::significance::{check_significance, SignificanceParams};
use xplain_core::subspace::{grow_subspace, Subspace, SubspaceParams};
use xplain_domains::te::TeProblem;
use xplain_runtime::DpDslMapper;

fn dp_seed_subspace() -> Subspace {
    let lo = vec![30.0, 80.0, 80.0];
    let hi = vec![50.0, 100.0, 100.0];
    Subspace {
        polytope: Polytope::from_box(&lo, &hi),
        rough_lo: lo,
        rough_hi: hi,
        seed: vec![50.0, 100.0, 100.0],
        seed_gap: 100.0,
        predicate_descriptions: Vec::new(),
        leaf_mean_gap: 100.0,
        leaf_samples: 0,
        evaluations: 0,
    }
}

fn bench_analyzer_search(c: &mut Criterion) {
    let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
    let opts = SearchOptions {
        restarts: 6,
        evals_per_restart: 120,
        seeds: dp_seeds(3, 50.0, 100.0),
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("analyzer_search_dp", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(find_adversarial(&oracle, &[], &opts, &mut rng))
        });
    });
    group.finish();
}

fn bench_subspace_growth(c: &mut Criterion) {
    let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
    let seed = Adversarial {
        input: vec![50.0, 100.0, 100.0],
        gap: 100.0,
    };
    let features = FeatureMap::identity_with_sum(3, &oracle.dim_names());
    let params = SubspaceParams {
        dkw_eps: 0.25,
        dkw_delta: 0.25,
        max_expansions: 6,
        tree_sample_factor: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("subspace_growth_dp", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(grow_subspace(&oracle, &seed, &features, &params, &mut rng))
        });
    });
    group.finish();
}

fn bench_significance(c: &mut Criterion) {
    let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
    let sub = dp_seed_subspace();
    let params = SignificanceParams {
        pairs: 60,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("significance_check_dp", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(check_significance(&oracle, &sub, &params, &mut rng))
        });
    });
    group.finish();
}

fn bench_explainer(c: &mut Criterion) {
    let mapper = DpDslMapper::new(TeProblem::fig1a(), 50.0);
    let sub = dp_seed_subspace();
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    for samples in [100usize, 500] {
        let params = ExplainerParams {
            samples,
            ..Default::default()
        };
        group.bench_function(format!("explainer_dp_{samples}_samples"), |b| {
            b.iter(|| black_box(explain(&mapper, &sub, &params, 4)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analyzer_search,
    bench_subspace_growth,
    bench_significance,
    bench_explainer
);
criterion_main!(benches);
