//! E6 timing bench — the §5.1 compiled-DSL claim: raw vs
//! redundancy-eliminated compilation and solve for the DP (Fig. 4a) and
//! FF (Fig. 4b) networks. Expected shape: elimination pays off on DP
//! (paper: 4.3×) and does nothing for FF (paper: "no run-time gains").

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use xplain_domains::te::{TeDsl, TeProblem};
use xplain_domains::vbp::VbpDsl;
use xplain_flownet::CompileOptions;

fn bench_dp_compile_solve(c: &mut Criterion) {
    let problem = TeProblem::fig4a();
    let dsl = TeDsl::build(&problem);
    let volumes = [35.0, 45.0, 20.0, 30.0, 80.0, 25.0, 40.0, 30.0];

    let mut group = c.benchmark_group("e6_dp_analyze");
    group.sample_size(30);
    for (label, eliminate) in [("raw", false), ("eliminated", true)] {
        let opts = CompileOptions {
            eliminate,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let compiled = dsl.net.compile(&opts).expect("compiles");
                let mut pins = BTreeMap::new();
                for (k, &node) in dsl.demand_nodes.iter().enumerate() {
                    pins.insert(node, volumes[k]);
                }
                let model = compiled.with_source_values(&pins).expect("pins");
                black_box(model.solve().expect("solves"))
            });
        });
    }
    group.finish();
}

fn bench_ff_compile_solve(c: &mut Criterion) {
    let dsl = VbpDsl::build(4, 3, 1.0);
    let sizes = [0.2, 0.35, 0.3, 0.4];

    let mut group = c.benchmark_group("e6_ff_analyze");
    group.sample_size(20);
    for (label, eliminate) in [("raw", false), ("eliminated", true)] {
        let opts = CompileOptions {
            eliminate,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let compiled = dsl.net.compile(&opts).expect("compiles");
                let mut pins = BTreeMap::new();
                for (i, &node) in dsl.ball_nodes.iter().enumerate() {
                    pins.insert(node, sizes[i]);
                }
                let model = compiled.with_source_values(&pins).expect("pins");
                black_box(model.solve().expect("solves"))
            });
        });
    }
    group.finish();
}

fn bench_appendix_a_overhead(c: &mut Criterion) {
    // E9 timing: direct solve vs Theorem A.1 flow-encoded solve.
    use xplain_flownet::encode_lp::encode;
    use xplain_lp::{Cmp, Model, Sense, VarType};

    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
    let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
    m.add_constr("c1", x + y, Cmp::Le, 4.0);
    m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
    m.set_objective(x * 3.0 + y * 2.0);

    let mut group = c.benchmark_group("e9_encoding_overhead");
    group.sample_size(30);
    group.bench_function("direct", |b| {
        b.iter(|| black_box(m.solve().expect("solves")));
    });
    let encoded = encode(&m).expect("encodes");
    group.bench_function("via_flow_network", |b| {
        b.iter(|| black_box(encoded.solve(&CompileOptions::default()).expect("solves")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_compile_solve,
    bench_ff_compile_solve,
    bench_appendix_a_overhead
);
criterion_main!(benches);
