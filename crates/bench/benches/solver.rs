//! Criterion benches for the optimization substrate: simplex scaling and
//! branch-and-bound, the foundations every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xplain_lp::{Cmp, LinExpr, Model, Sense, VarType};

/// A dense random-ish LP with `n` variables and `n` constraints
/// (deterministic coefficients — no RNG in benches).
fn dense_lp(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("x{i}"), VarType::Continuous, 0.0, 10.0))
        .collect();
    for r in 0..n {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            let c = 1.0 + ((r * 7 + i * 3) % 5) as f64;
            e.add_term(v, c);
        }
        m.add_constr(format!("c{r}"), e, Cmp::Le, 50.0 + (r % 7) as f64);
    }
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj.add_term(v, 1.0 + (i % 3) as f64);
    }
    m.set_objective(obj);
    m
}

fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let x: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
    let mut w = LinExpr::new();
    let mut obj = LinExpr::new();
    for (i, &v) in x.iter().enumerate() {
        w.add_term(v, 1.0 + ((i * 13) % 7) as f64);
        obj.add_term(v, 2.0 + ((i * 11) % 9) as f64);
    }
    m.add_constr("cap", w, Cmp::Le, n as f64);
    m.set_objective(obj);
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(20);
    for n in [10usize, 25, 50] {
        let model = dense_lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(m.solve().expect("solvable")));
        });
    }
    group.finish();

    // The reference tableau on the same models, for the revised-vs-
    // reference scaling picture (BENCH_6.json holds the summary numbers).
    let mut group = c.benchmark_group("simplex_reference");
    group.sample_size(20);
    for n in [10usize, 25, 50] {
        let model = dense_lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(xplain_lp::simplex::reference::solve(m).expect("solvable")));
        });
    }
    group.finish();

    // Warm-started sessions over a rhs sweep (the gap-oracle pattern).
    let mut group = c.benchmark_group("simplex_warm_sweep");
    group.sample_size(20);
    let model_for = |cap: f64| {
        let mut m = dense_lp(25);
        // dense_lp's rows all share structure; vary the model through an
        // extra capacity row so each solve differs in rhs only.
        let vars: Vec<_> = (0..25).map(xplain_lp::VarId::from_index).collect();
        m.add_constr("sweep", LinExpr::sum(vars), Cmp::Le, cap);
        m
    };
    group.bench_function("25_x16", |b| {
        b.iter(|| {
            let mut session = xplain_lp::SolverSession::new();
            for i in 0..16 {
                let m = model_for(30.0 + i as f64);
                black_box(session.solve(&m).expect("solvable"));
            }
        });
    });
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound_knapsack");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(m.solve().expect("solvable")));
        });
    }
    group.finish();
}

fn bench_te_lp(c: &mut Criterion) {
    use xplain_domains::te::TeProblem;
    let mut group = c.benchmark_group("te_max_flow");
    group.sample_size(30);
    let fig1a = TeProblem::fig1a();
    group.bench_function("fig1a_optimal", |b| {
        b.iter(|| black_box(fig1a.optimal(&[50.0, 100.0, 100.0]).unwrap()));
    });
    let fig4a = TeProblem::fig4a();
    group.bench_function("fig4a_optimal", |b| {
        b.iter(|| black_box(fig4a.optimal(&[40.0; 8]).unwrap()));
    });
    group.finish();
}

fn bench_vbp(c: &mut Criterion) {
    use xplain_domains::vbp::{first_fit, optimal, VbpInstance};
    let mut group = c.benchmark_group("vbp");
    let inst = VbpInstance::fig2_example();
    group.bench_function("first_fit_fig2", |b| {
        b.iter(|| black_box(first_fit(&inst)));
    });
    group.sample_size(10);
    group.bench_function("optimal_fig2", |b| {
        b.iter(|| black_box(optimal(&inst)));
    });
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_milp, bench_te_lp, bench_vbp);
criterion_main!(benches);
