//! Repair-loop timing benches: regression-bank content hashing and
//! insert/dedupe, the replay gate's oracle recompute, and one full
//! `--quick` tuning run — the costs `runner bank replay` and
//! `runner tune` pay per entry and per generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use xplain_core::pipeline::{SubspaceFinding, Witness};
use xplain_core::subspace::Subspace;
use xplain_runtime::DomainRegistry;
use xplain_tune::{replay_records, tune, BankRecord, RegressionBank, TuneOptions};

/// A synthetic banked finding for `domain` at `instance`.
fn record(domain: &str, instance: Vec<f64>, gap: f64) -> BankRecord {
    let lo: Vec<f64> = instance.iter().map(|v| v - 1.0).collect();
    let hi: Vec<f64> = instance.iter().map(|v| v + 1.0).collect();
    let finding = SubspaceFinding {
        subspace: Subspace::from_rough_box(lo, hi, instance.clone(), gap),
        significance: None,
        explanation: None,
        witness: Some(Witness {
            input: instance,
            gap,
        }),
    };
    BankRecord::from_finding(domain, &finding, "00000000000000ab", 7).expect("witness banks")
}

/// In-bounds instances for every builtin domain: quantile points of the
/// oracle's dimension box, banked with their *true* recomputed gap
/// (zero-gap points are not adversarial and never bank).
fn synthetic_records(registry: &DomainRegistry) -> Vec<(u64, BankRecord)> {
    let mut out = Vec::new();
    for id in registry.ids() {
        let domain = registry.get(&id).expect("listed id resolves");
        let oracle = domain.oracle();
        let bounds = oracle.bounds();
        // One candidate per dimension — that dimension at its midpoint,
        // every other at its maximum (the fig. 1a adversarial shape) —
        // plus the all-midpoints point.
        let mut candidates: Vec<Vec<f64>> = (0..bounds.len())
            .map(|pivot| {
                bounds
                    .iter()
                    .enumerate()
                    .map(|(d, (lo, hi))| {
                        if d == pivot {
                            lo + 0.5 * (hi - lo)
                        } else {
                            *hi
                        }
                    })
                    .collect()
            })
            .collect();
        candidates.push(bounds.iter().map(|(lo, hi)| lo + 0.5 * (hi - lo)).collect());
        for point in candidates {
            let gap = oracle.gap(&point);
            if !gap.is_finite() || gap <= 0.0 {
                continue;
            }
            let rec = record(&id, point, gap);
            out.push((RegressionBank::key(&rec.domain, &rec.instance), rec));
        }
    }
    assert!(
        out.iter().any(|(_, r)| r.domain == "dp"),
        "dp corpus must be non-empty for the search bench"
    );
    out.sort_by_key(|(k, _)| *k);
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xplain-bench-tune-{tag}-{}", std::process::id()))
}

fn bench_bank(c: &mut Criterion) {
    let registry = DomainRegistry::builtin();
    let records = synthetic_records(&registry);

    let mut group = c.benchmark_group("tune_bank");
    group.bench_function("content_key", |b| {
        b.iter(|| {
            for (_, rec) in &records {
                black_box(RegressionBank::key(&rec.domain, &rec.instance));
            }
        });
    });

    // Steady-state insert: every record already present, so this times
    // the dedupe path the executor hits on every repeat session.
    let root = scratch_dir("dedupe");
    let _ = std::fs::remove_dir_all(&root);
    let bank = RegressionBank::new(&root);
    for (_, rec) in &records {
        bank.insert(rec).expect("fresh insert");
    }
    group.bench_function("insert_dedupe", |b| {
        b.iter(|| {
            for (_, rec) in &records {
                assert!(!bank.insert(rec).expect("dedupe probe"));
            }
        });
    });
    group.bench_function("entries_scan", |b| {
        b.iter(|| black_box(bank.entries().len()));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn bench_replay(c: &mut Criterion) {
    let registry = DomainRegistry::builtin();
    let records = synthetic_records(&registry);
    let mut group = c.benchmark_group("tune_replay");
    group.sample_size(20);
    group.bench_function("gate", |b| {
        b.iter(|| {
            let report = replay_records(&registry, &records);
            assert!(black_box(&report).pass);
        });
    });
    group.finish();
}

fn bench_tune_quick(c: &mut Criterion) {
    let registry = DomainRegistry::builtin();
    let records = synthetic_records(&registry);
    let domain = registry.get("dp").expect("dp is builtin");
    let opts = TuneOptions::quick();
    let mut group = c.benchmark_group("tune_search");
    group.sample_size(10);
    group.bench_function("dp_quick", |b| {
        b.iter(|| black_box(tune(domain, &records, &opts).expect("dp tunes")));
    });
    group.finish();
}

criterion_group!(benches, bench_bank, bench_replay, bench_tune_quick);
criterion_main!(benches);
