//! E1 — Fig. 1a: the Demand Pinning table.
//!
//! Paper values (threshold 50): DP routes 1⇝3 on 1-2-3 at 50, squeezing
//! 1⇝2 and 2⇝3 to 50 each (total 150); OPT reroutes 1⇝3 over 1-4-5-3 and
//! serves everything (total 250).

use xplain_domains::te::{DemandPinning, TeProblem};

/// One row of the Fig. 1a table.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    pub demand: String,
    pub volume: f64,
    pub dp_path: String,
    pub dp_value: f64,
    pub opt_path: String,
    pub opt_value: f64,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    pub rows: Vec<Fig1Row>,
    pub dp_total: f64,
    pub opt_total: f64,
    pub gap: f64,
}

/// Reproduce Fig. 1a.
pub fn run() -> Fig1Result {
    let problem = TeProblem::fig1a();
    let volumes = [50.0, 100.0, 100.0];
    let dp = DemandPinning::new(50.0)
        .solve(&problem, &volumes)
        .expect("fig1a is feasible");
    let opt = problem.optimal(&volumes).expect("fig1a is feasible");

    let mut rows = Vec::new();
    for k in 0..problem.num_demands() {
        // Dominant path per algorithm (the table reports one path each).
        let pick = |flows: &[f64]| -> (String, f64) {
            let (best, value) = flows
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(p, v)| (p, *v))
                .unwrap_or((0, 0.0));
            (problem.paths[k][best].name(&problem.topology), value)
        };
        let (dp_path, dp_value) = pick(&dp.flows[k]);
        let (opt_path, opt_value) = pick(&opt.flows[k]);
        rows.push(Fig1Row {
            demand: problem.demand_name(k),
            volume: volumes[k],
            dp_path,
            dp_value,
            opt_path,
            opt_value,
        });
    }

    Fig1Result {
        rows,
        dp_total: dp.total,
        opt_total: opt.total,
        gap: opt.total - dp.total,
    }
}

/// Render in the paper's layout.
pub fn render(r: &Fig1Result) -> String {
    let mut out = String::new();
    out.push_str("E1 / Fig. 1a — Demand Pinning vs OPT (threshold = 50)\n");
    out.push_str(&format!(
        "  {:<8} {:>7} | {:<10} {:>7} | {:<10} {:>7}\n",
        "demand", "volume", "DP path", "value", "OPT path", "value"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "  {:<8} {:>7.0} | {:<10} {:>7.0} | {:<10} {:>7.0}\n",
            row.demand, row.volume, row.dp_path, row.dp_value, row.opt_path, row.opt_value
        ));
    }
    out.push_str(&format!(
        "  Total DP = {:.0} (paper: 150)   Total OPT = {:.0} (paper: 250)   gap = {:.0} (paper: 100)\n",
        r.dp_total, r.opt_total, r.gap
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_exactly() {
        let r = run();
        assert_eq!(r.dp_total.round() as i64, 150);
        assert_eq!(r.opt_total.round() as i64, 250);
        assert_eq!(r.gap.round() as i64, 100);
        // Row-level checks straight from the table.
        let d13 = &r.rows[0];
        assert_eq!(d13.dp_path, "1-2-3");
        assert_eq!(d13.dp_value.round() as i64, 50);
        assert_eq!(d13.opt_path, "1-4-5-3");
        assert_eq!(d13.opt_value.round() as i64, 50);
        let d12 = &r.rows[1];
        assert_eq!(d12.dp_value.round() as i64, 50);
        assert_eq!(d12.opt_value.round() as i64, 100);
    }

    #[test]
    fn render_contains_table() {
        let text = render(&run());
        assert!(text.contains("1-4-5-3"));
        assert!(text.contains("Total DP = 150"));
        assert!(text.contains("Total OPT = 250"));
    }
}
