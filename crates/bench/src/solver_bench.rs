//! The solver benchmark behind the `bench` binary: revised-vs-reference
//! timings on LP sweeps and branch-and-bound-heavy workloads, plus the E7
//! pipeline wall-clock — emitted as `BENCH_6.json` so later PRs have a
//! trajectory to beat (`BENCH_3.json` is the pre-sparse-engine snapshot).
//!
//! Workloads:
//! * **LP sweep** — the fig4a benchmark max-flow solved over a grid of
//!   demand vectors, five ways: reference (cold tableau), revised cold,
//!   revised through one warm `SessionPool` (the gap-oracle pattern),
//!   prepared rhs-delta re-solves, and one batched probe re-solve.
//! * **B&B workloads** — the sched assignment MILP on the Graham-tight
//!   family and the §2 FF MetaOpt encoding, solved with the warm-started
//!   revised backend vs the cold reference backend.
//! * **E7** — the end-to-end per-domain pipeline through the batch
//!   engine, with solver counters.
//!
//! Timings are medians over repeated runs; counters are exact. `--quick`
//! shrinks repeats and the E7 explainer samples for CI.

use crate::pipeline_time;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use xplain_domains::sched::SchedInstance;
use xplain_domains::te::TeProblem;
use xplain_lp::{milp, simplex, Model, Prepared, Probe, SessionPool, SolverSession};

/// Schema marker for the emitted file.
pub const SCHEMA: &str = "xplain-bench-6/v1";

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LpSweepReport {
    /// Demand vectors solved per engine.
    pub solves: usize,
    pub reference_us_per_solve: f64,
    pub revised_cold_us_per_solve: f64,
    /// Per-point model build + pooled warm session — the pre-fix analyzer
    /// pattern (what BENCH_3 called the warm sweep). On these small LPs
    /// the per-point `max_flow_model` + standardization costs more than
    /// the reference's entire solve, which is exactly why the product no
    /// longer does it; kept as trajectory data.
    pub revised_rebuild_us_per_solve: f64,
    /// Warm re-solves through a `Prepared` LP: rhs deltas only, no
    /// per-point model build (the `TeLexSolver` / oracle hot path).
    pub revised_prepared_us_per_solve: f64,
    /// The whole grid as one `solve_batch` probe batch.
    pub revised_batch_us_per_solve: f64,
    /// reference / revised-prepared — the regression-gate metric. After
    /// the warm-start fix the product's warm path *is* the prepared
    /// re-solve (phase 2 and the gap oracle rewrite rhs in place instead
    /// of rebuilding a model per probe), so this is what must stay ahead
    /// of the cold reference.
    pub warm_speedup: f64,
    /// reference / revised-rebuild.
    pub rebuild_speedup: f64,
    /// reference / revised-batch.
    pub batch_speedup: f64,
    pub warm_hits: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BnbWorkloadReport {
    pub name: String,
    pub objective: f64,
    /// Nodes the branch-and-bound explored (revised backend).
    pub nodes: u64,
    pub warm_hits: u64,
    /// End-to-end branch-and-bound wall time, revised backend. Node
    /// *counts* differ between backends (degenerate LPs admit many optimal
    /// vertices, and branching follows the vertex), so this is trajectory
    /// data, not the comparison metric.
    pub end_to_end_revised_ms: f64,
    /// Node-LP replay: the fixed LP sequence the revised branch-and-bound
    /// actually solved, re-timed per engine — same LPs, same order, each
    /// engine driven the way its B&B drives it (revised: bound deltas on
    /// one `Prepared`; reference: per-node rebuild, its only path).
    pub replay_lps: usize,
    pub replay_revised_ms: f64,
    pub replay_reference_ms: f64,
    /// replay_reference / replay_revised.
    pub speedup: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E7Report {
    pub domain: String,
    pub wall_time_ms: u64,
    pub lp_solves: u64,
    pub lp_warm_hits: u64,
    pub bb_nodes: u64,
    pub findings: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    pub schema: String,
    pub quick: bool,
    pub lp_sweep: LpSweepReport,
    pub bnb: Vec<BnbWorkloadReport>,
    pub e7: Vec<E7Report>,
    /// Minimum speedup across the B&B workloads (the acceptance metric).
    pub min_bnb_speedup: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

/// Time `f` over `repeats` runs and return the median seconds.
fn time_median<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_secs_f64());
    }
    median(times)
}

/// A deterministic grid of demand vectors for the LP sweep.
fn demand_grid(dims: usize, points: usize) -> Vec<Vec<f64>> {
    (0..points)
        .map(|p| {
            (0..dims)
                .map(|d| 10.0 + ((p * 37 + d * 13) % 91) as f64)
                .collect()
        })
        .collect()
}

fn lp_sweep(repeats: usize, points: usize) -> LpSweepReport {
    let problem = TeProblem::fig4a();
    let grid = demand_grid(problem.num_demands(), points);

    let reference_s = time_median(repeats, || {
        for v in &grid {
            let m = problem.max_flow_model(v, None, &[]);
            simplex::reference::solve(&m).expect("feasible max-flow");
        }
    });
    let cold_s = time_median(repeats, || {
        for v in &grid {
            let m = problem.max_flow_model(v, None, &[]);
            simplex::solve(&m).expect("feasible max-flow");
        }
    });
    let mut warm_hits = 0u64;
    let warm_s = time_median(repeats, || {
        let mut pool = SessionPool::new();
        for v in &grid {
            let m = problem.max_flow_model(v, None, &[]);
            pool.solve(&m).expect("feasible max-flow");
        }
        warm_hits = pool.stats().warm_hits;
    });

    // Prepared re-solves: standardize once, per point only rewrite the
    // demand rhs rows (rows 0..n in the max-flow encoding).
    let base = problem.max_flow_model(&grid[0], None, &[]);
    let prepared_s = time_median(repeats, || {
        let mut session = SolverSession::new();
        let mut prep = Prepared::new(&base).expect("valid max-flow model");
        for v in &grid {
            for (k, &vol) in v.iter().enumerate() {
                prep.set_rhs(k, vol.max(0.0));
            }
            session.solve_prepared(&prep).expect("feasible max-flow");
        }
    });
    let probes: Vec<Probe> = grid
        .iter()
        .map(|v| Probe {
            rhs: v
                .iter()
                .enumerate()
                .map(|(k, &vol)| (k, vol.max(0.0)))
                .collect(),
            ..Probe::default()
        })
        .collect();
    let batch_s = time_median(repeats, || {
        let mut session = SolverSession::new();
        let mut prep = Prepared::new(&base).expect("valid max-flow model");
        let out = session.solve_batch(&mut prep, &probes);
        assert!(out.iter().all(|r| r.is_ok()), "batch solve failed");
    });

    let per = 1e6 / grid.len() as f64;
    LpSweepReport {
        solves: grid.len(),
        reference_us_per_solve: reference_s * per,
        revised_cold_us_per_solve: cold_s * per,
        revised_rebuild_us_per_solve: warm_s * per,
        revised_prepared_us_per_solve: prepared_s * per,
        revised_batch_us_per_solve: batch_s * per,
        warm_speedup: reference_s / prepared_s.max(1e-12),
        rebuild_speedup: reference_s / warm_s.max(1e-12),
        batch_speedup: reference_s / batch_s.max(1e-12),
        warm_hits,
    }
}

fn bnb_workload(name: &str, model: &Model, repeats: usize) -> BnbWorkloadReport {
    use xplain_lp::milp::NodeEvent;
    let (sol, stats) = milp::solve_with(model, milp::Backend::Revised).expect("solvable");
    let end_to_end_s = time_median(repeats, || {
        milp::solve_with(model, milp::Backend::Revised).expect("solvable");
    });

    // The node-LP replay set: every node whose relaxation was actually
    // solved (branched / integral / LP-infeasible / pruned-after-LP).
    let (_, trace) = milp::solve_traced(model, milp::Backend::Revised, false);
    let node_bounds: Vec<Vec<(usize, f64, f64)>> = trace
        .into_iter()
        .filter(|t| !matches!(t.event, NodeEvent::PrunedByBound | NodeEvent::EmptyDomain))
        .map(|t| t.bounds)
        .collect();

    let apply = |scratch: &mut Model, bounds: &[(usize, f64, f64)]| {
        for &(ix, lo, hi) in bounds {
            let v = xplain_lp::VarId::from_index(ix);
            let (cur_lo, cur_hi) = scratch.var_bounds(v);
            scratch.set_var_bounds(v, cur_lo.max(lo), cur_hi.min(hi));
        }
    };

    // Each engine replays the node LPs the way its branch-and-bound
    // actually drives it: the revised backend standardizes the root once
    // and applies/undoes per-node bound deltas on the `Prepared`; the
    // reference backend rebuilds per node (it has no incremental path).
    let replay_revised_s = time_median(repeats, || {
        let mut session = SolverSession::new();
        let mut prep = Prepared::new(model).expect("B&B model is valid");
        let mut undo: Vec<(xplain_lp::VarId, f64, f64)> = Vec::new();
        for bounds in &node_bounds {
            undo.clear();
            for &(ix, lo, hi) in bounds {
                let v = xplain_lp::VarId::from_index(ix);
                let (cur_lo, cur_hi) = prep.var_bounds(v);
                undo.push((v, cur_lo, cur_hi));
                prep.set_var_bounds(v, cur_lo.max(lo), cur_hi.min(hi));
            }
            let _ = session.solve_prepared(&prep);
            for &(v, lo, hi) in undo.iter().rev() {
                prep.set_var_bounds(v, lo, hi);
            }
        }
    });
    let replay_reference_s = time_median(repeats, || {
        let mut scratch = model.clone();
        for bounds in &node_bounds {
            scratch.clone_from(model);
            apply(&mut scratch, bounds);
            let _ = simplex::reference::solve(&scratch);
        }
    });

    BnbWorkloadReport {
        name: name.to_string(),
        objective: sol.objective,
        nodes: stats.nodes,
        warm_hits: stats.lp.warm_hits,
        end_to_end_revised_ms: end_to_end_s * 1e3,
        replay_lps: node_bounds.len(),
        replay_revised_ms: replay_revised_s * 1e3,
        replay_reference_ms: replay_reference_s * 1e3,
        speedup: replay_reference_s / replay_revised_s.max(1e-12),
    }
}

/// The sched assignment MILP on the Graham-tight instance.
fn sched_model(machines: usize) -> Model {
    use xplain_lp::{Cmp, LinExpr, Sense, VarType};
    let inst = SchedInstance::lpt_tight(machines);
    let n = inst.num_jobs();
    let total: f64 = inst.jobs.iter().sum();
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<_>> = (0..n)
        .map(|i| {
            (0..inst.machines)
                .map(|j| m.add_binary(format!("x[{i},{j}]")))
                .collect()
        })
        .collect();
    let c = m.add_var("C", VarType::Continuous, inst.lower_bound(), total);
    for (i, row) in x.iter().enumerate() {
        m.add_constr(
            format!("place[{i}]"),
            LinExpr::sum(row.iter().copied()),
            Cmp::Eq,
            1.0,
        );
    }
    for j in 0..inst.machines {
        let mut load = LinExpr::new();
        for (i, row) in x.iter().enumerate() {
            load.add_term(row[j], inst.jobs[i]);
        }
        load.add_term(c, -1.0);
        m.add_constr(format!("makespan[{j}]"), load, Cmp::Le, 0.0);
    }
    m.add_constr("sym", LinExpr::term(x[0][0], 1.0), Cmp::Eq, 1.0);
    m.set_objective(LinExpr::term(c, 1.0));
    m
}

fn e7_reports(explainer_samples: usize) -> Vec<E7Report> {
    pipeline_time::run(explainer_samples)
        .outcomes
        .iter()
        .map(|o| E7Report {
            domain: o.domain.clone(),
            wall_time_ms: o.wall_time_ms,
            lp_solves: o.solver.lp_solves,
            lp_warm_hits: o.solver.lp_warm_hits,
            bb_nodes: o.solver.bb_nodes,
            findings: o.result.as_ref().map(|r| r.findings.len()).unwrap_or(0),
        })
        .collect()
}

/// Run the full benchmark.
pub fn run(quick: bool) -> BenchReport {
    let repeats = if quick { 3 } else { 9 };
    let lp_points = if quick { 40 } else { 200 };
    let e7_samples = if quick { 300 } else { 3000 };

    let lp = lp_sweep(repeats, lp_points);

    let mut bnb = Vec::new();
    bnb.push(bnb_workload("sched_tight_m3", &sched_model(3), repeats));
    bnb.push(bnb_workload("sched_tight_m4", &sched_model(4), repeats));
    {
        use xplain_analyzer::FfMetaOpt;
        let analyzer = if quick {
            FfMetaOpt::new(3, 3)
        } else {
            FfMetaOpt::sec2()
        };
        let built = analyzer.build_model(&[]);
        let ff_repeats = if quick { 1 } else { 3 };
        bnb.push(bnb_workload(
            if quick {
                "ff_metaopt_3ball"
            } else {
                "ff_metaopt_sec2"
            },
            &built.model,
            ff_repeats,
        ));
    }

    let e7 = e7_reports(e7_samples);
    let min_bnb_speedup = bnb.iter().map(|w| w.speedup).fold(f64::INFINITY, f64::min);

    BenchReport {
        schema: SCHEMA.to_string(),
        quick,
        lp_sweep: lp,
        bnb,
        e7,
        min_bnb_speedup,
    }
}

pub fn render(r: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Solver bench (quick = {}) — reference tableau vs revised simplex\n",
        r.quick
    ));
    out.push_str(&format!(
        "  LP sweep (fig4a max-flow, {} solves): reference {:.1} µs, revised cold {:.1} µs, \
         prepared warm {:.1} µs ({:.2}x vs reference, {} warm hits), \
         batch {:.1} µs ({:.2}x), rebuild-per-point {:.1} µs ({:.2}x)\n",
        r.lp_sweep.solves,
        r.lp_sweep.reference_us_per_solve,
        r.lp_sweep.revised_cold_us_per_solve,
        r.lp_sweep.revised_prepared_us_per_solve,
        r.lp_sweep.warm_speedup,
        r.lp_sweep.warm_hits,
        r.lp_sweep.revised_batch_us_per_solve,
        r.lp_sweep.batch_speedup,
        r.lp_sweep.revised_rebuild_us_per_solve,
        r.lp_sweep.rebuild_speedup,
    ));
    for w in &r.bnb {
        out.push_str(&format!(
            "  B&B {:<16} {:>5} nodes, end-to-end {:.2} ms; node-LP replay ({} LPs): \
             revised {:.2} ms vs reference {:.2} ms — {:.2}x\n",
            w.name,
            w.nodes,
            w.end_to_end_revised_ms,
            w.replay_lps,
            w.replay_revised_ms,
            w.replay_reference_ms,
            w.speedup
        ));
    }
    for e in &r.e7 {
        out.push_str(&format!(
            "  E7 {:<6} {} ms, {} LP solves ({} warm), {} B&B nodes, {} finding(s)\n",
            e.domain, e.wall_time_ms, e.lp_solves, e.lp_warm_hits, e.bb_nodes, e.findings
        ));
    }
    out.push_str(&format!(
        "  min B&B speedup over reference: {:.2}x\n",
        r.min_bnb_speedup
    ));
    out
}

/// Write the report to `path` and verify the emission parses back.
pub fn emit(r: &BenchReport, path: &str) -> Result<(), String> {
    let json = serde_json::to_string(r).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    // Self-check: a malformed emission must fail loudly, not ride to CI.
    let back = std::fs::read_to_string(path).map_err(|e| format!("re-read {path}: {e}"))?;
    let parsed: BenchReport =
        serde_json::from_str(&back).map_err(|e| format!("re-parse {path}: {e:?}"))?;
    if parsed.schema != SCHEMA {
        return Err(format!(
            "schema drift in {path}: {} != {SCHEMA}",
            parsed.schema
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_model_matches_domain_encoding() {
        // The bench's local model must stay in lockstep with the domain's
        // optimal_milp encoding (same optimum on the tight family).
        let (sol, _) = milp::solve_with(&sched_model(3), milp::Backend::Revised).unwrap();
        assert!((sol.objective - 9.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn quick_bench_emits_valid_json() {
        let report = run(true);
        assert!(report.lp_sweep.solves > 0);
        assert_eq!(report.bnb.len(), 3);
        assert!(report.e7.len() >= 3);
        let path = std::env::temp_dir().join(format!("bench6-test-{}.json", std::process::id()));
        let path = path.to_string_lossy().to_string();
        emit(&report, &path).expect("emission round-trips");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_sweep_actually_warms() {
        let r = lp_sweep(1, 10);
        assert_eq!(r.solves, 10);
        assert!(r.warm_hits > 0, "{r:?}");
    }
}
