//! Ablations of XPlain's design choices (DESIGN.md §5), quantified with
//! the risk-surface coverage metric of `xplain-core::coverage`:
//!
//! * **A1 — regression-tree refinement** (§5.2 / Fig. 5b): rough cube vs
//!   tree-refined polytope. The paper motivates the tree as reducing
//!   false positives; precision should rise with it.
//! * **A2 — DKW slice sampling**: looser ε means fewer samples per slice
//!   and cheaper growth but noisier boundaries.
//! * **A3 — density threshold**: how aggressively slices keep expanding.
//! * **A4 — heuristic comparison**: first-fit vs best-fit vs
//!   first-fit-decreasing gap profiles over a common instance family
//!   (the §2 remark that FF's siblings are "harder still" to reason
//!   about, made measurable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xplain_analyzer::oracle::{DpOracle, FfOracle, GapOracle};
use xplain_analyzer::search::Adversarial;
use xplain_core::coverage::{estimate_coverage, CoverageReport};
use xplain_core::features::FeatureMap;
use xplain_core::subspace::{grow_subspace, SubspaceParams};
use xplain_domains::te::TeProblem;
use xplain_domains::vbp::{best_fit, first_fit, first_fit_decreasing, optimal, VbpInstance};

/// One ablation configuration's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub label: String,
    pub coverage: CoverageReport,
    pub evaluations: usize,
    pub halfspaces: usize,
}

/// A1 + A2 + A3 on the DP subspace around the Fig. 1a adversarial point.
pub fn run_subspace_ablations() -> Vec<AblationRow> {
    let oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
    let seed = Adversarial {
        input: vec![50.0, 100.0, 100.0],
        gap: 100.0,
    };
    let features = FeatureMap::identity_with_sum(3, &oracle.dim_names());

    let variants: Vec<(String, SubspaceParams)> = vec![
        ("baseline (tree, eps=.15)".into(), SubspaceParams::default()),
        (
            "no tree refinement".into(),
            SubspaceParams {
                refine_with_tree: false,
                ..Default::default()
            },
        ),
        (
            "loose DKW (eps=.3)".into(),
            SubspaceParams {
                dkw_eps: 0.3,
                dkw_delta: 0.3,
                ..Default::default()
            },
        ),
        (
            "tight DKW (eps=.08)".into(),
            SubspaceParams {
                dkw_eps: 0.08,
                dkw_delta: 0.05,
                ..Default::default()
            },
        ),
        (
            "greedy expansion (density=.25)".into(),
            SubspaceParams {
                density_threshold: 0.25,
                ..Default::default()
            },
        ),
        (
            "cautious expansion (density=.75)".into(),
            SubspaceParams {
                density_threshold: 0.75,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, params) in variants {
        let mut rng = StdRng::seed_from_u64(0xAB1);
        let sub = grow_subspace(&oracle, &seed, &features, &params, &mut rng);
        let coverage = estimate_coverage(&oracle, std::slice::from_ref(&sub), 20.0, 3000, &mut rng);
        rows.push(AblationRow {
            label,
            coverage,
            evaluations: sub.evaluations,
            halfspaces: sub.polytope.halfspaces.len(),
        });
    }
    rows
}

/// A4: gap distribution of the three heuristics over a shared family.
#[derive(Debug, Clone)]
pub struct HeuristicRow {
    pub heuristic: String,
    pub mean_gap: f64,
    pub max_gap: f64,
    pub nonzero_frac: f64,
}

pub fn run_heuristic_comparison(instances: usize, n_balls: usize) -> Vec<HeuristicRow> {
    let mut rng = StdRng::seed_from_u64(0xAB4);
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for _ in 0..instances {
        let sizes: Vec<f64> = (0..n_balls).map(|_| rng.gen_range(0.05..0.95)).collect();
        let inst = VbpInstance::one_dim(&sizes);
        let opt = optimal(&inst).bins_used as f64;
        gaps[0].push(first_fit(&inst).bins_used as f64 - opt);
        gaps[1].push(best_fit(&inst).bins_used as f64 - opt);
        gaps[2].push(first_fit_decreasing(&inst).bins_used as f64 - opt);
    }
    ["first-fit", "best-fit", "first-fit-decreasing"]
        .iter()
        .zip(gaps)
        .map(|(name, g)| HeuristicRow {
            heuristic: name.to_string(),
            mean_gap: g.iter().sum::<f64>() / g.len().max(1) as f64,
            max_gap: g.iter().copied().fold(0.0, f64::max),
            nonzero_frac: g.iter().filter(|v| **v > 0.5).count() as f64 / g.len().max(1) as f64,
        })
        .collect()
}

/// The FF oracle as a fourth sanity row: the §2 subspace's gap threshold.
pub fn ff_probe() -> f64 {
    FfOracle::new(4).gap(&[0.01, 0.49, 0.51, 0.51])
}

pub fn render(subspace_rows: &[AblationRow], heuristic_rows: &[HeuristicRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablations — design choices of the subspace generator (DP, Fig. 1a)\n");
    out.push_str(&format!(
        "  {:<34} {:>7} {:>10} {:>10} {:>8} {:>6}\n",
        "variant", "evals", "recall", "precision", "volume", "faces"
    ));
    for r in subspace_rows {
        out.push_str(&format!(
            "  {:<34} {:>7} {:>9.1}% {:>9.1}% {:>7.1}% {:>6}\n",
            r.label,
            r.evaluations,
            r.coverage.risk_recall * 100.0,
            r.coverage.risk_precision * 100.0,
            r.coverage.volume_fraction * 100.0,
            r.halfspaces
        ));
    }
    out.push('\n');
    out.push_str("Heuristic comparison — FF vs BF vs FFD (random 12-ball instances)\n");
    out.push_str(&format!(
        "  {:<24} {:>9} {:>8} {:>12}\n",
        "heuristic", "mean gap", "max gap", "gap>0 share"
    ));
    for r in heuristic_rows {
        out.push_str(&format!(
            "  {:<24} {:>9.3} {:>8.0} {:>11.1}%\n",
            r.heuristic,
            r.mean_gap,
            r.max_gap,
            r.nonzero_frac * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_refinement_improves_precision() {
        let rows = run_subspace_ablations();
        let baseline = &rows[0];
        let no_tree = &rows[1];
        assert!(
            baseline.coverage.risk_precision >= no_tree.coverage.risk_precision - 0.05,
            "tree {:.3} vs no-tree {:.3}",
            baseline.coverage.risk_precision,
            no_tree.coverage.risk_precision
        );
        // The tree adds predicates (faces) beyond the box's 2n.
        assert!(baseline.halfspaces >= no_tree.halfspaces);
    }

    #[test]
    fn tighter_dkw_costs_more_evaluations() {
        let rows = run_subspace_ablations();
        let loose = rows.iter().find(|r| r.label.contains("loose")).unwrap();
        let tight = rows.iter().find(|r| r.label.contains("tight")).unwrap();
        assert!(
            tight.evaluations > loose.evaluations,
            "tight {} <= loose {}",
            tight.evaluations,
            loose.evaluations
        );
    }

    #[test]
    fn all_variants_find_meaningful_regions() {
        for r in run_subspace_ablations() {
            assert!(
                r.coverage.risk_precision > 0.3,
                "{}: precision {:.3}",
                r.label,
                r.coverage.risk_precision
            );
        }
    }

    #[test]
    fn ffd_dominates_ff_on_average() {
        let rows = run_heuristic_comparison(60, 12);
        let ff = rows.iter().find(|r| r.heuristic == "first-fit").unwrap();
        let ffd = rows
            .iter()
            .find(|r| r.heuristic == "first-fit-decreasing")
            .unwrap();
        assert!(
            ffd.mean_gap <= ff.mean_gap + 1e-9,
            "ffd {} vs ff {}",
            ffd.mean_gap,
            ff.mean_gap
        );
    }

    #[test]
    fn probe_point_still_adversarial() {
        assert_eq!(ff_probe(), 1.0);
    }
}
