//! Loopback load generator for the serving layer — emits `BENCH_5.json`
//! so the HTTP path joins the repo's performance trajectory alongside
//! the solver's `BENCH_6.json`.
//!
//! Three workloads against a live in-process server on an ephemeral
//! loopback port, all driven through the real wire (TCP + HTTP parsing +
//! JSON bodies — no shortcuts through the queue API):
//!
//! * **cold** — distinct specs, each `POST /v1/jobs` + polled to
//!   completion: the full submit→compute→store path. Latency is
//!   dominated by the pipeline itself; this is the end-to-end
//!   time-to-answer a first-time query pays.
//! * **cache_hit** — one warmed spec resubmitted repeatedly: the dedup
//!   path answering from the content-addressed state without touching a
//!   worker. This is the repeat-query latency the paper's interactive
//!   workflow leans on.
//! * **streaming** — fresh specs with `GET /v1/jobs/{id}/events` held
//!   open to stream the full NDJSON event trace; latency spans submit →
//!   terminal event.
//!
//! Reported per workload: requests/sec plus exact p50/p99/max latency
//! (exact percentiles over the raw samples — `xplain_stats`'s
//! `percentile_exact`, not bucket estimates; the sample sets are small
//! and fully in hand).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{DomainRegistry, JobSpec, SessionBudgets};
use xplain_serve::{Client, Server, ServerConfig};
use xplain_stats::percentile_exact;

/// Schema marker for the emitted file.
pub const SCHEMA: &str = "xplain-bench-5/v1";

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// `cold`, `cache_hit`, or `streaming`.
    pub name: String,
    pub requests: usize,
    pub total_ms: f64,
    pub requests_per_sec: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    pub schema: String,
    /// `quick` (CI) or `full` (the committed snapshot).
    pub mode: String,
    pub queue_workers: usize,
    pub http_threads: usize,
    pub workloads: Vec<WorkloadReport>,
}

/// Small-but-real pipeline work for the served jobs: one subspace, no
/// coverage pass — enough to exercise analyzer + growth + significance +
/// explainer per request without making "cold" a minutes-long workload.
fn bench_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 4,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 40,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 60,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 0,
        ..Default::default()
    }
}

fn spec_json(seed: u64) -> String {
    serde_json::to_string(&JobSpec {
        domain: "sched".into(),
        config: bench_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    })
    .expect("spec serializes")
}

fn workload(name: &str, samples_ms: &[f64], total_ms: f64) -> WorkloadReport {
    WorkloadReport {
        name: name.to_string(),
        requests: samples_ms.len(),
        total_ms,
        requests_per_sec: if total_ms > 0.0 {
            samples_ms.len() as f64 / (total_ms / 1000.0)
        } else {
            0.0
        },
        p50_ms: percentile_exact(samples_ms, 0.50).unwrap_or(0.0),
        p99_ms: percentile_exact(samples_ms, 0.99).unwrap_or(0.0),
        max_ms: percentile_exact(samples_ms, 1.0).unwrap_or(0.0),
    }
}

/// Submit one spec and poll `GET /v1/jobs/{id}` to completion; returns
/// the job id.
fn submit_and_wait(api: &Client, body: &str) -> String {
    let resp = api.post("/v1/jobs", body).expect("submit");
    assert!(
        resp.status == 200 || resp.status == 202,
        "submit failed: {} {}",
        resp.status,
        resp.body
    );
    let id = extract_id(&resp.body);
    loop {
        let status = api.get(&format!("/v1/jobs/{id}")).expect("poll");
        if status.body.contains("\"status\":\"done\"") {
            return id;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Pull `"id":"…"` out of a submit receipt without a typed mirror of the
/// server's response struct.
fn extract_id(body: &str) -> String {
    body.split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("submit receipt carries an id")
        .to_string()
}

/// Run the three workloads and assemble the report.
pub fn run(quick: bool) -> ServeBenchReport {
    let (n_cold, n_cache, n_stream) = if quick { (3, 100, 3) } else { (20, 2000, 10) };
    let queue_workers = 2;
    let http_threads = 8;

    let store_dir = std::env::temp_dir().join(format!("xplain-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers,
        http_threads,
        capacity: 256,
        store_dir: Some(store_dir.clone()),
        read_timeout: Duration::from_secs(120),
        retain_done: 1024,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    let api = Client::new(handle.addr()).with_timeout(Duration::from_secs(120));

    // Cold: distinct seeds, submit + poll to completion, one at a time
    // (per-request latency is the metric; throughput under concurrency
    // would need a second load thread and muddy the p50/p99 story).
    let mut cold_ms = Vec::with_capacity(n_cold);
    let cold_start = Instant::now();
    for i in 0..n_cold {
        let t0 = Instant::now();
        submit_and_wait(&api, &spec_json(0xC01D + i as u64));
        cold_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let cold_total = cold_start.elapsed().as_secs_f64() * 1000.0;

    // Cache hits: resubmit the first cold spec; answered from the
    // content-addressed state without occupying a worker.
    let warmed = spec_json(0xC01D);
    let mut cache_ms = Vec::with_capacity(n_cache);
    let cache_start = Instant::now();
    for _ in 0..n_cache {
        let t0 = Instant::now();
        let resp = api.post("/v1/jobs", &warmed).expect("cache-hit submit");
        assert_eq!(resp.status, 200, "expected a cache hit: {}", resp.body);
        cache_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let cache_total = cache_start.elapsed().as_secs_f64() * 1000.0;

    // Streaming: fresh specs, stream the full event trace.
    let mut stream_ms = Vec::with_capacity(n_stream);
    let stream_start = Instant::now();
    for i in 0..n_stream {
        let t0 = Instant::now();
        let resp = api
            .post("/v1/jobs", &spec_json(0x57E0 + i as u64))
            .expect("stream submit");
        let id = extract_id(&resp.body);
        let (status, mut stream) = api
            .stream(&format!("/v1/jobs/{id}/events"))
            .expect("stream open");
        assert_eq!(status, 200);
        let lines = stream.collect_lines().expect("stream drains");
        assert!(!lines.is_empty(), "streamed job emitted no events");
        stream_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let stream_total = stream_start.elapsed().as_secs_f64() * 1000.0;

    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&store_dir);

    ServeBenchReport {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        queue_workers,
        http_threads,
        workloads: vec![
            workload("cold", &cold_ms, cold_total),
            workload("cache_hit", &cache_ms, cache_total),
            workload("streaming", &stream_ms, stream_total),
        ],
    }
}

/// Human-readable summary.
pub fn render(r: &ServeBenchReport) -> String {
    let mut out = format!(
        "serve bench ({} mode): {} queue workers, {} http threads\n",
        r.mode, r.queue_workers, r.http_threads
    );
    for w in &r.workloads {
        out.push_str(&format!(
            "  {:<10} {:>5} requests  {:>9.1} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms\n",
            w.name, w.requests, w.requests_per_sec, w.p50_ms, w.p99_ms, w.max_ms
        ));
    }
    out
}

/// Write the report to `path` and verify the emission parses back.
pub fn emit(r: &ServeBenchReport, path: &str) -> Result<(), String> {
    let json = serde_json::to_string(r).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    let back = std::fs::read_to_string(path).map_err(|e| format!("re-read {path}: {e}"))?;
    let parsed: ServeBenchReport =
        serde_json::from_str(&back).map_err(|e| format!("re-parse {path}: {e:?}"))?;
    if parsed.schema != SCHEMA {
        return Err(format!(
            "schema drift in {path}: {} != {SCHEMA}",
            parsed.schema
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_run_emits_valid_json() {
        let report = run(true);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.requests > 0, "{w:?}");
            assert!(w.requests_per_sec > 0.0, "{w:?}");
            assert!(w.p50_ms <= w.p99_ms && w.p99_ms <= w.max_ms, "{w:?}");
        }
        // Cache hits must be far cheaper than cold computes.
        let cold = &report.workloads[0];
        let cache = &report.workloads[1];
        assert!(
            cache.p50_ms < cold.p50_ms,
            "cache-hit p50 {} not below cold p50 {}",
            cache.p50_ms,
            cold.p50_ms
        );
        let path = std::env::temp_dir().join(format!("bench5-test-{}.json", std::process::id()));
        let path = path.to_string_lossy().to_string();
        emit(&report, &path).expect("emission round-trips");
        let _ = std::fs::remove_file(&path);
    }
}
