//! `serve-bench` — the serving-layer load benchmark, emitting
//! `BENCH_5.json`.
//!
//! ```text
//! serve-bench [--quick] [--out PATH]
//!
//! --quick   CI-sized request counts
//! --out     output path (default BENCH_5.json in the working directory)
//! ```
//!
//! Starts an in-process server on an ephemeral loopback port, drives the
//! cold / cache-hit / streaming workloads over real HTTP, prints a human
//! summary, and writes the machine-readable report; exits nonzero if the
//! emitted JSON fails to parse back (the CI smoke gate relies on this).

use xplain_bench::serve_load;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_5.json".to_string());

    let report = serve_load::run(quick);
    print!("{}", serve_load::render(&report));
    match serve_load::emit(&report, &out_path) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => {
            eprintln!("serve-bench emission failed: {e}");
            std::process::exit(1);
        }
    }
}
