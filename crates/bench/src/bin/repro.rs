//! `repro` — regenerate every table and figure of the XPlain paper.
//!
//! ```text
//! repro <experiment> [--fast]
//!
//! experiments:
//!   fig1           E1: the Fig. 1a Demand Pinning table
//!   sec2-vbp       E2: adversarial VBP sizes via the exact MILP
//!   fig2           E3: the 17-ball first-fit instance
//!   fig4           E4: explainer heat-maps (writes DOT next to stdout)
//!   fig5           E5: adversarial subspaces + significance p-values
//!   speedup        E6: compiled-DSL redundancy-elimination speedup
//!   pipeline-time  E7: end-to-end pipeline wall-clock
//!   generalizer    E8: Type-3 trends (increasing(P))
//!   appendix-a     E9: Theorem A.1 battery
//!   ablations      design-choice ablations (tree, DKW, thresholds, heuristics)
//!   all            everything above, in order
//!
//! `--fast` shrinks sample counts (CI-friendly); default sizes match the
//! paper (3000 explainer samples etc.).
//! ```

use std::io::Write;
use xplain_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let explainer_samples = if fast { 300 } else { 3000 };
    let sig_pairs = if fast { 120 } else { 400 };
    let speedup_trials = if fast { 10 } else { 60 };

    let run_one = |name: &str| match name {
        "fig1" => print!("{}", fig1::render(&fig1::run())),
        "sec2-vbp" => print!("{}", vbp_examples::render_sec2(&vbp_examples::run_sec2())),
        "fig2" => print!(
            "{}",
            vbp_examples::render_fig2(&vbp_examples::run_fig2(true))
        ),
        "fig4" => {
            let dp = fig4::run_dp(explainer_samples);
            let ff = fig4::run_ff(explainer_samples);
            print!("{}", fig4::render(&dp, &ff));
            for (path, dot) in [("fig4a_dp.dot", &dp.dot), ("fig4b_ff.dot", &ff.dot)] {
                if let Ok(mut f) = std::fs::File::create(path) {
                    let _ = f.write_all(dot.as_bytes());
                    println!("  wrote {path}");
                }
            }
        }
        "fig5" => print!("{}", fig5::render(&fig5::run(sig_pairs))),
        "speedup" => print!("{}", speedup::render(&speedup::run(speedup_trials))),
        "pipeline-time" => print!(
            "{}",
            pipeline_time::render(&pipeline_time::run(explainer_samples))
        ),
        "generalizer" => print!("{}", generalize::render(&generalize::run())),
        "appendix-a" => print!("{}", appendix_a::render(&appendix_a::run())),
        "ablations" => print!(
            "{}",
            ablations::render(
                &ablations::run_subspace_ablations(),
                &ablations::run_heuristic_comparison(if fast { 30 } else { 100 }, 12),
            )
        ),
        other => {
            eprintln!("unknown experiment '{other}'; see --help in the module docs");
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "fig1",
            "sec2-vbp",
            "fig2",
            "fig4",
            "fig5",
            "speedup",
            "pipeline-time",
            "generalizer",
            "appendix-a",
            "ablations",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(which);
    }
}
