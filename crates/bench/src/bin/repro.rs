//! `repro` — regenerate every table and figure of the XPlain paper.
//!
//! ```text
//! repro <experiment> [--fast] [--serial]
//!
//! experiments:
//!   fig1           E1: the Fig. 1a Demand Pinning table
//!   sec2-vbp       E2: adversarial VBP sizes via the exact MILP
//!   fig2           E3: the 17-ball first-fit instance
//!   fig4           E4: explainer heat-maps (writes DOT next to stdout)
//!   fig5           E5: adversarial subspaces + significance p-values
//!   speedup        E6: compiled-DSL redundancy-elimination speedup
//!   pipeline-time  E7: end-to-end pipeline wall-clock (via the engine)
//!   generalizer    E8: Type-3 trends (increasing(P))
//!   appendix-a     E9: Theorem A.1 battery
//!   ablations      design-choice ablations (tree, DKW, thresholds, heuristics)
//!   engine         batch-engine demo: 3-domain manifest, parallel + cached
//!   all            everything above, in order
//!
//! `--fast` shrinks sample counts (CI-friendly); default sizes match the
//! paper (3000 explainer samples etc.). `all` renders the artifacts
//! *concurrently* through the runtime's executor (each E-artifact is one
//! fan-out task; output order stays E1..E9); `--serial` opts out.
//! ```

use std::io::Write;
use xplain_bench::*;
use xplain_core::pipeline::PipelineConfig;
use xplain_runtime::{fan_out, run_manifest, DomainRegistry, JobSpec, ResultStore};

/// Render one experiment to a string (so artifacts can be produced
/// concurrently and printed in order).
fn render_one(name: &str, fast: bool) -> Option<String> {
    let explainer_samples = if fast { 300 } else { 3000 };
    let sig_pairs = if fast { 120 } else { 400 };
    let speedup_trials = if fast { 10 } else { 60 };

    let out = match name {
        "fig1" => fig1::render(&fig1::run()),
        "sec2-vbp" => vbp_examples::render_sec2(&vbp_examples::run_sec2()),
        "fig2" => vbp_examples::render_fig2(&vbp_examples::run_fig2(true)),
        "fig4" => {
            let dp = fig4::run_dp(explainer_samples);
            let ff = fig4::run_ff(explainer_samples);
            let mut out = fig4::render(&dp, &ff);
            for (path, dot) in [("fig4a_dp.dot", &dp.dot), ("fig4b_ff.dot", &ff.dot)] {
                if let Ok(mut f) = std::fs::File::create(path) {
                    let _ = f.write_all(dot.as_bytes());
                    out.push_str(&format!("  wrote {path}\n"));
                }
            }
            out
        }
        "fig5" => fig5::render(&fig5::run(sig_pairs)),
        "speedup" => speedup::render(&speedup::run(speedup_trials)),
        "pipeline-time" => pipeline_time::render(&pipeline_time::run(explainer_samples)),
        "generalizer" => generalize::render(&generalize::run()),
        "appendix-a" => appendix_a::render(&appendix_a::run()),
        "ablations" => ablations::render(
            &ablations::run_subspace_ablations(),
            &ablations::run_heuristic_comparison(if fast { 30 } else { 100 }, 12),
        ),
        "engine" => render_engine(fast),
        _ => return None,
    };
    Some(out)
}

/// The batch-engine demo: one job per registered domain, executed with 4
/// workers against a cold store, then re-executed to show cache hits.
fn render_engine(fast: bool) -> String {
    let registry = DomainRegistry::builtin();
    let mut config = PipelineConfig {
        max_subspaces: 2,
        ..Default::default()
    };
    if fast {
        config.explainer.samples = 300;
        config.significance.pairs = 120;
        config.coverage_samples = 500;
    }
    let jobs: Vec<JobSpec> = registry
        .ids()
        .into_iter()
        .map(|domain| JobSpec {
            domain,
            config: config.clone(),
            seed: 0xEE,
            budgets: Default::default(),
        })
        .collect();
    let store_dir = "target/repro-engine-store";
    let _ = std::fs::remove_dir_all(store_dir);
    let store = ResultStore::new(store_dir);

    let mut out = String::new();
    out.push_str("Engine — 3-domain manifest through the batch executor\n");
    for (pass, label) in [(1, "cold store (computed, 4 workers)"), (2, "warm store")] {
        let outcomes = run_manifest(&registry, &jobs, Some(&store), 4);
        out.push_str(&format!("  pass {pass} — {label}:\n"));
        for o in &outcomes {
            let findings = o.result.as_ref().map(|r| r.findings.len()).unwrap_or(0);
            out.push_str(&format!(
                "    {:<6} seed {:016x}  {:<5} {} finding(s), {} ms\n",
                o.domain,
                o.derived_seed,
                if o.cache_hit { "hit" } else { "miss" },
                findings,
                o.wall_time_ms
            ));
        }
    }
    out.push_str(&format!(
        "  store: {} entries in {store_dir} (keys = hash(domain id + config))\n",
        store.len()
    ));
    out
}

const ALL: &[&str] = &[
    "fig1",
    "sec2-vbp",
    "fig2",
    "fig4",
    "fig5",
    "speedup",
    "pipeline-time",
    "generalizer",
    "appendix-a",
    "ablations",
    "engine",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let serial = args.iter().any(|a| a == "--serial");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    if which == "all" {
        // Each artifact renders in its own executor task; printing stays
        // in E1..E9 order because fan_out returns slots by index. E7 is
        // the one artifact whose *numbers* are wall-clock measurements,
        // so it is excluded from the concurrent batch and rendered alone
        // afterwards — contention from sibling artifacts must not
        // inflate the timings it reports.
        let workers = if serial { 1 } else { 0 };
        let outputs = fan_out(ALL.len(), workers, |i| {
            if ALL[i] == "pipeline-time" {
                String::new()
            } else {
                render_one(ALL[i], fast).expect("known experiment")
            }
        });
        for (i, output) in outputs.into_iter().enumerate() {
            if ALL[i] == "pipeline-time" {
                print!(
                    "{}",
                    render_one("pipeline-time", fast).expect("known experiment")
                );
            } else {
                print!("{output}");
            }
            println!();
        }
    } else {
        match render_one(which, fast) {
            Some(output) => print!("{output}"),
            None => {
                eprintln!("unknown experiment '{which}'; see --help in the module docs");
                std::process::exit(2);
            }
        }
    }
}
