//! `mesh-bench` — the sharded-tier scaling benchmark, emitting
//! `BENCH_7.json`.
//!
//! ```text
//! mesh-bench [--quick] [--out PATH]
//!
//! --quick   CI-sized job counts
//! --out     output path (default BENCH_7.json in the working directory)
//! ```
//!
//! Stands up the 1-shard and 4-shard topologies (in-process shards +
//! stealers + gateway, real loopback HTTP end to end), measures cold-job
//! throughput through the gateway for each, prints a human summary, and
//! writes the machine-readable report; exits nonzero if the emitted JSON
//! fails to parse back (the CI gate relies on this).

use xplain_bench::mesh_load;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_7.json".to_string());

    let report = mesh_load::run(quick);
    print!("{}", mesh_load::render(&report));
    match mesh_load::emit(&report, &out_path) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => {
            eprintln!("mesh-bench emission failed: {e}");
            std::process::exit(1);
        }
    }
}
