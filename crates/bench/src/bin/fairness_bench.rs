//! `fairness-bench` — the multi-tenant fairness benchmark, emitting
//! `BENCH_10.json`.
//!
//! ```text
//! fairness-bench [--quick] [--out PATH]
//!
//! --quick   CI-sized job counts
//! --out     output path (default BENCH_10.json in the working directory)
//! ```
//!
//! Stands up an enforcing single-worker server (real loopback HTTP,
//! bearer-key auth), measures the light tenant's submit→done latency
//! p99 alone and under a 10:1 heavy-tenant flood, prints a human
//! summary, and writes the machine-readable report; exits nonzero if
//! the emitted JSON fails to parse back (the CI gate relies on this).

use xplain_bench::fairness_load;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_10.json".to_string());

    let report = fairness_load::run(quick);
    print!("{}", fairness_load::render(&report));
    match fairness_load::emit(&report, &out_path) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => {
            eprintln!("fairness-bench emission failed: {e}");
            std::process::exit(1);
        }
    }
}
