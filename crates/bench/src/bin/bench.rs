//! `bench` — the solver performance benchmark, emitting `BENCH_6.json`.
//!
//! ```text
//! bench [--quick] [--out PATH]
//!
//! --quick   CI-sized repeats and sample counts
//! --out     output path (default BENCH_6.json in the working directory)
//! ```
//!
//! Prints a human summary to stdout and writes the machine-readable
//! report; exits nonzero if the emitted JSON fails to parse back (the CI
//! smoke gate relies on this).

use xplain_bench::solver_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_6.json".to_string());

    let report = solver_bench::run(quick);
    print!("{}", solver_bench::render(&report));
    match solver_bench::emit(&report, &out_path) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => {
            eprintln!("bench emission failed: {e}");
            std::process::exit(1);
        }
    }
}
