//! E5 — Fig. 5: the adversarial subspace generator outputs and the
//! significance checker's p-values.
//!
//! Paper values: the first FF subspace `D0` has the rough cube
//! `C0 = [0.01 0.51 0.51 0.51 | 0 -0.49 -0.49 -0.49]` with tree-path
//! predicates like `ΣB <= 1.5` / `B1 <= 0.5` (Fig. 5b/5c), and the
//! reported p-values are ≈ 2×10⁻⁶⁰ for DP and ≈ 8×10⁻¹¹ for VBP.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xplain_analyzer::oracle::{DpOracle, FfOracle, GapOracle};
use xplain_analyzer::search::Adversarial;
use xplain_core::features::FeatureMap;
use xplain_core::report::render_subspace;
use xplain_core::significance::{check_significance, SignificanceParams, SignificanceReport};
use xplain_core::subspace::{grow_subspace, Subspace, SubspaceParams};
use xplain_domains::te::TeProblem;

/// One domain's subspace + significance numbers.
#[derive(Debug, Clone)]
pub struct SubspaceExperiment {
    pub subspace: Subspace,
    pub significance: Option<SignificanceReport>,
    pub dim_names: Vec<String>,
}

/// E5 result for both domains.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    pub dp: SubspaceExperiment,
    pub ff: SubspaceExperiment,
}

/// Run E5. `pairs` controls the significance sample size (the paper-scale
/// p-values need several hundred pairs).
pub fn run(pairs: usize) -> Fig5Result {
    // --- FF: grow D0 from the §2 adversarial point -----------------------
    let ff_oracle = FfOracle::new(4);
    let ff_seed = Adversarial {
        input: vec![0.01, 0.49, 0.51, 0.51],
        gap: 1.0,
    };
    let ff_names = ff_oracle.dim_names();
    let ff_features = FeatureMap::identity_with_sum(4, &ff_names);
    let mut rng = StdRng::seed_from_u64(0x515);
    let ff_sub = grow_subspace(
        &ff_oracle,
        &ff_seed,
        &ff_features,
        &SubspaceParams::default(),
        &mut rng,
    );
    let ff_sig = check_significance(
        &ff_oracle,
        &ff_sub,
        &SignificanceParams {
            pairs,
            ..Default::default()
        },
        &mut rng,
    )
    .ok();

    // --- DP: grow the Fig. 1a subspace -----------------------------------
    let dp_oracle = DpOracle::new(TeProblem::fig1a(), 50.0);
    let dp_seed = Adversarial {
        input: vec![50.0, 100.0, 100.0],
        gap: 100.0,
    };
    let dp_names = dp_oracle.dim_names();
    let dp_features = FeatureMap::identity_with_sum(3, &dp_names);
    let mut rng2 = StdRng::seed_from_u64(0xD9);
    let dp_sub = grow_subspace(
        &dp_oracle,
        &dp_seed,
        &dp_features,
        &SubspaceParams::default(),
        &mut rng2,
    );
    let dp_sig = check_significance(
        &dp_oracle,
        &dp_sub,
        &SignificanceParams {
            pairs,
            ..Default::default()
        },
        &mut rng2,
    )
    .ok();

    Fig5Result {
        dp: SubspaceExperiment {
            subspace: dp_sub,
            significance: dp_sig,
            dim_names: dp_names,
        },
        ff: SubspaceExperiment {
            subspace: ff_sub,
            significance: ff_sig,
            dim_names: ff_names,
        },
    }
}

pub fn render(r: &Fig5Result) -> String {
    let mut out = String::new();
    out.push_str("E5 / Fig. 5 — adversarial subspaces and significance\n\n");
    out.push_str(
        "First-fit subspace D0 (paper C0 ~ B0 in [0, 0.01+], B1 in [0.49-, 0.51], ...):\n",
    );
    out.push_str(&render_subspace(&r.ff.subspace, &r.ff.dim_names, 0));
    if let Some(sig) = &r.ff.significance {
        out.push_str(&format!(
            "  significance: p = {:.2e} on {} pairs (paper: 8e-11)\n",
            sig.test.p_value, sig.pairs_used
        ));
    }
    out.push('\n');
    out.push_str("Demand Pinning subspace D0:\n");
    out.push_str(&render_subspace(&r.dp.subspace, &r.dp.dim_names, 0));
    if let Some(sig) = &r.dp.significance {
        out.push_str(&format!(
            "  significance: p = {:.2e} on {} pairs (paper: 2e-60)\n",
            sig.test.p_value, sig.pairs_used
        ));
    }
    if let (Some(dp), Some(ff)) = (&r.dp.significance, &r.ff.significance) {
        out.push_str(&format!(
            "\n  shape check: p(DP) = {:.1e} << p(VBP) = {:.1e} — same ordering as the paper\n",
            dp.test.p_value, ff.test.p_value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_subspaces_significant() {
        let r = run(120);
        let dp = r.dp.significance.as_ref().expect("dp significance");
        let ff = r.ff.significance.as_ref().expect("ff significance");
        assert!(dp.significant, "DP p = {}", dp.test.p_value);
        assert!(ff.significant, "FF p = {}", ff.test.p_value);
    }

    #[test]
    fn dp_p_value_far_below_ff() {
        // The paper's ordering: DP's subspace is *much* more significant
        // (2e-60 vs 8e-11). Check the ordering, not the absolute values.
        let r = run(200);
        let dp = r.dp.significance.as_ref().unwrap().test.p_value;
        let ff = r.ff.significance.as_ref().unwrap().test.p_value;
        assert!(dp < ff, "dp {dp} vs ff {ff}");
        assert!(dp < 1e-20, "dp p-value should be extreme: {dp}");
    }

    #[test]
    fn ff_subspace_contains_paper_point() {
        let r = run(60);
        assert!(r.ff.subspace.contains(&[0.01, 0.49, 0.51, 0.51]));
    }

    #[test]
    fn dp_subspace_keeps_pinnable_below_threshold() {
        let r = run(60);
        // The rough box must not extend the pinnable demand far above the
        // threshold (gap dies there).
        assert!(
            r.dp.subspace.rough_hi[0] <= 60.0,
            "{:?}",
            r.dp.subspace.rough_hi
        );
    }
}
