//! E9 — Appendix A / Theorem A.1: any LP or MILP maps onto the six node
//! behaviors, preserving the optimum.
//!
//! The paper proves this constructively; we *execute* the construction on
//! a battery of canonical models and compare optima, also reporting the
//! encoding blow-up (the paper concedes the mapping "does not mean … the
//! most efficient representation").

use xplain_flownet::encode_lp::encode;
use xplain_flownet::CompileOptions;
use xplain_lp::{Cmp, Model, Sense, VarType};

/// One roundtrip row.
#[derive(Debug, Clone)]
pub struct EncodingRow {
    pub name: String,
    pub direct_objective: f64,
    pub flow_objective: f64,
    pub direct_vars: usize,
    pub direct_constraints: usize,
    pub flow_nodes: usize,
    pub flow_edges: usize,
    pub agree: bool,
}

/// E9 result.
#[derive(Debug, Clone)]
pub struct AppendixAResult {
    pub rows: Vec<EncodingRow>,
}

fn production_lp() -> (String, Model) {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6; x, y in [0, 10]
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Continuous, 0.0, 10.0);
    let y = m.add_var("y", VarType::Continuous, 0.0, 10.0);
    m.add_constr("c1", x + y, Cmp::Le, 4.0);
    m.add_constr("c2", x + y * 3.0, Cmp::Le, 6.0);
    m.set_objective(x * 3.0 + y * 2.0);
    ("production LP".into(), m)
}

fn transportation_lp() -> (String, Model) {
    let mut m = Model::new(Sense::Minimize);
    let mut vars = Vec::new();
    for i in 0..2 {
        for j in 0..2 {
            vars.push(m.add_var(format!("t{i}{j}"), VarType::Continuous, 0.0, 30.0));
        }
    }
    m.add_constr("s0", vars[0] + vars[1], Cmp::Le, 10.0);
    m.add_constr("s1", vars[2] + vars[3], Cmp::Le, 20.0);
    m.add_constr("d0", vars[0] + vars[2], Cmp::Ge, 15.0);
    m.add_constr("d1", vars[1] + vars[3], Cmp::Ge, 15.0);
    m.set_objective(vars[0] * 1.0 + vars[1] * 2.0 + vars[2] * 3.0 + vars[3] * 1.0);
    ("transportation LP".into(), m)
}

fn knapsack_milp() -> (String, Model) {
    let mut m = Model::new(Sense::Maximize);
    let x: Vec<_> = (0..4).map(|i| m.add_binary(format!("k{i}"))).collect();
    m.add_constr(
        "cap",
        x[0] * 3.0 + x[1] * 4.0 + x[2] * 2.0 + x[3] * 5.0,
        Cmp::Le,
        8.0,
    );
    m.set_objective(x[0] * 10.0 + x[1] * 13.0 + x[2] * 7.0 + x[3] * 11.0);
    ("knapsack MILP".into(), m)
}

fn integer_program() -> (String, Model) {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Integer, 0.0, 9.0);
    let y = m.add_var("y", VarType::Integer, 0.0, 9.0);
    m.add_constr("c1", x * 2.0 + y, Cmp::Le, 11.0);
    m.add_constr("c2", x + y * 3.0, Cmp::Le, 14.0);
    m.set_objective(x * 2.0 + y * 3.0);
    ("general integers".into(), m)
}

fn mixed_signs_lp() -> (String, Model) {
    // Negative coefficients in rows and objective; equality constraint.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarType::Continuous, 0.0, 8.0);
    let y = m.add_var("y", VarType::Continuous, 0.0, 8.0);
    let z = m.add_var("z", VarType::Continuous, 0.5, 8.0);
    m.add_constr("e", x + y - z, Cmp::Eq, 3.0);
    m.add_constr("g", x - y, Cmp::Ge, -2.0);
    m.set_objective(x * 2.0 - y + z * 0.5);
    ("mixed signs + equality".into(), m)
}

/// Run the Theorem A.1 battery.
pub fn run() -> AppendixAResult {
    let models = vec![
        production_lp(),
        transportation_lp(),
        knapsack_milp(),
        integer_program(),
        mixed_signs_lp(),
    ];
    let mut rows = Vec::new();
    for (name, model) in models {
        let direct = model.solve().expect("direct solve");
        let encoded = encode(&model).expect("encodable");
        let (flow_obj, _values) = encoded
            .solve(&CompileOptions::default())
            .expect("flow solve");
        rows.push(EncodingRow {
            agree: (direct.objective - flow_obj).abs() < 1e-4,
            name,
            direct_objective: direct.objective,
            flow_objective: flow_obj,
            direct_vars: model.num_vars(),
            direct_constraints: model.num_constraints(),
            flow_nodes: encoded.net.num_nodes(),
            flow_edges: encoded.net.num_edges(),
        });
    }
    AppendixAResult { rows }
}

pub fn render(r: &AppendixAResult) -> String {
    let mut out = String::new();
    out.push_str("E9 / Appendix A — Theorem A.1 executed: LP/MILP -> flow network\n");
    out.push_str(&format!(
        "  {:<24} {:>10} {:>10} {:>6} {:>6} {:>7} {:>7}  ok\n",
        "model", "direct", "via-flow", "vars", "rows", "nodes", "edges"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "  {:<24} {:>10.4} {:>10.4} {:>6} {:>6} {:>7} {:>7}  {}\n",
            row.name,
            row.direct_objective,
            row.flow_objective,
            row.direct_vars,
            row.direct_constraints,
            row.flow_nodes,
            row.flow_edges,
            if row.agree { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_roundtrips() {
        let r = run();
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(
                row.agree,
                "{}: direct {} vs flow {}",
                row.name, row.direct_objective, row.flow_objective
            );
        }
    }

    #[test]
    fn encoding_blowup_is_reported() {
        let r = run();
        for row in &r.rows {
            // The constructive encoding is never smaller than the original.
            assert!(row.flow_edges >= row.direct_vars, "{row:?}");
        }
    }
}
