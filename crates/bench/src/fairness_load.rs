//! Multi-tenant fairness benchmark — emits `BENCH_10.json`: the light
//! tenant's completion-latency p99 with and without a 10:1 heavy-tenant
//! flood, driven end-to-end over real loopback HTTP with bearer keys.
//!
//! ## What the ratio means
//!
//! A shared queue without fair-share dispatch makes a latency-sensitive
//! tenant wait behind whatever a bulk tenant dumped before it: under a
//! 10:1 flood, FIFO would put every light job behind ~10x its own
//! backlog and its p99 would blow up ~10x. Weighted deficit-round-robin
//! (DESIGN.md §12) bounds the damage to the tenants' weight ratio
//! instead: with the light tenant at weight 3 and the flooder at
//! weight 1, the light lane keeps 3/4 of the service rate and its p99
//! should sit near 4/3 of its isolation value — the CI gate demands
//! ≤ 3.0x (quick) and the committed full-mode snapshot ≤ 2.0x.
//!
//! ## Why pacing makes this honest on any machine
//!
//! Same discipline as `mesh_load`: one worker paced at `PACE_MS` per
//! executed job makes service time — not the shared CI core — the
//! resource being divided, so the measured ratio is a property of the
//! scheduler, not of the box. Job compute is kept a small fraction of
//! the pace.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_runtime::{DomainRegistry, JobSpec, SessionBudgets, TenantRegistry};
use xplain_serve::{Client, Server, ServerConfig};
use xplain_stats::percentile_exact;

/// Schema marker for the emitted file.
pub const SCHEMA: &str = "xplain-bench-10/v1";

/// Per-worker minimum service time for executed jobs (ms) — large
/// relative to per-job compute so lane scheduling, not the shared
/// core, decides completion times.
const PACE_MS: u64 = 150;
const LIGHT_WEIGHT: u64 = 3;
const HEAVY_WEIGHT: u64 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// `isolation` (light alone) or `contended` (10:1 heavy flood).
    pub scenario: String,
    pub light_jobs: usize,
    pub heavy_jobs: usize,
    pub light_p50_ms: f64,
    pub light_p99_ms: f64,
    pub light_max_ms: f64,
    pub elapsed_ms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessBenchReport {
    pub schema: String,
    /// `quick` (CI) or `full` (the committed snapshot).
    pub mode: String,
    pub pace_ms: u64,
    pub light_weight: u64,
    pub heavy_weight: u64,
    pub scenarios: Vec<ScenarioReport>,
    /// `light p99 (contended) / light p99 (isolation)` — the headline
    /// number; CI gates on it.
    pub light_p99_contended_over_isolation: f64,
}

/// Deliberately tiny pipeline work (compute ≪ `PACE_MS`) that still
/// exercises the full authenticated submit→lane→compute path.
fn bench_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 3,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 30,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 40,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 0,
        ..Default::default()
    }
}

fn spec_json(seed: u64) -> String {
    serde_json::to_string(&JobSpec {
        domain: "sched".into(),
        config: bench_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    })
    .expect("spec serializes")
}

fn extract_id(body: &str) -> String {
    body.split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("submit receipt carries an id")
        .to_string()
}

/// Write the two-tenant registry the benchmark servers load.
fn write_tenants_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "xplain-fairness-tenants-{tag}-{}.json",
        std::process::id()
    ));
    std::fs::write(
        &path,
        format!(
            r#"{{"tenants": [
                {{"id": "heavy", "key_fnv": "{}", "weight": {HEAVY_WEIGHT}}},
                {{"id": "light", "key_fnv": "{}", "weight": {LIGHT_WEIGHT}}}
            ]}}"#,
            TenantRegistry::hash_api_key("heavy-key"),
            TenantRegistry::hash_api_key("light-key"),
        ),
    )
    .expect("tenant config writes");
    path
}

/// Stand up one enforcing single-worker server, flood it with
/// `heavy_jobs` from the heavy tenant, then submit `light_jobs` from
/// the light tenant and measure each light job's submit→done latency.
fn run_scenario(
    scenario: &str,
    heavy_jobs: usize,
    light_jobs: usize,
    seed_base: u64,
) -> ScenarioReport {
    let tenants_file = write_tenants_file(scenario);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 1,
        http_threads: 4,
        capacity: 4096,
        store_dir: None,
        read_timeout: Duration::from_secs(120),
        retain_done: 8192,
        shard_id: None,
        pace_ms: PACE_MS,
        mesh: None,
        journal: false,
        journal_dir: None,
        tenants: Some(tenants_file.clone()),
    })
    .expect("server binds");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let registry = DomainRegistry::builtin();
        server.run(&registry).expect("server runs");
    });
    let heavy = Client::new(handle.addr())
        .with_timeout(Duration::from_secs(120))
        .with_bearer("heavy-key");
    let light = Client::new(handle.addr())
        .with_timeout(Duration::from_secs(120))
        .with_bearer("light-key");

    let t0 = Instant::now();
    let mut heavy_ids = Vec::with_capacity(heavy_jobs);
    for i in 0..heavy_jobs {
        let resp = heavy
            .post("/v1/jobs", &spec_json(seed_base + i as u64))
            .expect("heavy submit");
        assert!(
            resp.status == 200 || resp.status == 202,
            "heavy submit failed: {} {}",
            resp.status,
            resp.body
        );
        heavy_ids.push(extract_id(&resp.body));
    }
    let mut light_pending: Vec<(String, Instant)> = Vec::with_capacity(light_jobs);
    for i in 0..light_jobs {
        let resp = light
            .post("/v1/jobs", &spec_json(seed_base + 0x1000 + i as u64))
            .expect("light submit");
        assert!(
            resp.status == 200 || resp.status == 202,
            "light submit failed: {} {}",
            resp.status,
            resp.body
        );
        light_pending.push((extract_id(&resp.body), Instant::now()));
    }

    // Poll every outstanding light job each cycle so observation lag is
    // bounded by one cycle, not by per-job serial waits.
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(light_jobs);
    while !light_pending.is_empty() {
        light_pending.retain(|(id, submitted)| {
            let status = light.get(&format!("/v1/jobs/{id}")).expect("poll");
            if status.body.contains("\"status\":\"done\"") {
                latencies_ms.push(submitted.elapsed().as_secs_f64() * 1000.0);
                false
            } else {
                true
            }
        });
        if !light_pending.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // The flood served its purpose; cancel what is still queued so
    // shutdown drains in seconds, not `heavy_jobs x pace`.
    for id in &heavy_ids {
        let _ = heavy.post(&format!("/v1/jobs/{id}/cancel"), "");
    }
    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_file(&tenants_file);

    ScenarioReport {
        scenario: scenario.to_string(),
        light_jobs,
        heavy_jobs,
        light_p50_ms: percentile_exact(&latencies_ms, 0.50).unwrap_or(0.0),
        light_p99_ms: percentile_exact(&latencies_ms, 0.99).unwrap_or(0.0),
        light_max_ms: percentile_exact(&latencies_ms, 1.0).unwrap_or(0.0),
        elapsed_ms,
    }
}

/// Run both scenarios and assemble the report.
pub fn run(quick: bool) -> FairnessBenchReport {
    let light_jobs = if quick { 6 } else { 10 };
    let heavy_jobs = light_jobs * 10;
    // Distinct seed ranges per scenario: neither may inherit warmth.
    let isolation = run_scenario("isolation", 0, light_jobs, 0xFA_0000);
    let contended = run_scenario("contended", heavy_jobs, light_jobs, 0xFB_0000);
    let ratio = if isolation.light_p99_ms > 0.0 {
        contended.light_p99_ms / isolation.light_p99_ms
    } else {
        f64::INFINITY
    };
    FairnessBenchReport {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        pace_ms: PACE_MS,
        light_weight: LIGHT_WEIGHT,
        heavy_weight: HEAVY_WEIGHT,
        scenarios: vec![isolation, contended],
        light_p99_contended_over_isolation: ratio,
    }
}

/// Human-readable summary.
pub fn render(r: &FairnessBenchReport) -> String {
    let mut out = format!(
        "fairness bench ({} mode): light weight {}, heavy weight {}, pace {} ms\n",
        r.mode, r.light_weight, r.heavy_weight, r.pace_ms
    );
    for s in &r.scenarios {
        out.push_str(&format!(
            "  {:<10} {:>3} light vs {:>3} heavy: light p50 {:>7.1} ms  p99 {:>7.1} ms  max {:>7.1} ms\n",
            s.scenario, s.light_jobs, s.heavy_jobs, s.light_p50_ms, s.light_p99_ms, s.light_max_ms
        ));
    }
    out.push_str(&format!(
        "  light p99 contended / isolation: {:.2}x\n",
        r.light_p99_contended_over_isolation
    ));
    out
}

/// Write the report to `path` and verify the emission parses back.
pub fn emit(r: &FairnessBenchReport, path: &str) -> Result<(), String> {
    let json = serde_json::to_string(r).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    let back = std::fs::read_to_string(path).map_err(|e| format!("re-read {path}: {e}"))?;
    let parsed: FairnessBenchReport =
        serde_json::from_str(&back).map_err(|e| format!("re-parse {path}: {e:?}"))?;
    if parsed.schema != SCHEMA {
        return Err(format!(
            "schema drift in {path}: {} != {SCHEMA}",
            parsed.schema
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fairness_run_isolates_the_light_tenant_and_emits_valid_json() {
        let report = run(true);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.scenarios[0].scenario, "isolation");
        assert_eq!(report.scenarios[1].scenario, "contended");
        assert!(report.scenarios[1].heavy_jobs == report.scenarios[1].light_jobs * 10);
        for s in &report.scenarios {
            assert!(s.light_p99_ms > 0.0, "{s:?}");
        }
        // The CI gate on a dedicated run demands <= 3.0 (quick) / the
        // committed full snapshot <= 2.0; under `cargo test`
        // parallelism we only insist the flood visibly fails to starve
        // the light tenant (FIFO would sit near 10x).
        assert!(
            report.light_p99_contended_over_isolation < 4.0,
            "light tenant starved by the flood: {report:?}"
        );
        let path = std::env::temp_dir().join(format!("bench10-test-{}.json", std::process::id()));
        let path = path.to_string_lossy().to_string();
        emit(&report, &path).expect("emission round-trips");
        let _ = std::fs::remove_file(&path);
    }
}
