//! # xplain-bench
//!
//! The reproduction harness: one module per table/figure/claim in the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | id | module | paper artifact | engine |
//! |----|--------|----------------|--------|
//! | E1 | [`fig1`] | Fig. 1a table (DP 150 vs OPT 250) | fan-out task |
//! | E2 | [`vbp_examples`] | §2 adversarial VBP sizes (1/49/51/51) | fan-out task |
//! | E3 | [`vbp_examples`] | Fig. 2 (FF 9 vs OPT 8 on 17 balls) | fan-out task |
//! | E4 | [`fig4`] | Fig. 4 heat-maps (3000 samples) | fan-out task |
//! | E5 | [`fig5`] | Fig. 5 subspaces + p-values (2e-60 / 8e-11) | fan-out task |
//! | E6 | [`speedup`] | §5.1 compiled-DSL 4.3× speedup | fan-out task |
//! | E7 | [`pipeline_time`] | Fig. 4 caption (20 min/figure) | **manifest jobs** |
//! | E8 | [`generalize`] | §5.4 `increasing(P)` | fan-out task |
//! | E9 | [`appendix_a`] | Theorem A.1 executed | fan-out task |
//!
//! "Engine" says how `repro all` routes the artifact through
//! `xplain-runtime`: every artifact renders inside an executor fan-out
//! task (so E1–E9 regenerate concurrently), and E7 additionally runs its
//! per-domain pipelines as batch-manifest jobs — one per registered
//! domain (DP, FF, and LPT scheduling). The `repro engine` experiment
//! demos the manifest + content-addressed store path explicitly.
//!
//! Beyond the paper, [`ablations`] quantifies the design choices
//! DESIGN.md §5 documents (tree refinement, DKW sizing, expansion
//! thresholds, heuristic variants).
//!
//! `cargo run -p xplain-bench --release --bin repro -- all` regenerates
//! everything; `cargo bench` runs the Criterion timing benches; `cargo
//! run -p xplain-bench --release --bin bench` runs the solver benchmark
//! ([`solver_bench`]) and emits `BENCH_6.json` (revised-vs-reference
//! timings, B&B node counts, E7 pipeline time); `cargo run -p
//! xplain-bench --release --bin serve-bench` runs the serving-layer load
//! generator ([`serve_load`]) and emits `BENCH_5.json` (cold vs
//! cache-hit vs streaming requests/sec and p50/p99 latency over
//! loopback HTTP); `cargo run -p xplain-bench --release --bin
//! mesh-bench` runs the sharded-tier scaling benchmark ([`mesh_load`])
//! and emits `BENCH_7.json` (cold-job throughput at 1 vs 4 shards
//! through the gateway); `cargo run -p xplain-bench --release --bin
//! fairness-bench` runs the multi-tenant fairness benchmark
//! ([`fairness_load`]) and emits `BENCH_10.json` (the light tenant's
//! completion-latency p99 under a 10:1 heavy-tenant flood vs
//! isolation).

pub mod ablations;
pub mod appendix_a;
pub mod fairness_load;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod generalize;
pub mod mesh_load;
pub mod pipeline_time;
pub mod serve_load;
pub mod solver_bench;
pub mod speedup;
pub mod vbp_examples;
