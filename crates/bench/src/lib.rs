//! # xplain-bench
//!
//! The reproduction harness: one module per table/figure/claim in the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | id | module | paper artifact |
//! |----|--------|----------------|
//! | E1 | [`fig1`] | Fig. 1a table (DP 150 vs OPT 250) |
//! | E2 | [`vbp_examples`] | §2 adversarial VBP sizes (1/49/51/51) |
//! | E3 | [`vbp_examples`] | Fig. 2 (FF 9 vs OPT 8 on 17 balls) |
//! | E4 | [`fig4`] | Fig. 4 heat-maps (3000 samples) |
//! | E5 | [`fig5`] | Fig. 5 subspaces + p-values (2e-60 / 8e-11) |
//! | E6 | [`speedup`] | §5.1 compiled-DSL 4.3× speedup |
//! | E7 | [`pipeline_time`] | Fig. 4 caption (20 min/figure) |
//! | E8 | [`generalize`] | §5.4 `increasing(P)` |
//! | E9 | [`appendix_a`] | Theorem A.1 executed |
//!
//! Beyond the paper, [`ablations`] quantifies the design choices
//! DESIGN.md §5 documents (tree refinement, DKW sizing, expansion
//! thresholds, heuristic variants).
//!
//! `cargo run -p xplain-bench --release --bin repro -- all` regenerates
//! everything; `cargo bench` runs the Criterion timing benches.

pub mod ablations;
pub mod appendix_a;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod generalize;
pub mod pipeline_time;
pub mod speedup;
pub mod vbp_examples;
