//! Mesh scaling benchmark — emits `BENCH_7.json`: cold-job throughput
//! of the sharded tier at 1 shard vs 4 shards, driven end-to-end
//! through the gateway over real loopback HTTP.
//!
//! ## Why pacing makes this honest on any machine
//!
//! The CI box has one core, so real CPU-bound work cannot speed up by
//! adding shards *in the same process tree* — every session serializes
//! on the same core and a naive benchmark would measure noise. What the
//! mesh actually scales is **service capacity**: each shard has one
//! worker, and `pace_ms` pins that worker's minimum service time per
//! executed job (the sleep overlaps perfectly across shards, exactly
//! like wall-clock service time on independent machines would). With
//! jobs whose compute is a small fraction of the pace, throughput is
//! capacity-bound, and the 1→4 shard ratio measures precisely what the
//! tier is for: four workers' worth of service draining the same
//! workload — including the work stealer's contribution, since
//! rendezvous placement alone leaves the most-loaded shard holding more
//! than `jobs/4` of the keys.
//!
//! Stolen jobs do not distort the count: the thief commits the result
//! to the shared store, and the victim's safety-net copy completes as a
//! cache hit (pacing exempts cache hits), so every job is paid for at
//! most once plus a near-free re-check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use xplain_core::pipeline::PipelineConfig;
use xplain_core::subspace::SubspaceParams;
use xplain_core::{ExplainerParams, SignificanceParams};
use xplain_mesh::{Gateway, GatewayConfig, Membership, Peer, Stealer, StealerConfig};
use xplain_runtime::{DomainRegistry, JobSpec, SessionBudgets};
use xplain_serve::{Client, MeshStatus, Server, ServerConfig};

/// Schema marker for the emitted file.
pub const SCHEMA: &str = "xplain-bench-7/v1";

/// Per-worker minimum service time for executed jobs (ms). Large
/// relative to the per-job compute so capacity, not the shared core,
/// is the bottleneck being measured.
const PACE_MS: u64 = 150;
const SHARD_WORKERS: usize = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyReport {
    pub shards: usize,
    pub elapsed_ms: f64,
    pub throughput_jobs_per_s: f64,
    /// Jobs pulled across shards by the work stealers (0 at 1 shard).
    pub jobs_stolen_total: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshBenchReport {
    pub schema: String,
    /// `quick` (CI) or `full` (the committed snapshot).
    pub mode: String,
    pub shard_workers: usize,
    pub pace_ms: u64,
    /// Cold jobs submitted per topology.
    pub jobs: usize,
    pub topologies: Vec<TopologyReport>,
    /// `throughput(4 shards) / throughput(1 shard)` — the headline
    /// number; CI gates on it.
    pub scaling_cold_1_to_4: f64,
}

/// Deliberately tiny pipeline work: the jobs must be cheap next to
/// `PACE_MS` (see the module docs) while still exercising the full
/// submit→route→compute→store path.
fn bench_config() -> PipelineConfig {
    PipelineConfig {
        max_subspaces: 1,
        subspace: SubspaceParams {
            dkw_eps: 0.25,
            dkw_delta: 0.25,
            max_expansions: 3,
            tree_sample_factor: 3,
            ..Default::default()
        },
        significance: SignificanceParams {
            pairs: 30,
            ..Default::default()
        },
        explainer: ExplainerParams {
            samples: 40,
            threads: 1,
            ..Default::default()
        },
        coverage_samples: 0,
        ..Default::default()
    }
}

fn spec_json(seed: u64) -> String {
    serde_json::to_string(&JobSpec {
        domain: "sched".into(),
        config: bench_config(),
        seed,
        budgets: SessionBudgets::unlimited(),
    })
    .expect("spec serializes")
}

fn extract_id(body: &str) -> String {
    body.split("\"id\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("submit receipt carries an id")
        .to_string()
}

/// Stand up `shards` in-process servers + their stealers + one gateway,
/// push `jobs` cold submissions through the gateway, and time until the
/// gateway reports every job done.
fn run_topology(shards: usize, jobs: usize, seed_base: u64) -> TopologyReport {
    let store_dir = std::env::temp_dir().join(format!(
        "xplain-mesh-bench-{}-{}",
        shards,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut meshes = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    let mut joins = Vec::with_capacity(shards);
    for i in 0..shards {
        let mesh = Arc::new(MeshStatus::new(format!("shard-{i}")));
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_workers: SHARD_WORKERS,
            http_threads: 4,
            capacity: 1024,
            store_dir: Some(store_dir.clone()),
            read_timeout: Duration::from_secs(120),
            retain_done: 4096,
            shard_id: Some(format!("shard-{i}")),
            pace_ms: PACE_MS,
            mesh: Some(Arc::clone(&mesh)),
            // All shards share one store dir here; a journal per shard
            // would collide on its segment files, and a load bench has
            // nothing to recover anyway.
            journal: false,
            journal_dir: None,
            tenants: None,
        })
        .expect("shard binds");
        let handle = server.handle();
        joins.push(std::thread::spawn(move || {
            let registry = DomainRegistry::builtin();
            server.run(&registry).expect("shard runs");
        }));
        meshes.push(mesh);
        handles.push(handle);
    }
    let peers: Vec<Peer> = handles
        .iter()
        .map(|h| Peer {
            id: h.addr().to_string(),
            addr: h.addr(),
        })
        .collect();

    // Aggressive stealers: the benchmark's 4-shard number should show
    // the tier's capacity, not rendezvous imbalance.
    let steal_stop = Arc::new(AtomicBool::new(false));
    let stealer_joins: Vec<_> = if shards > 1 {
        handles
            .iter()
            .zip(&meshes)
            .map(|(h, mesh)| {
                let membership = Membership::bootstrap(
                    peers.clone(),
                    Duration::from_millis(250),
                    Some(Arc::clone(mesh)),
                );
                Stealer::new(
                    h.addr(),
                    membership,
                    Arc::clone(mesh),
                    StealerConfig {
                        interval: Duration::from_millis(40),
                        batch_max: 2,
                        ..StealerConfig::default()
                    },
                )
                .start(Arc::clone(&steal_stop))
            })
            .collect()
    } else {
        Vec::new()
    };

    let gateway = Gateway::bind(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        peers,
        heartbeat: Duration::from_millis(200),
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let gw = gateway.handle();
    let gw_join = std::thread::spawn(move || gateway.run().expect("gateway runs"));
    let api = Client::new(gw.addr()).with_timeout(Duration::from_secs(120));

    // The measured section: blast all submissions through the gateway,
    // then poll (also through the gateway) until everything is done.
    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let resp = api
            .post("/v1/jobs", &spec_json(seed_base + i as u64))
            .expect("submit");
        assert!(
            resp.status == 200 || resp.status == 202,
            "submit failed: {} {}",
            resp.status,
            resp.body
        );
        ids.push(extract_id(&resp.body));
    }
    let mut remaining = ids;
    while !remaining.is_empty() {
        remaining.retain(|id| {
            let status = api.get(&format!("/v1/jobs/{id}")).expect("poll");
            !status.body.contains("\"status\":\"done\"")
        });
        if !remaining.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let jobs_stolen_total: u64 = meshes.iter().map(|m| m.jobs_stolen()).sum();

    steal_stop.store(true, Ordering::Relaxed);
    for j in stealer_joins {
        j.join().expect("stealer thread");
    }
    gw.shutdown();
    gw_join.join().expect("gateway thread");
    for h in &handles {
        h.shutdown();
    }
    for j in joins {
        j.join().expect("shard thread");
    }
    let _ = std::fs::remove_dir_all(&store_dir);

    TopologyReport {
        shards,
        elapsed_ms,
        throughput_jobs_per_s: jobs as f64 / (elapsed_ms / 1000.0),
        jobs_stolen_total,
    }
}

/// Run both topologies and assemble the report.
pub fn run(quick: bool) -> MeshBenchReport {
    let jobs = if quick { 12 } else { 40 };
    let topologies: Vec<TopologyReport> = [1usize, 4]
        .iter()
        .enumerate()
        // Distinct seed ranges per topology: no topology may inherit
        // the other's cache, even accidentally.
        .map(|(t, &shards)| run_topology(shards, jobs, 0xB7_0000 + ((t as u64) << 16)))
        .collect();
    let scaling = topologies[1].throughput_jobs_per_s / topologies[0].throughput_jobs_per_s;
    MeshBenchReport {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        shard_workers: SHARD_WORKERS,
        pace_ms: PACE_MS,
        jobs,
        topologies,
        scaling_cold_1_to_4: scaling,
    }
}

/// Human-readable summary.
pub fn render(r: &MeshBenchReport) -> String {
    let mut out = format!(
        "mesh bench ({} mode): {} jobs per topology, {} worker/shard, pace {} ms\n",
        r.mode, r.jobs, r.shard_workers, r.pace_ms
    );
    for t in &r.topologies {
        out.push_str(&format!(
            "  {} shard(s): {:>8.1} ms  {:>6.2} jobs/s  {:>3} stolen\n",
            t.shards, t.elapsed_ms, t.throughput_jobs_per_s, t.jobs_stolen_total
        ));
    }
    out.push_str(&format!(
        "  cold throughput scaling 1→4 shards: {:.2}x\n",
        r.scaling_cold_1_to_4
    ));
    out
}

/// Write the report to `path` and verify the emission parses back.
pub fn emit(r: &MeshBenchReport, path: &str) -> Result<(), String> {
    let json = serde_json::to_string(r).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    let back = std::fs::read_to_string(path).map_err(|e| format!("re-read {path}: {e}"))?;
    let parsed: MeshBenchReport =
        serde_json::from_str(&back).map_err(|e| format!("re-parse {path}: {e:?}"))?;
    if parsed.schema != SCHEMA {
        return Err(format!(
            "schema drift in {path}: {} != {SCHEMA}",
            parsed.schema
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mesh_run_scales_and_emits_valid_json() {
        let report = run(true);
        assert_eq!(report.topologies.len(), 2);
        assert_eq!(report.topologies[0].shards, 1);
        assert_eq!(report.topologies[1].shards, 4);
        for t in &report.topologies {
            assert!(t.throughput_jobs_per_s > 0.0, "{t:?}");
        }
        // The CI gate on a dedicated run demands ≥2.0 (quick) / ≥3.0
        // (full); under `cargo test` parallelism we only insist the
        // tier visibly scales at all.
        assert!(
            report.scaling_cold_1_to_4 > 1.5,
            "4 shards not faster than 1: {report:?}"
        );
        let path = std::env::temp_dir().join(format!("bench7-test-{}.json", std::process::id()));
        let path = path.to_string_lossy().to_string();
        emit(&report, &path).expect("emission round-trips");
        let _ = std::fs::remove_file(&path);
    }
}
