//! E7 — end-to-end pipeline wall-clock (Fig. 4 caption: "XPlain took 20
//! minutes to produce each figure").
//!
//! Our substrate is a native-code simulator on toy instances, so absolute
//! times are far below the paper's; we report them next to the paper's
//! number and keep the *structure* identical (analyzer → subspaces →
//! significance → 3000-sample explanation).

use xplain_core::pipeline::{run_dp_pipeline, run_ff_pipeline, PipelineConfig, PipelineResult};
use xplain_domains::te::TeProblem;

/// E7 result.
#[derive(Debug, Clone)]
pub struct PipelineTimeResult {
    pub dp: PipelineResult,
    pub ff: PipelineResult,
}

/// Run both full pipelines. `explainer_samples` should be 3000 to match
/// the paper (tests use less).
pub fn run(explainer_samples: usize) -> PipelineTimeResult {
    let mut config = PipelineConfig::default();
    config.explainer.samples = explainer_samples;
    config.max_subspaces = 3;
    let dp = run_dp_pipeline(&TeProblem::fig1a(), 50.0, &config);
    let ff = run_ff_pipeline(4, 3, &config);
    PipelineTimeResult { dp, ff }
}

pub fn render(r: &PipelineTimeResult) -> String {
    let mut out = String::new();
    out.push_str("E7 / Fig. 4 caption — end-to-end pipeline wall-clock\n");
    out.push_str(&format!(
        "  DP (Fig. 4a equivalent): {} subspace(s), {} oracle evals, {:.1} s  (paper: ~20 min)\n",
        r.dp.findings.len(),
        r.dp.oracle_evaluations,
        r.dp.wall_time_ms as f64 / 1000.0
    ));
    out.push_str(&format!(
        "  FF (Fig. 4b equivalent): {} subspace(s), {} oracle evals, {:.1} s  (paper: ~20 min)\n",
        r.ff.findings.len(),
        r.ff.oracle_evaluations,
        r.ff.wall_time_ms as f64 / 1000.0
    ));
    out.push_str("  (absolute numbers are not comparable — exact solver on a laptop-scale\n");
    out.push_str("   simulator vs the authors' setup; the pipeline structure is identical)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_produce_findings_quickly() {
        let r = run(300);
        assert!(!r.dp.findings.is_empty());
        assert!(!r.ff.findings.is_empty());
        // Both should finish in well under the paper's 20 minutes even in
        // debug builds.
        assert!(r.dp.wall_time_ms < 20 * 60 * 1000);
        assert!(r.ff.wall_time_ms < 20 * 60 * 1000);
    }
}
