//! E7 — end-to-end pipeline wall-clock (Fig. 4 caption: "XPlain took 20
//! minutes to produce each figure").
//!
//! Our substrate is a native-code simulator on toy instances, so absolute
//! times are far below the paper's; we report them next to the paper's
//! number and keep the *structure* identical (analyzer → subspaces →
//! significance → 3000-sample explanation).
//!
//! Since the runtime landed, this artifact routes through the batch
//! engine: one manifest job per registered domain (the paper's two plus
//! makespan scheduling), fanned out across executor workers.

use xplain_core::pipeline::PipelineConfig;
use xplain_runtime::{run_manifest, DomainRegistry, JobOutcome, JobSpec};

/// E7 result: one engine outcome per registered domain, manifest order.
#[derive(Debug, Clone)]
pub struct PipelineTimeResult {
    pub outcomes: Vec<JobOutcome>,
}

/// Run every registered domain's full pipeline through the batch engine.
/// `explainer_samples` should be 3000 to match the paper (tests use less).
///
/// The worker pool is sized to the machine: these jobs are CPU-bound, so
/// oversubscribing (more workers than cores) only interleaves their
/// timeslices and inflates every job's measured wall-clock without
/// finishing any of them sooner. Outcomes are byte-identical at any
/// worker count (pinned by the runtime's determinism suite) — only the
/// timing honesty is at stake.
pub fn run(explainer_samples: usize) -> PipelineTimeResult {
    let mut config = PipelineConfig::default();
    config.explainer.samples = explainer_samples;
    config.max_subspaces = 3;
    let registry = DomainRegistry::builtin();
    let jobs: Vec<JobSpec> = registry
        .ids()
        .into_iter()
        .map(|domain| JobSpec {
            domain,
            config: config.clone(),
            seed: 0xE7,
            budgets: Default::default(),
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, jobs.len().max(1));
    let outcomes = run_manifest(&registry, &jobs, None, workers);
    PipelineTimeResult { outcomes }
}

pub fn render(r: &PipelineTimeResult) -> String {
    let mut out = String::new();
    out.push_str("E7 / Fig. 4 caption — end-to-end pipeline wall-clock (batch engine)\n");
    for o in &r.outcomes {
        let Some(result) = &o.result else {
            out.push_str(&format!("  {}: ERROR {:?}\n", o.domain, o.error));
            continue;
        };
        let warm_pct = if o.solver.lp_solves > 0 {
            100.0 * o.solver.lp_warm_hits as f64 / o.solver.lp_solves as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<6} {} subspace(s), {} oracle evals, {} LP solves ({:.0}% warm), \
             {} B&B nodes, {:.1} s  (paper: ~20 min)\n",
            o.domain,
            result.findings.len(),
            result.oracle_evaluations,
            o.solver.lp_solves,
            warm_pct,
            o.solver.bb_nodes,
            o.wall_time_ms as f64 / 1000.0
        ));
    }
    out.push_str("  (absolute numbers are not comparable — exact solver on a laptop-scale\n");
    out.push_str("   simulator vs the authors' setup; the pipeline structure is identical.\n");
    out.push_str("   jobs executed concurrently by the xplain-runtime batch executor)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_produce_findings_quickly() {
        let r = run(300);
        assert_eq!(r.outcomes.len(), 3, "one job per registered domain");
        for o in &r.outcomes {
            let result = o.result.as_ref().expect("job ran");
            assert!(!result.findings.is_empty(), "{} found nothing", o.domain);
            // Each should finish in well under the paper's 20 minutes
            // even in debug builds.
            assert!(o.wall_time_ms < 20 * 60 * 1000);
        }
    }
}
