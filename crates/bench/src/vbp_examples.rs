//! E2 — §2's MetaOpt-found adversarial VBP instance (4 balls, 3 bins:
//! sizes ≈ 1%, 49%, 51%, 51%; FF 3 bins vs OPT 2), and
//! E3 — Fig. 2's 17-ball instance (FF 9 bins vs OPT 8).

use rand::SeedableRng;
use xplain_analyzer::ff_metaopt::FfMetaOpt;
use xplain_analyzer::oracle::FfOracle;
use xplain_analyzer::search::{ff_seeds, find_adversarial, SearchOptions};
use xplain_domains::vbp::{first_fit, optimal, VbpInstance};

/// E2 result: the analyzer's adversarial sizes and both bin counts.
#[derive(Debug, Clone)]
pub struct Sec2Result {
    pub sizes: Vec<f64>,
    pub ff_bins: usize,
    pub opt_bins: usize,
    pub gap: f64,
    /// Whether the exact MILP analyzer (vs the search fallback) produced
    /// the instance.
    pub exact: bool,
}

/// Reproduce E2 with the exact Fig. 1c MILP; fall back to search if the
/// MILP fails (it should not).
pub fn run_sec2() -> Sec2Result {
    let analyzer = FfMetaOpt::sec2();
    let (sizes, exact) = match analyzer.find_adversarial(&[]) {
        Ok(adv) => (adv.input, true),
        Err(_) => {
            let oracle = FfOracle::new(4);
            let opts = SearchOptions {
                seeds: ff_seeds(4, 1.0, 0.01),
                ..Default::default()
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let adv = find_adversarial(&oracle, &[], &opts, &mut rng)
                .expect("search must find the known gap");
            (adv.input, false)
        }
    };
    let inst = VbpInstance::one_dim(&sizes);
    let ff = first_fit(&inst).bins_used;
    let opt = optimal(&inst).bins_used;
    Sec2Result {
        sizes,
        ff_bins: ff,
        opt_bins: opt,
        gap: ff as f64 - opt as f64,
        exact,
    }
}

/// E3 result: the Fig. 2 instance replayed, plus a search-found instance
/// of the same size.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    pub paper_sizes: Vec<f64>,
    pub paper_ff_bins: usize,
    pub paper_opt_bins: usize,
    pub searched_gap: Option<f64>,
    pub searched_sizes: Option<Vec<f64>>,
}

/// Reproduce E3.
pub fn run_fig2(search_gap_at_17: bool) -> Fig2Result {
    let inst = VbpInstance::fig2_example();
    let ff = first_fit(&inst).bins_used;
    let opt = optimal(&inst).bins_used;

    let (searched_gap, searched_sizes) = if search_gap_at_17 {
        let oracle = FfOracle::new(17);
        let opts = SearchOptions {
            seeds: ff_seeds(17, 1.0, 0.01),
            restarts: 12,
            evals_per_restart: 200,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        match find_adversarial(&oracle, &[], &opts, &mut rng) {
            Some(adv) => (Some(adv.gap), Some(adv.input)),
            None => (None, None),
        }
    } else {
        (None, None)
    };

    Fig2Result {
        paper_sizes: inst.balls.iter().map(|b| b[0]).collect(),
        paper_ff_bins: ff,
        paper_opt_bins: opt,
        searched_gap,
        searched_sizes,
    }
}

pub fn render_sec2(r: &Sec2Result) -> String {
    let mut out = String::new();
    out.push_str("E2 / §2 — adversarial VBP instance (4 balls, 3 bins)\n");
    out.push_str(&format!(
        "  analyzer: {}\n",
        if r.exact {
            "exact Fig. 1c MILP"
        } else {
            "pattern search (fallback)"
        }
    ));
    out.push_str(&format!(
        "  sizes (% of bin): [{}]   (paper: [1, 49, 51, 51])\n",
        r.sizes
            .iter()
            .map(|s| format!("{:.0}", s * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  FF bins = {} (paper: 3)   OPT bins = {} (paper: 2)   gap = {:.0} (paper: 1)\n",
        r.ff_bins, r.opt_bins, r.gap
    ));
    out
}

pub fn render_fig2(r: &Fig2Result) -> String {
    let mut out = String::new();
    out.push_str("E3 / Fig. 2 — 17-ball first-fit instance\n");
    out.push_str(&format!(
        "  ball sizes: [{}]\n",
        r.paper_sizes
            .iter()
            .map(|s| format!("{s:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  FF bins = {} (paper: 9)   OPT bins = {} (paper: 8)\n",
        r.paper_ff_bins, r.paper_opt_bins
    ));
    if let Some(g) = r.searched_gap {
        out.push_str(&format!(
            "  search analyzer at n = 17 found gap {g:.0} independently\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper() {
        let r = run_fig2(false);
        assert_eq!(r.paper_ff_bins, 9);
        assert_eq!(r.paper_opt_bins, 8);
        assert_eq!(r.paper_sizes.len(), 17);
    }

    #[test]
    fn fig2_search_finds_gap() {
        let r = run_fig2(true);
        assert!(r.searched_gap.unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn render_fig2_mentions_counts() {
        let text = render_fig2(&run_fig2(false));
        assert!(text.contains("FF bins = 9"));
        assert!(text.contains("OPT bins = 8"));
    }

    // The exact-MILP E2 test lives in xplain-analyzer (sec2_gap_of_one_bin);
    // here we only check the fallback path wiring via the oracle.
    #[test]
    fn sec2_known_point_has_gap_one() {
        let inst = VbpInstance::sec2_example();
        assert_eq!(first_fit(&inst).bins_used, 3);
        assert_eq!(optimal(&inst).bins_used, 2);
    }
}
