//! E6 — §5.1's compiled-DSL speedup.
//!
//! Paper: "our DSL allows us to find redundant constraints and variables …
//! compared to the original MetaOpt implementation, the compiled DSL
//! analyzes our DP example 4.3× faster. MetaOpt does not re-write FF, and
//! we do not provide any run-time gains in that case."
//!
//! Reproduction: compile the Fig. 4a DP network and the Fig. 4b FF network
//! both **raw** (one variable per edge and one constraint block per node —
//! the hand-written shape) and **eliminated**, then time repeated
//! pin-and-solve analyses. The DP graph is rich in copy chains the
//! eliminator can fold, the FF graph is dominated by pick binaries it
//! cannot touch — so DP should speed up markedly and FF should not, which
//! is exactly the paper's shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;
use xplain_domains::te::{TeDsl, TeProblem};
use xplain_domains::vbp::VbpDsl;
use xplain_flownet::{CompileOptions, CompileStats};

/// Timing + size numbers for one (network, mode) pair.
#[derive(Debug, Clone)]
pub struct ModeReport {
    pub stats: CompileStats,
    pub compile_ms: f64,
    pub solve_ms: f64,
}

/// E6 result.
#[derive(Debug, Clone)]
pub struct SpeedupResult {
    pub dp_raw: ModeReport,
    pub dp_eliminated: ModeReport,
    pub ff_raw: ModeReport,
    pub ff_eliminated: ModeReport,
    pub trials: usize,
}

impl SpeedupResult {
    /// End-to-end (compile + solve) speedup of elimination on DP.
    pub fn dp_speedup(&self) -> f64 {
        total(&self.dp_raw) / total(&self.dp_eliminated).max(1e-9)
    }

    /// Same for FF (expected ≈ 1).
    pub fn ff_speedup(&self) -> f64 {
        total(&self.ff_raw) / total(&self.ff_eliminated).max(1e-9)
    }
}

fn total(m: &ModeReport) -> f64 {
    m.compile_ms + m.solve_ms
}

fn bench_te(problem: &TeProblem, eliminate: bool, trials: usize, seed: u64) -> ModeReport {
    let dsl = TeDsl::build(problem);
    let opts = CompileOptions {
        eliminate,
        ..Default::default()
    };

    let t0 = Instant::now();
    let mut compiled = dsl.net.compile(&opts).expect("compiles");
    for _ in 1..trials {
        compiled = dsl.net.compile(&opts).expect("compiles");
    }
    let compile_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut rng = StdRng::seed_from_u64(seed);
    let t1 = Instant::now();
    for _ in 0..trials {
        let mut pins = BTreeMap::new();
        for (k, &node) in dsl.demand_nodes.iter().enumerate() {
            let v: f64 = rng.gen_range(0.0..problem.demand_cap);
            let _ = k;
            pins.insert(node, v);
        }
        let model = compiled.with_source_values(&pins).expect("pinnable");
        let _ = model.solve().expect("solvable");
    }
    let solve_ms = t1.elapsed().as_secs_f64() * 1000.0;

    ModeReport {
        stats: compiled.stats.clone(),
        compile_ms,
        solve_ms,
    }
}

fn bench_ff(
    n_balls: usize,
    n_bins: usize,
    eliminate: bool,
    trials: usize,
    seed: u64,
) -> ModeReport {
    let dsl = VbpDsl::build(n_balls, n_bins, 1.0);
    let opts = CompileOptions {
        eliminate,
        ..Default::default()
    };

    let t0 = Instant::now();
    let mut compiled = dsl.net.compile(&opts).expect("compiles");
    for _ in 1..trials {
        compiled = dsl.net.compile(&opts).expect("compiles");
    }
    let compile_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut rng = StdRng::seed_from_u64(seed);
    let t1 = Instant::now();
    for _ in 0..trials {
        let mut pins = BTreeMap::new();
        for &node in &dsl.ball_nodes {
            pins.insert(node, rng.gen_range(0.05..0.45));
        }
        let model = compiled.with_source_values(&pins).expect("pinnable");
        let _ = model.solve().expect("solvable");
    }
    let solve_ms = t1.elapsed().as_secs_f64() * 1000.0;

    ModeReport {
        stats: compiled.stats.clone(),
        compile_ms,
        solve_ms,
    }
}

/// Run E6 with `trials` pin-and-solve analyses per mode.
pub fn run(trials: usize) -> SpeedupResult {
    // Fig. 4a's eight-demand instance gives the eliminator real work.
    let problem = TeProblem::fig4a();
    SpeedupResult {
        dp_raw: bench_te(&problem, false, trials, 11),
        dp_eliminated: bench_te(&problem, true, trials, 11),
        ff_raw: bench_ff(4, 3, false, trials, 12),
        ff_eliminated: bench_ff(4, 3, true, trials, 12),
        trials,
    }
}

pub fn render(r: &SpeedupResult) -> String {
    let mut out = String::new();
    out.push_str("E6 / §5.1 — compiled-DSL speedup from redundancy elimination\n");
    out.push_str(&format!(
        "  ({} pin-and-solve trials per mode)\n\n",
        r.trials
    ));
    let row = |name: &str, m: &ModeReport| {
        format!(
            "  {:<16} vars = {:>4}  constraints = {:>4}  compile = {:>8.2} ms  solve = {:>8.2} ms\n",
            name, m.stats.vars, m.stats.constraints, m.compile_ms, m.solve_ms
        )
    };
    out.push_str(&row("DP raw", &r.dp_raw));
    out.push_str(&row("DP eliminated", &r.dp_eliminated));
    out.push_str(&format!(
        "  DP speedup = {:.2}x  (paper: 4.3x; >1 expected)\n\n",
        r.dp_speedup()
    ));
    out.push_str(&row("FF raw", &r.ff_raw));
    out.push_str(&row("FF eliminated", &r.ff_eliminated));
    out.push_str(&format!(
        "  FF speedup = {:.2}x  (paper: ~1x — MetaOpt does not re-write FF)\n",
        r.ff_speedup()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_elimination_shrinks_model() {
        let r = run(3);
        assert!(
            r.dp_eliminated.stats.vars < r.dp_raw.stats.vars,
            "{} !< {}",
            r.dp_eliminated.stats.vars,
            r.dp_raw.stats.vars
        );
        assert!(r.dp_eliminated.stats.constraints < r.dp_raw.stats.constraints);
        assert!(r.dp_eliminated.stats.merged_edges > 0);
    }

    #[test]
    fn ff_elimination_changes_little() {
        let r = run(3);
        // Pick binaries dominate: variable count barely moves.
        let shrink = r.ff_raw.stats.vars - r.ff_eliminated.stats.vars;
        assert!(
            shrink * 5 <= r.ff_raw.stats.vars,
            "FF shrank too much: {} -> {}",
            r.ff_raw.stats.vars,
            r.ff_eliminated.stats.vars
        );
    }

    #[test]
    fn dp_speedup_exceeds_ff_speedup() {
        // Timing in debug builds is noisy; run enough trials that the
        // structural advantage dominates, and only check the ordering.
        let r = run(10);
        assert!(
            r.dp_speedup() > r.ff_speedup() * 0.8,
            "dp {:.2} vs ff {:.2}",
            r.dp_speedup(),
            r.ff_speedup()
        );
        assert!(r.dp_speedup() > 1.0, "dp speedup {:.2}", r.dp_speedup());
    }
}
