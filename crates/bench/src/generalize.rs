//! E8 — §5.4's generalizer sketch made concrete: the `increasing(P)`
//! predicate for Demand Pinning.
//!
//! "if P describes the set of shortest paths of pinnable demands in DP,
//! the generalizer might produce increasing(P) … this predicate suggests
//! that the gap is larger when the shortest path of the pinnable demands
//! is longer."

use rand::rngs::StdRng;
use rand::SeedableRng;
use xplain_core::generalizer::{generalize, Finding, GeneralizerParams};
use xplain_core::Observation;
use xplain_runtime::adapters::{generate_dp_instances, generate_ff_instances, DpFamily, FfFamily};

/// E8 result.
#[derive(Debug, Clone)]
pub struct GeneralizeResult {
    /// (chain length, measured gap) per DP instance.
    pub dp_gap_by_length: Vec<(usize, f64)>,
    pub dp_findings: Vec<Finding>,
    pub ff_findings: Vec<Finding>,
    pub ff_instances: usize,
}

/// Run E8.
pub fn run() -> GeneralizeResult {
    let mut rng = StdRng::seed_from_u64(0xE8);
    let family = DpFamily::default();
    let dp_instances = generate_dp_instances(&family, &mut rng);
    let dp_gap_by_length: Vec<(usize, f64)> = family
        .lengths
        .iter()
        .zip(&dp_instances)
        .map(|(&l, inst)| (l, inst.observation.gap))
        .collect();
    let dp_obs: Vec<Observation> = dp_instances.iter().map(|i| i.observation.clone()).collect();
    let dp_findings = generalize(&dp_obs, &GeneralizerParams::default());

    let ff_family = FfFamily {
        instances: 80,
        ..Default::default()
    };
    let ff_instances = generate_ff_instances(&ff_family, &mut rng);
    let ff_obs: Vec<Observation> = ff_instances.iter().map(|i| i.observation.clone()).collect();
    let ff_findings = generalize(&ff_obs, &GeneralizerParams::default());

    GeneralizeResult {
        dp_gap_by_length,
        dp_findings,
        ff_findings,
        ff_instances: ff_family.instances,
    }
}

pub fn render(r: &GeneralizeResult) -> String {
    let mut out = String::new();
    out.push_str("E8 / §5.4 — the generalizer's Type-3 output\n\n");
    out.push_str("  DP instance family (chain length L = pinned path length):\n");
    out.push_str("    L    gap (= L * T, T = 50)\n");
    for (l, gap) in &r.dp_gap_by_length {
        out.push_str(&format!("    {l:<4} {gap:.1}\n"));
    }
    out.push_str("  discovered predicates:\n");
    for f in &r.dp_findings {
        out.push_str(&format!("    {}\n", f.render()));
    }
    out.push_str(&format!(
        "\n  FF instance family ({} random instances):\n",
        r.ff_instances
    ));
    for f in &r.ff_findings {
        out.push_str(&format!("    {}\n", f.render()));
    }
    out.push_str(
        "\n  paper's hypothetical: increasing(P) over pinnable shortest paths — reproduced.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplain_core::Trend;

    #[test]
    fn increasing_pinned_path_length_discovered() {
        let r = run();
        let f = r
            .dp_findings
            .iter()
            .find(|f| f.feature == "pinned_path_length")
            .expect("must discover the paper's predicate");
        assert_eq!(f.trend, Trend::Increasing);
        assert!(f.p_value < 0.05);
        assert!(f.tau > 0.9);
    }

    #[test]
    fn gaps_strictly_increase_with_length() {
        let r = run();
        for pair in r.dp_gap_by_length.windows(2) {
            assert!(pair[1].1 > pair[0].1, "{pair:?}");
        }
    }

    #[test]
    fn ff_over_half_trend_found() {
        let r = run();
        assert!(
            r.ff_findings.iter().any(|f| f.feature == "balls_over_half"),
            "{:?}",
            r.ff_findings
        );
    }
}
