//! E4 — Fig. 4: the explainer heat-maps.
//!
//! Paper: "We used 3000 samples for each explanation. XPlain took 20
//! minutes to produce each figure." Expected shape:
//!
//! * Fig. 4a (DP): "all pinnable demands share the same shortest path
//!   (red arrows in 1-2-3 path), and the optimal routes them through
//!   alternative paths (blue arrows in 1-4-5-3 path)";
//! * Fig. 4b (FF): "FF places a large ball (B0) in the first bin, causing
//!   it to have to place the last ball differently, too."

use std::time::Instant;
use xplain_core::explainer::{explain, DslMapper, ExplainerParams};
use xplain_core::report::{explanation_dot, render_explanation};
use xplain_core::subspace::Subspace;
use xplain_core::Explanation;
use xplain_domains::te::TeProblem;
use xplain_runtime::{DpDslMapper, FfDslMapper};

/// Result for one heat-map.
#[derive(Debug, Clone)]
pub struct HeatmapResult {
    pub explanation: Explanation,
    pub dot: String,
    pub wall_ms: u128,
}

/// Fig. 4a: DP heat-map over the first adversarial subspace of the
/// Fig. 1a instance.
pub fn run_dp(samples: usize) -> HeatmapResult {
    let start = Instant::now();
    let mapper = DpDslMapper::new(TeProblem::fig1a(), 50.0);
    // The Type-1 subspace: pinnable 1⇝3 near the threshold, neighbors
    // saturating their shared links.
    let sub = Subspace::from_rough_box(
        vec![30.0, 80.0, 80.0],
        vec![50.0, 100.0, 100.0],
        vec![50.0, 100.0, 100.0],
        100.0,
    );
    let params = ExplainerParams {
        samples,
        ..Default::default()
    };
    let explanation = explain(&mapper, &sub, &params, 0xF164A);
    let dot = explanation_dot(mapper.net(), &explanation);
    HeatmapResult {
        explanation,
        dot,
        wall_ms: start.elapsed().as_millis(),
    }
}

/// Fig. 4b: FF heat-map over the §2 adversarial subspace (4 balls, 3
/// bins).
pub fn run_ff(samples: usize) -> HeatmapResult {
    let start = Instant::now();
    let mapper = FfDslMapper::new(4, 3, 1.0);
    let sub = Subspace::from_rough_box(
        vec![0.01, 0.44, 0.51, 0.51],
        vec![0.06, 0.49, 0.56, 0.56],
        vec![0.01, 0.49, 0.51, 0.51],
        1.0,
    );
    let params = ExplainerParams {
        samples,
        ..Default::default()
    };
    let explanation = explain(&mapper, &sub, &params, 0xF164B);
    let dot = explanation_dot(mapper.net(), &explanation);
    HeatmapResult {
        explanation,
        dot,
        wall_ms: start.elapsed().as_millis(),
    }
}

pub fn render(dp: &HeatmapResult, ff: &HeatmapResult) -> String {
    let mut out = String::new();
    out.push_str("E4 / Fig. 4 — explainer heat-maps\n\n");
    out.push_str("Fig. 4a (Demand Pinning):\n");
    out.push_str(&render_explanation(&dp.explanation, 10));
    out.push_str(&format!(
        "  produced in {:.1} s (paper: ~20 min per figure)\n\n",
        dp.wall_ms as f64 / 1000.0
    ));
    out.push_str("Fig. 4b (first-fit):\n");
    out.push_str(&render_explanation(&ff.explanation, 10));
    out.push_str(&format!(
        "  produced in {:.1} s (paper: ~20 min per figure)\n",
        ff.wall_ms as f64 / 1000.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_heatmap_shape() {
        let r = run_dp(400);
        let score = |label: &str| {
            r.explanation
                .edges
                .iter()
                .find(|e| e.label == label)
                .map(|e| e.score)
                .unwrap_or(0.0)
        };
        assert!(score("1~3->1-2-3") < -0.8, "{}", score("1~3->1-2-3"));
        assert!(score("1~3->1-4-5-3") > 0.8, "{}", score("1~3->1-4-5-3"));
        assert!(r.dot.contains("digraph"));
    }

    #[test]
    fn ff_heatmap_shape() {
        let r = run_ff(300);
        // B0 (the filler) is placed in Bin0 by FF in every sample.
        let b0 = r
            .explanation
            .edges
            .iter()
            .find(|e| e.label == "B0->Bin0")
            .unwrap();
        assert!(b0.heuristic_frac > 0.95, "{}", b0.heuristic_frac);
        // The heat-map must show disagreement somewhere.
        assert!(r.explanation.edges.iter().any(|e| e.score.abs() > 0.5));
    }
}
